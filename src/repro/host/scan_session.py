"""Warm scan runtime: one resident database image, many supervised scans.

:func:`repro.host.scan.scan_database` pays its fixed costs — packing the
references, publishing the shared-memory image, forking the worker pool —
on every call.  For the interactive / server use case (one database, a
stream of queries) those costs dominate: the paper's host keeps the
database resident in FPGA DRAM across searches, and :class:`ScanSession`
is the software counterpart:

* the database is packed and published in shared memory **once**, at
  session open; worker processes attach at spawn and stay resident;
* every :meth:`ScanSession.scan` / :meth:`ScanSession.scan_batch` call
  reuses the warm pool — no fork, no image copy, no re-pack;
* a batch of *k* queries is grouped into shared passes (the software
  analogue of the paper's multi-channel extension — unlike the FPGA lane
  budget of :mod:`repro.accel.multi_query`, the software kernel lets any
  queries share a sweep, so passes are bounded only by a working-set cap
  and a span-spread bound) and each database window is swept **once per
  pass**, scoring all co-resident queries against the same unpacked slice
  (the default ``bitscore_batch`` engine additionally shares the
  comparator bitplanes across the batch);
* execution is supervised in the :mod:`repro.host.resilience` mold —
  per-task timeout, bounded retries with backoff, dead-worker replacement,
  hedged stragglers, per-task sanity checks, optional durable
  checkpointing, graceful degradation to the in-process engine — and each
  batch returns a :class:`repro.host.resilience.ScanReport` on request;
* :meth:`ScanSession.close` (or the context manager) tears everything
  down; the segment is registered with the :mod:`repro.host.scan` cleanup
  sweeps, so even a crashed session cannot leak ``/dev/shm``.

Work is split into the position-balanced windows of
:mod:`repro.host.windows`; a pass's windows are planned with the *shortest*
member's span (every co-resident query has at least those positions) and
scored with the *longest* member's halo, then clipped per query, so the
merged hits and ``keep_scores`` vectors are bit-identical to scanning each
query alone.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
import zipfile
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.aligner import (
    AlignmentResult,
    QueryLike,
    ReferenceLike,
    resolve_threshold,
    scores_batch_from_codes,
)
from repro.core.encoding import EncodedQuery, encode_query
from repro.host import windows as _windows
from repro.host.checkpoint import CheckpointStore
from repro.host.errors import (
    ChunkFailedError,
    CorruptResultError,
    PoolUnhealthyError,
    ScanError,
)
from repro.host.resilience import RetryPolicy, ScanReport
from repro.host.scan import (
    PackedDatabase,
    _build_result,
    publish_segment,
    resolve_workers,
    retire_segment,
)
from repro.obs import profile as _obs_profile

#: Engine a session sweeps with unless told otherwise: the batched kernel
#: shares the reference stream *and* the comparator bitplanes across every
#: co-resident query (bit-identical scores to any other engine).
SESSION_ENGINE = "bitscore_batch"

#: Most queries sharing one software pass.  Bounds the per-window working
#: set (k score vectors plus the shared shift table) and the size of a
#: task's result payload.
MAX_QUERIES_PER_PASS = 16

#: Largest ``longest / shortest`` span spread tolerated in one pass.
#: Windows are planned with the shortest member's span and unpacked with
#: the longest member's halo; a wide spread would waste halo work and pad
#: the batch kernel's planes, so mixed batches split instead.
MAX_PASS_SPAN_RATIO = 2.0

__all__ = [
    "ScanSession",
    "SessionRecord",
    "SessionPayload",
    "SessionCheckpointStore",
    "check_session_payload",
    "resolve_batch_thresholds",
    "session_fingerprint",
]


def resolve_batch_thresholds(
    encoded: Sequence[EncodedQuery],
    threshold: Optional[Union[int, Sequence[Optional[int]]]],
    min_identity: Optional[float],
) -> List[int]:
    """Resolve one absolute threshold per query of a batch.

    ``threshold`` is either a single value applied to every query (the
    classic :func:`repro.core.aligner.resolve_threshold` convention) or a
    sequence with exactly one entry per query; a ``None`` entry falls back
    to ``min_identity`` for that query.  The sequence form lets callers —
    the front-door service batcher in particular — share one pass between
    jobs submitted with heterogeneous thresholds.
    """
    if isinstance(threshold, (list, tuple)):
        if len(threshold) != len(encoded):
            raise ValueError(
                f"threshold sequence has {len(threshold)} entries "
                f"for {len(encoded)} queries"
            )
        return [
            resolve_threshold(e, t, min_identity if t is None else None)
            for e, t in zip(encoded, threshold)
        ]
    return [resolve_threshold(e, threshold, min_identity) for e in encoded]


#: One scored (window x query) cell: ``(query_slot, reference, start,
#: hit_positions_local, hit_scores, scores_slice | None)``.  ``query_slot``
#: is the query's index *within its pass*; hit positions are local to the
#: window.  A task payload lists every window's cells query-major within
#: the window: record ``j * k + slot`` belongs to window ``j``, slot
#: ``slot``.
SessionRecord = Tuple[int, int, int, np.ndarray, np.ndarray, Optional[np.ndarray]]
SessionPayload = List[SessionRecord]


@dataclass(frozen=True)
class _PassSpec:
    """One shared pass: co-resident queries scored against every window."""

    pass_id: int
    query_indices: Tuple[int, ...]  # global (input-order) query indices
    arrays: Tuple[np.ndarray, ...]
    spans: Tuple[int, ...]
    thresholds: Tuple[int, ...]
    min_span: int
    max_span: int


@dataclass(frozen=True)
class _TaskSpec:
    """One supervised work item: a chunk of windows of one pass."""

    task_id: int
    pass_id: int
    windows: Tuple[Tuple[int, int, int], ...]  # (reference, start, stop)


# -- scoring core (shared by workers, serial mode, degraded fallback) ----------


def _score_session_windows(
    buffer: np.ndarray,
    lengths: np.ndarray,
    byte_offsets: np.ndarray,
    window_list: Sequence[Tuple[int, int, int]],
    arrays: Sequence[np.ndarray],
    thresholds: Sequence[int],
    engine: str,
    keep_scores: bool,
) -> SessionPayload:
    """Score every (window, query) cell of one task; one sweep per window.

    Each window is unpacked once with the *longest* query's forward halo
    and swept once for the whole batch; shorter queries' extra trailing
    positions are clipped to their own position count, so every kept slice
    matches a solo scan of that query bit for bit.
    """
    spans = [int(a.size) for a in arrays]
    max_span = max(spans)
    payload: SessionPayload = []
    for reference, start, stop in window_list:
        length = int(lengths[reference])
        codes, lookback = _windows.window_codes(
            buffer, int(byte_offsets[reference]), length, start, stop, max_span
        )
        scores_list = scores_batch_from_codes(list(arrays), codes, engine)
        for slot, scores in enumerate(scores_list):
            stop_q = min(stop, _windows.num_positions(length, spans[slot]))
            count = max(0, stop_q - start)
            wanted = scores[lookback : lookback + count]
            hits_local = np.nonzero(wanted >= thresholds[slot])[0]
            payload.append(
                (
                    slot,
                    reference,
                    start,
                    hits_local.astype(np.int64),
                    wanted[hits_local],
                    wanted if keep_scores else None,
                )
            )
    return payload


def check_session_payload(
    payload: SessionPayload,
    window_list: Sequence[Tuple[int, int, int]],
    spans: Sequence[int],
    thresholds: Sequence[int],
    lengths: np.ndarray,
    keep_scores: bool,
) -> Optional[str]:
    """Cheap structural validation of one session task result.

    The session analogue of
    :func:`repro.host.resilience.check_chunk_payload`: returns ``None``
    when the payload is sane, else a human-readable reason.  Corrupt
    worker results are retried, never merged.
    """
    k = len(spans)
    if not isinstance(payload, list):
        return f"payload is {type(payload).__name__}, expected a record list"
    if len(payload) != len(window_list) * k:
        return f"expected {len(window_list) * k} records, got {len(payload)}"
    for j, (reference, start, stop) in enumerate(window_list):
        length = int(lengths[reference])
        for slot in range(k):
            record = payload[j * k + slot]
            where = f"window {j} slot {slot}"
            if not isinstance(record, tuple) or len(record) != 6:
                return f"{where}: not a 6-tuple"
            rec_slot, rec_reference, rec_start, hits, hit_scores, scores = record
            if (rec_slot, rec_reference, rec_start) != (slot, reference, start):
                return f"{where}: record keyed ({rec_slot}, {rec_reference}, {rec_start})"
            stop_q = min(stop, _windows.num_positions(length, spans[slot]))
            count = max(0, stop_q - start)
            if not isinstance(hits, np.ndarray) or hits.ndim != 1:
                return f"{where}: hit positions is not a 1-D array"
            if not isinstance(hit_scores, np.ndarray) or hit_scores.shape != hits.shape:
                return f"{where}: hit_scores shape mismatch"
            if hits.size:
                if hits.dtype.kind not in "iu" or hit_scores.dtype.kind not in "iu":
                    return f"{where}: non-integer hit arrays"
                if int(hits.min()) < 0 or int(hits.max()) >= count:
                    return f"{where}: hit position out of range"
                if hits.size > 1 and not bool(np.all(np.diff(hits) > 0)):
                    return f"{where}: hit positions not strictly increasing"
                if (
                    int(hit_scores.min()) < thresholds[slot]
                    or int(hit_scores.max()) > spans[slot]
                ):
                    return (
                        f"{where}: hit score outside "
                        f"[{thresholds[slot]}, {spans[slot]}]"
                    )
            if keep_scores:
                if not isinstance(scores, np.ndarray) or scores.ndim != 1:
                    return f"{where}: missing score slice"
                if scores.size != count:
                    return f"{where}: score slice size {scores.size} != {count}"
                if scores.size and (
                    int(scores.min()) < 0 or int(scores.max()) > spans[slot]
                ):
                    return f"{where}: score outside [0, {spans[slot]}]"
                recomputed = np.nonzero(scores >= thresholds[slot])[0]
                if not np.array_equal(recomputed, hits):
                    return f"{where}: hits disagree with score slice"
                if not np.array_equal(scores[hits], hit_scores):
                    return f"{where}: hit scores disagree with score slice"
            elif scores is not None:
                return f"{where}: unexpected score slice"
    return None


# -- durable checkpointing -----------------------------------------------------


class SessionCheckpointStore(CheckpointStore):
    """Checkpoint layout for session tasks.

    The base store keys arrays by reference index, which is ambiguous here
    — one task holds many (window x query) cells that may share a
    reference — so chunk files carry a ``meta`` table (slot, reference,
    start, has-scores flag) plus arrays keyed by record position.  The
    manifest/``prepare`` machinery (fingerprint match, stale-file sweep,
    atomic writes) is inherited unchanged.
    """

    def save_chunk(self, chunk: int, payload: SessionPayload) -> None:
        meta = np.asarray(
            [
                [rec[0], rec[1], rec[2], 0 if rec[5] is None else 1]
                for rec in payload
            ],
            dtype=np.int64,
        ).reshape(-1, 4)
        arrays: Dict[str, np.ndarray] = {"meta": meta}
        for i, (_slot, _reference, _start, hits, hit_scores, scores) in enumerate(
            payload
        ):
            arrays[f"pos_{i}"] = hits
            arrays[f"hs_{i}"] = hit_scores
            if scores is not None:
                arrays[f"sc_{i}"] = scores
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.chunk_path(chunk)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        num_bytes = tmp.stat().st_size
        os.replace(tmp, path)
        self.chunks_written += 1
        self.bytes_written += num_bytes
        _obs_profile.record_checkpoint_chunk(num_bytes)

    def load_chunk(self, chunk: int) -> Optional[SessionPayload]:
        path = self.chunk_path(chunk)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                payload: SessionPayload = []
                for i, (slot, reference, start, has_scores) in enumerate(
                    data["meta"].tolist()
                ):
                    scores = data[f"sc_{i}"] if has_scores else None
                    payload.append(
                        (
                            int(slot),
                            int(reference),
                            int(start),
                            data[f"pos_{i}"],
                            data[f"hs_{i}"],
                            scores,
                        )
                    )
                return payload
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            # A kill mid-write or disk corruption: rescan this task.
            return None


def session_fingerprint(
    database: PackedDatabase,
    passes: Sequence[_PassSpec],
    tasks: Sequence[_TaskSpec],
    engine: str,
    keep_scores: bool,
) -> str:
    """SHA-256 over everything that determines one batch call's results.

    Covers the database image, every pass's queries and thresholds, the
    engine/``keep_scores`` configuration, *and* the task/window layout —
    task files are keyed by task id, so resuming against a different
    window plan must be refused, not silently mixed.
    """
    digest = hashlib.sha256()
    digest.update(b"fabp-session-v1")
    digest.update(f"|e={engine}|k={int(keep_scores)}".encode())
    digest.update(f"|n={database.num_references}".encode())
    digest.update("\x00".join(database.names).encode())
    digest.update(np.ascontiguousarray(database.lengths).tobytes())
    digest.update(np.ascontiguousarray(database.buffer).tobytes())
    for spec in passes:
        digest.update(f"|p={spec.pass_id}".encode())
        for array, threshold in zip(spec.arrays, spec.thresholds):
            digest.update(np.ascontiguousarray(array, dtype=np.uint8).tobytes())
            digest.update(f"|t={threshold}".encode())
    for task in tasks:
        digest.update(f"|c={task.task_id}:{task.pass_id}".encode())
        for reference, start, stop in task.windows:
            digest.update(f"|w={reference},{start},{stop}".encode())
    return digest.hexdigest()


# -- worker process ------------------------------------------------------------


def _session_worker_main(
    conn,
    shm_name: str,
    packed_bytes: int,
    lengths: np.ndarray,
    byte_offsets: np.ndarray,
) -> None:
    """Resident worker loop: attach the shared image once, score tasks.

    Protocol (parent -> worker): ``("task", task_id, attempt, windows,
    arrays, thresholds, engine, keep_scores)`` or ``("stop",)``.  Worker ->
    parent: ``("ok", task_id, attempt, payload)`` or ``("err", task_id,
    attempt, message)``.  Every task message is self-contained, so a
    respawned or hedged worker needs no per-scan installation step.
    """
    from multiprocessing import shared_memory

    from repro.host.resilience import _recv_or_orphaned

    parent_pid = os.getppid()
    segment = shared_memory.SharedMemory(name=shm_name)
    buffer: Optional[np.ndarray] = np.frombuffer(
        segment.buf, dtype=np.uint8, count=packed_bytes
    )
    try:
        while True:
            message = _recv_or_orphaned(conn, parent_pid)
            if message[0] == "stop":
                break
            _, task_id, attempt, window_list, arrays, thresholds, engine, keep = (
                message
            )
            try:
                payload = _score_session_windows(
                    buffer, lengths, byte_offsets,
                    window_list, arrays, thresholds, engine, keep,
                )
            except (ValueError, IndexError) as exc:
                conn.send(("err", task_id, attempt, str(exc)))
                continue
            conn.send(("ok", task_id, attempt, payload))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        # Drop the numpy view first: closing a segment with an exported
        # buffer pointer raises BufferError at interpreter shutdown.
        buffer = None  # noqa: F841
        try:
            segment.close()
        except (OSError, BufferError):
            pass


class _SessionWorker:
    """Parent-side view of one resident worker process."""

    __slots__ = ("id", "process", "conn", "busy")

    def __init__(self, worker_id: int, process, conn):
        self.id = worker_id
        self.process = process
        self.conn = conn
        #: ``None`` when idle, else ``(task_id, attempt, started, deadline)``.
        self.busy: Optional[Tuple[int, int, float, Optional[float]]] = None


class _Exhausted(Exception):
    """Internal: a task ran out of retries or the pool is unhealthy."""

    def __init__(self, reason: str, error: Exception):
        self.reason = reason
        self.error = error
        super().__init__(reason)


# -- the session ---------------------------------------------------------------


class ScanSession:
    """A warm scan runtime over one packed database.

    ``references`` is anything :class:`repro.host.scan.PackedDatabase`
    accepts, or a ready database.  ``workers=None`` keeps one resident
    worker per CPU; ``workers <= 1`` (or a restricted environment where
    fork / shared memory fail) runs every call in-process, with the same
    batching, checkpointing, and report semantics.

    Use as a context manager, or call :meth:`close` — the shared segment
    and worker pool live until then::

        with ScanSession(references, workers=4) as session:
            for batch in query_stream:
                results = session.scan_batch(batch)
    """

    def __init__(
        self,
        references: Union[PackedDatabase, Iterable[ReferenceLike]],
        *,
        engine: str = SESSION_ENGINE,
        workers: Optional[int] = None,
        names: Optional[Sequence[str]] = None,
    ):
        self._database = (
            references
            if isinstance(references, PackedDatabase)
            else PackedDatabase.from_references(references, names)
        )
        self._engine = engine
        self._num_workers = resolve_workers(workers)
        self._segment = None
        self._context = None
        self._workers: List[_SessionWorker] = []
        self._next_worker_id = 0
        self._closed = False
        #: Batch calls completed by this session.
        self.scans_completed = 0
        #: Batch calls that found the pool and image already warm.
        self.pool_reuses = 0
        #: Workers replaced over the session's lifetime (all causes).
        self.respawns_total = 0
        if self._num_workers > 1:
            try:
                self._start_pool()
            except (ImportError, OSError, PermissionError):
                # Restricted environments (no /dev/shm, no fork): stay
                # serial with identical semantics.
                self._teardown_pool()
                self._num_workers = 1
        _obs_profile.record_scan_session_open(self._database.packed_bytes)

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "ScanSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Stop the workers and retire the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._teardown_pool()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def database(self) -> PackedDatabase:
        return self._database

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def resident_bytes(self) -> int:
        """Bytes of packed database image this session keeps resident."""
        return self._database.packed_bytes

    def _start_pool(self) -> None:
        import multiprocessing

        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._context = multiprocessing.get_context()
        self._segment = publish_segment(self._database.buffer)
        for _ in range(self._num_workers):
            self._spawn_worker()

    def _spawn_worker(self) -> _SessionWorker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_session_worker_main,
            args=(
                child_conn,
                self._segment.name,
                self._database.packed_bytes,
                self._database.lengths,
                self._database.byte_offsets,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _SessionWorker(self._next_worker_id, process, parent_conn)
        self._next_worker_id += 1
        self._workers.append(worker)
        return worker

    def _teardown_pool(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []
        if self._segment is not None:
            retire_segment(self._segment)
            self._segment = None

    def _pool_ready(self) -> bool:
        return self._segment is not None and self._num_workers > 1

    def _revive_pool(self) -> None:
        """Replace workers that died between calls; top back up to size."""
        for worker in list(self._workers):
            if worker.process.is_alive():
                continue
            self._workers.remove(worker)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=0.5)
            self.respawns_total += 1
        while len(self._workers) < self._num_workers:
            self._spawn_worker()

    def _retire_busy_workers(self) -> None:
        """Kill workers still holding a task so stale results cannot leak.

        Runs at the end of every pool-mode call: a hedged twin (or an
        exhausted/aborted run) may leave a worker mid-task, and its late
        reply must never be mistaken for a later call's task.  The pool is
        topped back up so the next call still starts warm.
        """
        for worker in list(self._workers):
            if worker.busy is None:
                continue
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn child
                worker.process.kill()
                worker.process.join(timeout=1.0)
            self._workers.remove(worker)
            try:
                worker.conn.close()
            except OSError:
                pass
            self.respawns_total += 1
        if self._segment is not None and not self._closed:
            try:
                while len(self._workers) < self._num_workers:
                    self._spawn_worker()
            except (OSError, ValueError):
                # Next call's revive will retry; a short pool still works.
                return

    # -- planning -------------------------------------------------------------

    def _plan(
        self, encoded: List[EncodedQuery], resolved: List[int]
    ) -> Tuple[List[_PassSpec], List[_TaskSpec]]:
        """Group queries into shared passes; split each pass into tasks.

        Grouping follows the *software* batch kernel's economics, not the
        FPGA lane budget (which admits one long query per pass): any
        queries can share a sweep, so sort by span descending and first-fit
        until a pass holds :data:`MAX_QUERIES_PER_PASS` queries or its span
        spread would exceed :data:`MAX_PASS_SPAN_RATIO`.
        """
        order = sorted(range(len(encoded)), key=lambda i: -len(encoded[i]))
        groups: List[List[int]] = []
        for index in order:
            span = len(encoded[index])
            placed = False
            for group in groups:
                if (
                    len(group) < MAX_QUERIES_PER_PASS
                    and len(encoded[group[0]]) <= span * MAX_PASS_SPAN_RATIO
                ):
                    group.append(index)
                    placed = True
                    break
            if not placed:
                groups.append([index])
        lengths = self._database.lengths.tolist()
        passes: List[_PassSpec] = []
        tasks: List[_TaskSpec] = []
        for pass_id, group in enumerate(groups):
            indices = tuple(group)
            arrays = tuple(encoded[i].as_array() for i in indices)
            spans = tuple(int(a.size) for a in arrays)
            thresholds = tuple(int(resolved[i]) for i in indices)
            passes.append(
                _PassSpec(
                    pass_id, indices, arrays, spans, thresholds,
                    min(spans), max(spans),
                )
            )
            _obs_profile.record_scan_session_pass(len(group))
            for chunk in _windows.plan_windows(
                lengths, min(spans), self._num_workers
            ):
                tasks.append(
                    _TaskSpec(
                        len(tasks),
                        pass_id,
                        tuple((w.reference, w.start, w.stop) for w in chunk),
                    )
                )
        return passes, tasks

    # -- public API -----------------------------------------------------------

    def scan(
        self, query: QueryLike, **kwargs
    ) -> Union[List[AlignmentResult], Tuple[List[AlignmentResult], ScanReport]]:
        """Score one query over the resident database (a batch of one)."""
        outcome = self.scan_batch([query], **kwargs)
        if kwargs.get("with_report"):
            batches, report = outcome
            return batches[0], report
        return outcome[0]

    def scan_batch(
        self,
        queries: Iterable[QueryLike],
        *,
        threshold: Optional[Union[int, Sequence[Optional[int]]]] = None,
        min_identity: Optional[float] = None,
        keep_scores: bool = False,
        policy: Optional[RetryPolicy] = None,
        checkpoint_dir: object = None,
        resume: bool = False,
        with_report: bool = False,
    ) -> Union[
        List[List[AlignmentResult]],
        Tuple[List[List[AlignmentResult]], ScanReport],
    ]:
        """Score ``k`` queries over the resident database in shared passes.

        Returns one result list per query, in input order, each bit-identical
        to a solo :func:`repro.host.scan.scan_database` of that query.
        ``threshold`` / ``min_identity`` follow the aligner's convention and
        are resolved per query; ``threshold`` may also be a sequence with one
        entry per query (``None`` entries fall back to ``min_identity``), so
        heterogeneous jobs can share one pass — the shape the front-door
        service batcher uses.  ``policy``, ``checkpoint_dir``, ``resume``
        and ``with_report`` mirror the supervised scan: every batch runs
        under retry/hedge/respawn supervision and (with ``with_report``)
        returns its :class:`~repro.host.resilience.ScanReport`.
        """
        if self._closed:
            raise ScanError("scan session is closed")
        query_list = list(queries)
        policy = policy or RetryPolicy()
        encoded = [
            q if isinstance(q, EncodedQuery) else encode_query(q)
            for q in query_list
        ]
        resolved = resolve_batch_thresholds(encoded, threshold, min_identity)
        reused = self.scans_completed > 0
        passes, tasks = self._plan(encoded, resolved) if encoded else ([], [])
        report = ScanReport(
            mode="serial",
            workers=self._num_workers,
            chunk_size=0,
            chunks_total=len(tasks),
            engine=self._engine,
            threshold=min(resolved) if resolved else 0,
        )

        stage_seconds: Dict[str, float] = {}
        store: Optional[SessionCheckpointStore] = None
        done: Dict[int, SessionPayload] = {}
        if checkpoint_dir is not None:
            store = SessionCheckpointStore(checkpoint_dir)
            report.checkpoint_dir = str(store.directory)
            report.resumed = bool(resume)
            with _obs_profile.stage(
                "scan.checkpoint_load", category="scan"
            ) as load_timer:
                fingerprint = session_fingerprint(
                    self._database, passes, tasks, self._engine, keep_scores
                )
                loaded = store.prepare(fingerprint, len(tasks), 0, resume)
                # Never trust disk blindly: checkpointed tasks must pass the
                # same sanity check a worker result does.
                for task_id, payload in loaded.items():
                    task = tasks[task_id]
                    spec = passes[task.pass_id]
                    if (
                        check_session_payload(
                            payload, task.windows, spec.spans, spec.thresholds,
                            self._database.lengths, keep_scores,
                        )
                        is None
                    ):
                        done[task_id] = payload
            stage_seconds["checkpoint_load"] = load_timer.seconds
            report.chunks_from_checkpoint = len(done)

        started = time.monotonic()
        execute_timer: Optional[_obs_profile.StageTimer] = None
        try:
            if len(done) < len(tasks):
                with _obs_profile.stage("scan.execute", category="scan") as timer:
                    execute_timer = timer
                    if self._pool_ready():
                        report.mode = "parallel"
                        try:
                            self._revive_pool()
                            self._run_pool(
                                tasks, passes, keep_scores, policy, report,
                                store, done,
                            )
                        except (ImportError, OSError, PermissionError):
                            report.mode = "serial"
                            self._run_in_process(
                                tasks, passes, keep_scores, report, store, done
                            )
                    else:
                        self._run_in_process(
                            tasks, passes, keep_scores, report, store, done
                        )
        except _Exhausted as exhausted:
            if not policy.degrade:
                raise exhausted.error from None
            report.degraded = True
            report.degraded_reason = exhausted.reason
            with _obs_profile.stage(
                "scan.degraded", category="scan"
            ) as degraded_timer:
                self._run_in_process(
                    tasks, passes, keep_scores, report, store, done,
                    degraded=True,
                )
            stage_seconds["degraded"] = degraded_timer.seconds
        if execute_timer is not None:
            stage_seconds["execute"] = execute_timer.seconds
        report.chunks_completed = len(done)
        report.elapsed_seconds = time.monotonic() - started

        with _obs_profile.stage("scan.merge", category="scan") as merge_timer:
            results = self._merge(encoded, passes, tasks, done, keep_scores)
        stage_seconds["merge"] = merge_timer.seconds
        report.metrics["stage_seconds"] = {
            name: round(seconds, 6) for name, seconds in stage_seconds.items()
        }
        if store is not None:
            report.metrics["checkpoint"] = {
                "chunks_written": store.chunks_written,
                "bytes_written": store.bytes_written,
            }
        if report.mode == "parallel":
            report.metrics["shared_memory_bytes"] = int(
                self._database.packed_bytes
            )
        self.scans_completed += 1
        if reused:
            self.pool_reuses += 1
        _obs_profile.record_scan_session_batch(len(query_list), reused)
        _obs_profile.record_scan_report_counters(
            report.retries, report.hedges, report.respawns, report.degraded
        )
        if with_report:
            return results, report
        return results

    # -- execution ------------------------------------------------------------

    def _complete(
        self,
        task_id: int,
        payload: SessionPayload,
        store: Optional[SessionCheckpointStore],
        done: Dict[int, SessionPayload],
    ) -> None:
        done[task_id] = payload
        if store is not None:
            store.save_chunk(task_id, payload)

    def _run_in_process(
        self,
        tasks: Sequence[_TaskSpec],
        passes: Sequence[_PassSpec],
        keep_scores: bool,
        report: ScanReport,
        store: Optional[SessionCheckpointStore],
        done: Dict[int, SessionPayload],
        degraded: bool = False,
    ) -> None:
        """Score remaining tasks with the in-process engine.

        Serves both the serial mode (``workers <= 1`` / restricted
        environments) and the degraded completion after an exhausted pool;
        a sanity failure here means the scan itself is broken, which is
        fatal.
        """
        for task in tasks:
            if task.task_id in done:
                continue
            spec = passes[task.pass_id]
            t0 = time.monotonic()
            payload = _score_session_windows(
                self._database.buffer,
                self._database.lengths,
                self._database.byte_offsets,
                task.windows,
                spec.arrays,
                spec.thresholds,
                self._engine,
                keep_scores,
            )
            error = check_session_payload(
                payload, task.windows, spec.spans, spec.thresholds,
                self._database.lengths, keep_scores,
            )
            if error is not None:
                raise CorruptResultError(
                    task.task_id, 0, f"in-process session scan: {error}"
                )
            detail = "degraded serial" if degraded else ""
            report.record(
                task.task_id, 0, "ok", time.monotonic() - t0, None, detail
            )
            if degraded:
                report.chunks_degraded += 1
            self._complete(task.task_id, payload, store, done)

    def _run_pool(
        self,
        tasks: Sequence[_TaskSpec],
        passes: Sequence[_PassSpec],
        keep_scores: bool,
        policy: RetryPolicy,
        report: ScanReport,
        store: Optional[SessionCheckpointStore],
        done: Dict[int, SessionPayload],
    ) -> None:
        """Drive the resident pool through the task list under supervision.

        Same event loop shape as the one-shot
        :class:`repro.host.resilience._Supervisor` — dispatch, wait on
        pipes + process sentinels, sweep timeouts, respawn — but the
        workers outlive the call; only workers still holding a task at
        exit are replaced (stale replies must never leak into a later
        call).
        """
        from multiprocessing import connection

        rng = random.Random(policy.seed)
        failures: Dict[int, List[str]] = {}
        next_attempt: Dict[int, int] = {}
        in_flight: Dict[int, int] = {}
        task_map = {task.task_id: task for task in tasks}
        now = time.monotonic()
        pending: List[Tuple[float, int]] = [
            (now, task.task_id) for task in tasks if task.task_id not in done
        ]

        def _dispatch_to(worker: _SessionWorker, task_id: int, hedge: bool) -> None:
            attempt = next_attempt.get(task_id, 0)
            next_attempt[task_id] = attempt + 1
            task = task_map[task_id]
            spec = passes[task.pass_id]
            t_now = time.monotonic()
            deadline = None if policy.timeout is None else t_now + policy.timeout
            worker.conn.send(
                (
                    "task", task_id, attempt, task.windows, spec.arrays,
                    spec.thresholds, self._engine, keep_scores,
                )
            )
            worker.busy = (task_id, attempt, t_now, deadline)
            in_flight[task_id] = in_flight.get(task_id, 0) + 1
            if hedge:
                report.hedges += 1

        def _register_failure(task_id: int, outcome: str, t_now: float) -> None:
            outcomes = failures.setdefault(task_id, [])
            outcomes.append(outcome)
            if len(outcomes) > policy.max_retries:
                raise _Exhausted(
                    f"task {task_id} exhausted its retry budget "
                    f"({len(outcomes)} failures: {', '.join(outcomes)})",
                    ChunkFailedError(task_id, outcomes),
                )
            report.retries += 1
            pending.append((t_now + policy.delay(len(outcomes), rng), task_id))

        def _on_message(worker: _SessionWorker, message, t_now: float) -> None:
            kind, task_id, attempt = message[0], message[1], message[2]
            started = worker.busy[2] if worker.busy else t_now
            elapsed = t_now - started
            worker.busy = None
            in_flight[task_id] = max(0, in_flight.get(task_id, 1) - 1)
            if task_id in done:
                report.record(
                    task_id, attempt, "duplicate", elapsed, worker.id,
                    "hedged twin finished first",
                )
                return
            if kind == "err":
                report.record(
                    task_id, attempt, "raise", elapsed, worker.id, message[3]
                )
                _register_failure(task_id, "raise", t_now)
                return
            payload = message[3]
            task = task_map[task_id]
            spec = passes[task.pass_id]
            error = check_session_payload(
                payload, task.windows, spec.spans, spec.thresholds,
                self._database.lengths, keep_scores,
            )
            if error is not None:
                report.record(
                    task_id, attempt, "corrupt", elapsed, worker.id, error
                )
                _register_failure(task_id, "corrupt", t_now)
                return
            report.record(task_id, attempt, "ok", elapsed, worker.id)
            self._complete(task_id, payload, store, done)

        def _on_death(worker: _SessionWorker, t_now: float) -> None:
            self._workers.remove(worker)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=0.5)
            exitcode = worker.process.exitcode
            if worker.busy is not None:
                task_id, attempt, started, _deadline = worker.busy
                in_flight[task_id] = max(0, in_flight.get(task_id, 1) - 1)
                if task_id not in done:
                    report.record(
                        task_id, attempt, "crash", t_now - started, worker.id,
                        f"exitcode {exitcode}",
                    )
                    _register_failure(task_id, "crash", t_now)
            report.respawns += 1
            self.respawns_total += 1
            if report.respawns <= policy.max_respawns:
                self._spawn_worker()

        def _sweep_timeouts(t_now: float) -> None:
            for worker in list(self._workers):
                if worker.busy is None or worker.busy[3] is None:
                    continue
                task_id, attempt, started, deadline = worker.busy
                if t_now <= deadline:
                    continue
                worker.process.terminate()
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
                self._workers.remove(worker)
                try:
                    worker.conn.close()
                except OSError:
                    pass
                in_flight[task_id] = max(0, in_flight.get(task_id, 1) - 1)
                if task_id not in done:
                    report.record(
                        task_id, attempt, "timeout", t_now - started, worker.id,
                        f"exceeded {policy.timeout:.3g}s",
                    )
                    _register_failure(task_id, "timeout", t_now)
                report.respawns += 1
                self.respawns_total += 1
                if report.respawns <= policy.max_respawns:
                    self._spawn_worker()

        def _pick_straggler(t_now: float) -> Optional[int]:
            oldest_task = None
            oldest_started = None
            for worker in self._workers:
                if worker.busy is None:
                    continue
                task_id, _attempt, task_started, _deadline = worker.busy
                if task_id in done or in_flight.get(task_id, 0) > 1:
                    continue
                if t_now - task_started < (policy.hedge_after or 0.0):
                    continue
                if oldest_started is None or task_started < oldest_started:
                    oldest_task, oldest_started = task_id, task_started
            return oldest_task

        def _dispatch(t_now: float) -> None:
            idle = [w for w in self._workers if w.busy is None]
            if not idle:
                return
            pending.sort(key=lambda item: (item[0], item[1]))
            for worker in idle:
                chosen = None
                for i, (ready_time, task_id) in enumerate(pending):
                    if task_id in done:
                        pending.pop(i)
                        chosen = None
                        break  # list mutated; re-enter on next loop iteration
                    if ready_time <= t_now:
                        chosen = pending.pop(i)[1]
                        break
                if chosen is None:
                    continue
                _dispatch_to(worker, chosen, hedge=False)
            if policy.hedge_after is None or pending:
                return
            for worker in [w for w in self._workers if w.busy is None]:
                straggler = _pick_straggler(t_now)
                if straggler is None:
                    return
                _dispatch_to(worker, straggler, hedge=True)

        def _wait_timeout(t_now: float) -> Optional[float]:
            candidates: List[float] = []
            for worker in self._workers:
                if worker.busy is None:
                    continue
                if worker.busy[3] is not None:
                    candidates.append(worker.busy[3])
                if policy.hedge_after is not None:
                    candidates.append(worker.busy[2] + policy.hedge_after)
            if not self._workers or any(w.busy is None for w in self._workers):
                candidates.extend(ready for ready, _ in pending)
            if not candidates:
                return None
            return max(0.0, min(candidates) - t_now) + 0.005

        total = len(tasks)
        try:
            while len(done) < total:
                if not self._workers:
                    raise _Exhausted(
                        f"pool unhealthy: no workers left after "
                        f"{report.respawns} respawns",
                        PoolUnhealthyError(report.respawns, policy.max_respawns),
                    )
                t_now = time.monotonic()
                _dispatch(t_now)
                conn_map = {w.conn: w for w in self._workers}
                sentinel_map = {w.process.sentinel: w for w in self._workers}
                ready = connection.wait(
                    list(conn_map) + list(sentinel_map),
                    timeout=_wait_timeout(t_now),
                )
                t_now = time.monotonic()
                handled = set()
                for obj in ready:
                    worker = conn_map.get(obj)
                    if worker is None:
                        worker = sentinel_map.get(obj)
                    if worker is None or id(worker) in handled:
                        continue
                    handled.add(id(worker))
                    message = None
                    try:
                        if worker.conn.poll():
                            message = worker.conn.recv()
                    except (EOFError, OSError):
                        message = None
                    if message is not None:
                        _on_message(worker, message, t_now)
                        # Fall through: the worker may additionally have died.
                    if not worker.process.is_alive():
                        _on_death(worker, t_now)
                _sweep_timeouts(time.monotonic())
                if report.respawns > policy.max_respawns:
                    raise _Exhausted(
                        f"pool unhealthy: {report.respawns} worker respawns",
                        PoolUnhealthyError(report.respawns, policy.max_respawns),
                    )
        finally:
            self._retire_busy_workers()

    # -- merge ----------------------------------------------------------------

    def _merge(
        self,
        encoded: List[EncodedQuery],
        passes: Sequence[_PassSpec],
        tasks: Sequence[_TaskSpec],
        done: Dict[int, SessionPayload],
        keep_scores: bool,
    ) -> List[List[AlignmentResult]]:
        """Stitch task payloads into per-query, input-ordered results."""
        lengths = self._database.lengths.tolist()
        per_slot: Dict[Tuple[int, int], List[_windows.WindowRecord]] = {}
        for task in tasks:
            for slot, reference, start, hits, hit_scores, scores in done[
                task.task_id
            ]:
                per_slot.setdefault((task.pass_id, slot), []).append(
                    (reference, start, hits, hit_scores, scores)
                )
        results: List[Optional[List[AlignmentResult]]] = [None] * len(encoded)
        for spec in passes:
            for slot, query_index in enumerate(spec.query_indices):
                records = per_slot.get((spec.pass_id, slot), [])
                per_reference = _windows.merge_window_records(
                    records, lengths, spec.spans[slot], keep_scores
                )
                query = encoded[query_index]
                threshold = spec.thresholds[slot]
                results[query_index] = [
                    _build_result(
                        query, self._database.names[index], length, threshold,
                        positions, hit_scores, scores,
                    )
                    for index, (positions, hit_scores, scores, length) in (
                        enumerate(per_reference)
                    )
                ]
        return [batch for batch in results if batch is not None]
