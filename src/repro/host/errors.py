"""Structured error taxonomy for the fault-tolerant scan runtime.

Every failure mode the supervised scanner can hit is a distinct
:class:`ScanError` subclass, so callers (and the CLI exit-code contract,
see ``docs/robustness.md``) can tell *recoverable-but-exhausted* faults
apart from configuration mistakes without parsing message strings.

The hierarchy:

* :class:`ScanError` — base class; anything fatal the scanner raises.

  * :class:`ChunkTimeoutError` — one chunk attempt exceeded the per-chunk
    timeout (only surfaces when retries are exhausted).
  * :class:`WorkerCrashError` — a worker process died (non-zero exit /
    signal) while holding a chunk.
  * :class:`CorruptResultError` — a chunk result failed the per-chunk
    sanity check (out-of-range scores, wrong lengths, unordered hits).
  * :class:`ChunkFailedError` — a chunk exhausted its retry budget; the
    ``attempts`` attribute carries the per-attempt outcomes.
  * :class:`ShardFailedError` — a shard of the sharded runtime exhausted
    its health budget while partial results were disabled
    (``ShardPolicy(allow_partial=False)``).
  * :class:`PoolUnhealthyError` — the worker pool kept dying (respawn
    budget exhausted) and degradation was disabled.
  * :class:`CheckpointError` — checkpoint store problems.

    * :class:`CheckpointMismatchError` — ``--resume`` against a manifest
      whose fingerprint does not match the current
      database/query/threshold/engine configuration.

  * :class:`InjectedFaultError` — a deterministic fault from a
    :class:`repro.host.faults.FaultPlan` fired (raise-kind faults, and
    crash/hang kinds when running without a worker pool to kill).
"""

from __future__ import annotations

from typing import Optional, Sequence


class ScanError(RuntimeError):
    """Base class for every fatal scan-runtime failure."""


class ChunkTimeoutError(ScanError):
    """A chunk attempt ran past the configured per-chunk timeout."""

    def __init__(self, chunk: int, attempt: int, timeout: float):
        self.chunk = chunk
        self.attempt = attempt
        self.timeout = timeout
        super().__init__(
            f"chunk {chunk} attempt {attempt} exceeded {timeout:.3g}s timeout"
        )


class WorkerCrashError(ScanError):
    """A worker process died while a chunk was in flight."""

    def __init__(self, chunk: int, attempt: int, exitcode: Optional[int]):
        self.chunk = chunk
        self.attempt = attempt
        self.exitcode = exitcode
        super().__init__(
            f"worker died (exitcode {exitcode}) on chunk {chunk} attempt {attempt}"
        )


class CorruptResultError(ScanError):
    """A chunk result failed the cheap per-chunk sanity check."""

    def __init__(self, chunk: int, attempt: int, reason: str):
        self.chunk = chunk
        self.attempt = attempt
        self.reason = reason
        super().__init__(f"chunk {chunk} attempt {attempt} corrupt: {reason}")


class ChunkFailedError(ScanError):
    """A chunk exhausted its retry budget without a sane result."""

    def __init__(self, chunk: int, outcomes: Sequence[str]):
        self.chunk = chunk
        self.outcomes = tuple(outcomes)
        super().__init__(
            f"chunk {chunk} failed after {len(self.outcomes)} attempts: "
            + ", ".join(self.outcomes)
        )


class ShardFailedError(ScanError):
    """A shard exhausted its health budget and partial results are off."""

    def __init__(self, shard: int, outcomes: Sequence[str]):
        self.shard = shard
        self.outcomes = tuple(outcomes)
        super().__init__(
            f"shard {shard} failed after {len(self.outcomes)} attempts: "
            + ", ".join(self.outcomes)
        )


class PoolUnhealthyError(ScanError):
    """The worker pool kept dying and degradation was disabled."""

    def __init__(self, respawns: int, budget: int):
        self.respawns = respawns
        self.budget = budget
        super().__init__(
            f"worker pool unhealthy: {respawns} respawns exceeded budget {budget}"
        )


class CheckpointError(ScanError):
    """Base class for checkpoint-store failures."""


class CheckpointMismatchError(CheckpointError):
    """Resume refused: the manifest fingerprint does not match this scan."""

    def __init__(self, expected: str, found: str):
        self.expected = expected
        self.found = found
        super().__init__(
            "checkpoint fingerprint mismatch: manifest was written for a "
            f"different database/query/configuration (manifest {found[:12]}…, "
            f"this scan {expected[:12]}…); refusing to resume"
        )


class InjectedFaultError(ScanError):
    """A deterministic fault from a FaultPlan fired in-process."""

    def __init__(self, chunk: int, attempt: int, kind: str):
        self.chunk = chunk
        self.attempt = attempt
        self.kind = kind
        super().__init__(f"injected {kind} fault on chunk {chunk} attempt {attempt}")
