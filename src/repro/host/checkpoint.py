"""Durable checkpointing for long database scans.

A multi-hour scan must survive process death.  The supervised runtime
(:mod:`repro.host.resilience`) writes each completed chunk's results into a
checkpoint directory as soon as the chunk passes its sanity check:

* ``manifest.json`` — schema version plus a SHA-256 **fingerprint** of
  everything that determines the results (packed database image, reference
  names/lengths, encoded query instructions, threshold, engine,
  ``keep_scores``, chunk layout).  ``--resume`` refuses to reuse
  checkpoints whose fingerprint does not match the current scan
  (:class:`repro.host.errors.CheckpointMismatchError`).
* ``chunk_NNNNNN.npz`` — one file per completed chunk holding the exact
  per-reference arrays (hit positions, hit scores, optional full score
  vectors, lengths).  Files are written to a temp name and ``os.replace``\\ d
  so a kill mid-write can never leave a half-chunk that resumes wrong —
  unreadable files are simply rescanned.

Resuming loads every valid chunk file, skips those chunks entirely (no
rescoring), and scans only what is missing.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.host.errors import CheckpointError, CheckpointMismatchError
from repro.obs import profile as _obs_profile

#: Bump when the on-disk layout changes; old checkpoints are refused.
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: One reference's scan output: (index, positions, hit_scores, scores|None,
#: length) — the exact tuple the scan workers produce.
ChunkRecord = Tuple[int, np.ndarray, np.ndarray, Optional[np.ndarray], int]
ChunkPayload = List[ChunkRecord]


def scan_fingerprint(
    database,
    instructions: np.ndarray,
    threshold: int,
    engine: str,
    keep_scores: bool,
    chunk_size: int,
) -> str:
    """SHA-256 over everything that determines a scan's results.

    ``database`` is a :class:`repro.host.scan.PackedDatabase` (duck-typed to
    avoid a circular import).  Any change to the database image, query,
    threshold, engine, or chunk layout changes the fingerprint, which is
    exactly the condition under which old chunk files must not be reused.
    """
    digest = hashlib.sha256()
    digest.update(f"fabp-scan-v{SCHEMA_VERSION}".encode())
    digest.update(np.ascontiguousarray(instructions, dtype=np.uint8).tobytes())
    digest.update(f"|t={threshold}|e={engine}|k={int(keep_scores)}".encode())
    digest.update(f"|c={chunk_size}|n={database.num_references}".encode())
    digest.update("\x00".join(database.names).encode())
    digest.update(np.ascontiguousarray(database.lengths).tobytes())
    digest.update(np.ascontiguousarray(database.buffer).tobytes())
    return digest.hexdigest()


class CheckpointStore:
    """Directory-backed store of completed chunk results."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        #: Volume written by this store instance (folded into ScanReport v2).
        self.chunks_written = 0
        self.bytes_written = 0

    # -- paths ----------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def chunk_path(self, chunk: int) -> Path:
        return self.directory / f"chunk_{chunk:06d}.npz"

    # -- manifest -------------------------------------------------------------

    def read_manifest(self) -> Optional[dict]:
        try:
            return json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {self.manifest_path}: {exc}"
            ) from exc

    def write_manifest(self, fingerprint: str, num_chunks: int, chunk_size: int) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "num_chunks": num_chunks,
            "chunk_size": chunk_size,
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, self.manifest_path)

    def prepare(
        self, fingerprint: str, num_chunks: int, chunk_size: int, resume: bool
    ) -> Dict[int, ChunkPayload]:
        """Initialize the store; return already-completed chunks when resuming.

        * ``resume=True`` with a matching manifest loads every valid chunk
          file; a fingerprint (or schema) mismatch raises
          :class:`CheckpointMismatchError` rather than silently mixing
          results from a different scan.
        * ``resume=True`` with no manifest starts fresh (nothing to resume).
        * ``resume=False`` always starts fresh, discarding any stale chunk
          files so they cannot leak into this scan's results.
        """
        manifest = self.read_manifest()
        if resume and manifest is not None:
            found = str(manifest.get("fingerprint", ""))
            if (
                manifest.get("version") != SCHEMA_VERSION
                or found != fingerprint
                or int(manifest.get("num_chunks", -1)) != num_chunks
            ):
                raise CheckpointMismatchError(fingerprint, found)
            return self.load_chunks(num_chunks)
        # Fresh start: drop stale chunk files from any previous run.
        if self.directory.exists():
            for path in self.directory.glob("chunk_*.npz"):
                try:
                    path.unlink()
                except OSError:
                    pass
        self.write_manifest(fingerprint, num_chunks, chunk_size)
        return {}

    # -- chunk files ----------------------------------------------------------

    def save_chunk(self, chunk: int, payload: ChunkPayload) -> None:
        """Atomically persist one completed chunk's records."""
        arrays: Dict[str, np.ndarray] = {
            "indices": np.asarray([rec[0] for rec in payload], dtype=np.int64),
            "lengths": np.asarray([rec[4] for rec in payload], dtype=np.int64),
        }
        for index, positions, hit_scores, scores, _length in payload:
            arrays[f"pos_{index}"] = positions
            arrays[f"hs_{index}"] = hit_scores
            if scores is not None:
                arrays[f"sc_{index}"] = scores
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.chunk_path(chunk)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            # os.replace is atomic against crashes of *this* process, but
            # only an fsync before the rename makes the contents durable
            # against the machine dying right after the replace.
            handle.flush()
            os.fsync(handle.fileno())
        num_bytes = tmp.stat().st_size
        os.replace(tmp, path)
        self.chunks_written += 1
        self.bytes_written += num_bytes
        _obs_profile.record_checkpoint_chunk(num_bytes)

    def load_chunk(self, chunk: int) -> Optional[ChunkPayload]:
        """Load one chunk file; ``None`` if missing or unreadable."""
        path = self.chunk_path(chunk)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                indices = data["indices"]
                lengths = data["lengths"]
                payload: ChunkPayload = []
                for index, length in zip(indices.tolist(), lengths.tolist()):
                    scores = (
                        data[f"sc_{index}"] if f"sc_{index}" in data.files else None
                    )
                    payload.append(
                        (
                            int(index),
                            data[f"pos_{index}"],
                            data[f"hs_{index}"],
                            scores,
                            int(length),
                        )
                    )
                return payload
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            # A kill mid-write or disk corruption: rescan this chunk.
            return None

    def load_chunks(self, num_chunks: int) -> Dict[int, ChunkPayload]:
        done: Dict[int, ChunkPayload] = {}
        for chunk in range(num_chunks):
            payload = self.load_chunk(chunk)
            if payload is not None:
                done[chunk] = payload
        return done
