"""Host-side runtime: the OpenCL host program of §IV, in model form.

The paper's host code "encodes the queries and sends them along with the
reference sequences from the host DRAM to the FPGA DRAM", invokes the RTL
kernel, and reads results back.  :class:`FabPHost` reproduces that life
cycle over a whole database:

* references are packed once into the modeled FPGA DRAM image;
* multi-channel devices stripe *references* across channels, each channel
  running its own kernel array (the paper: "FabP is able to utilize
  multiple channels as long as the FPGA has enough resources") — elapsed
  time is the busiest channel's;
* per-query results aggregate hits with reference names, cycle counts and
  achieved bandwidth, and include host-side transfer accounting (PCIe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.accel.device import FpgaDevice, KINTEX7
from repro.accel.kernel import FabPKernel, KernelRun
from repro.core.encoding import EncodedQuery, encode_query
from repro.seq import fasta, packing
from repro.seq.sequence import as_rna

#: Host-to-FPGA transfer bandwidth (PCIe gen3 x8 effective), bytes/s.
PCIE_BANDWIDTH = 6.0e9


@dataclass(frozen=True)
class DatabaseEntry:
    """One packed reference resident in the modeled FPGA DRAM."""

    name: str
    codes: np.ndarray
    channel: int

    @property
    def length(self) -> int:
        return int(self.codes.size)

    @property
    def packed_bytes(self) -> int:
        return packing.packed_size_bytes(self.length)


@dataclass(frozen=True)
class NamedHit:
    """A hit with its reference attached (host-side result record).

    ``strand`` is ``"+"`` (forward) or ``"-"`` (the hit was found on the
    reverse complement; ``position`` is the forward-strand coordinate where
    the aligned region *starts*).
    """

    reference: str
    position: int
    score: int
    strand: str = "+"

    def __str__(self) -> str:
        return f"{self.reference}:{self.position}({self.strand}) (score {self.score})"


@dataclass(frozen=True)
class HostSearchResult:
    """Aggregated outcome of one query over the whole database."""

    query: EncodedQuery
    threshold: int
    hits: Tuple[NamedHit, ...]
    runs: Tuple[KernelRun, ...]
    channel_cycles: Tuple[int, ...]
    transfer_seconds: float

    @property
    def kernel_seconds(self) -> float:
        """Elapsed kernel time: the busiest channel (channels overlap)."""
        if not self.channel_cycles:
            return 0.0
        device = self.runs[0].plan.device if self.runs else KINTEX7
        return max(self.channel_cycles) / device.clock_hz

    @property
    def total_seconds(self) -> float:
        """End-to-end: query upload + kernel + result readback (paper §IV
        measures exactly this envelope)."""
        return self.kernel_seconds + self.transfer_seconds

    @property
    def total_cycles(self) -> int:
        return sum(run.total_cycles for run in self.runs)

    @property
    def best_hit(self) -> Optional[NamedHit]:
        return max(self.hits, key=lambda h: h.score, default=None)

    def __str__(self) -> str:
        return (
            f"HostSearchResult({len(self.hits)} hits over {len(self.runs)} "
            f"references, {self.total_seconds * 1e3:.2f} ms)"
        )


class FabPHost:
    """Own a database on a device; run queries against all of it."""

    def __init__(self, device: FpgaDevice = KINTEX7):
        self.device = device
        self._entries: List[DatabaseEntry] = []
        self._channel_bytes = [0] * device.memory_channels

    # -- database management --------------------------------------------------

    def add_reference(self, reference, name: str = "") -> DatabaseEntry:
        """Pack one reference into DRAM (striped to the emptiest channel)."""
        rna = as_rna(reference) if not isinstance(reference, np.ndarray) else None
        if rna is not None:
            codes = packing.codes_from_text(rna.letters)
            name = name or rna.name or f"ref_{len(self._entries)}"
        else:
            codes = np.asarray(reference, dtype=np.uint8)
            name = name or f"ref_{len(self._entries)}"
        channel = int(np.argmin(self._channel_bytes))
        entry = DatabaseEntry(name=name, codes=codes, channel=channel)
        self._channel_bytes[channel] += entry.packed_bytes
        self._entries.append(entry)
        return entry

    def add_references(self, references: Sequence) -> List[DatabaseEntry]:
        return [self.add_reference(reference) for reference in references]

    def load_fasta(self, path, *, on_error: Optional[str] = None, skipped=None) -> int:
        """Load every record of a FASTA file into the database.

        ``on_error`` follows :func:`repro.seq.fasta.read_rna`: ``None``
        keeps the historical permissive behaviour, ``"raise"`` turns
        malformed/empty/duplicate records into a typed
        :class:`~repro.seq.fasta.FastaError`, ``"skip"`` quarantines them
        (appending a :class:`~repro.seq.fasta.SkippedRecord` to
        ``skipped`` when a list is provided) so one bad record cannot take
        down a long scan.
        """
        count = 0
        for sequence in fasta.read_rna(path, on_error=on_error, skipped=skipped):
            self.add_reference(sequence)
            count += 1
        return count

    @property
    def entries(self) -> Tuple[DatabaseEntry, ...]:
        """The loaded database entries, in insertion order (read-only)."""
        return tuple(self._entries)

    @property
    def num_references(self) -> int:
        return len(self._entries)

    @property
    def database_nucleotides(self) -> int:
        return sum(entry.length for entry in self._entries)

    @property
    def database_bytes(self) -> int:
        return sum(entry.packed_bytes for entry in self._entries)

    def database_upload_seconds(self) -> float:
        """One-time host->FPGA database transfer over PCIe."""
        return self.database_bytes / PCIE_BANDWIDTH

    # -- search ---------------------------------------------------------------

    def search(
        self,
        query,
        *,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
        both_strands: bool = False,
        max_residues: Optional[int] = None,
    ) -> HostSearchResult:
        """Run one query against every reference in the database.

        ``both_strands=True`` additionally streams each reference's reverse
        complement (a second pass, like running the kernel twice — coding
        regions sit on either strand); reverse hits are reported in
        forward-strand coordinates with ``strand="-"``.  ``max_residues``
        models a fixed hardware bitstream sized for longer queries (shorter
        ones are pad-filled, §IV-A).
        """
        if not self._entries:
            raise ValueError("the database is empty; add references first")
        encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
        kernel = FabPKernel(
            encoded,
            device=self.device,
            threshold=threshold,
            min_identity=min_identity,
            max_residues=max_residues,
        )
        hits: List[NamedHit] = []
        runs: List[KernelRun] = []
        channel_cycles = [0] * self.device.memory_channels
        for entry in self._entries:
            run = kernel.run(entry.codes)
            runs.append(run)
            channel_cycles[entry.channel] += run.total_cycles
            hits.extend(
                NamedHit(entry.name, hit.position, hit.score) for hit in run.hits
            )
            if both_strands:
                # Complement then reverse, in code space: complement of a
                # 2-bit code is its bitwise NOT (A<->U, C<->G).
                rc_codes = (3 - entry.codes)[::-1].copy()
                rc_run = kernel.run(rc_codes)
                runs.append(rc_run)
                channel_cycles[entry.channel] += rc_run.total_cycles
                length = entry.length
                span = len(encoded)
                hits.extend(
                    NamedHit(
                        entry.name,
                        length - hit.position - span,
                        hit.score,
                        strand="-",
                    )
                    for hit in rc_run.hits
                )
        # Host transfers: encoded query up, hit records back.
        query_bytes = -(-encoded.storage_bits() // 8)
        result_bytes = 6 * len(hits)  # 42-bit records padded to 6 bytes
        transfer = (query_bytes + result_bytes) / PCIE_BANDWIDTH
        return HostSearchResult(
            query=encoded,
            threshold=kernel.threshold,
            hits=tuple(sorted(hits, key=lambda h: (-h.score, h.reference, h.position))),
            runs=tuple(runs),
            channel_cycles=tuple(channel_cycles),
            transfer_seconds=transfer,
        )

    def scan(
        self,
        query,
        *,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
        engine: str = "bitscore",
        workers: Optional[int] = 1,
        chunk_size: Optional[int] = None,
        keep_scores: bool = False,
        policy=None,
        faults=None,
        checkpoint_dir=None,
        resume: bool = False,
        with_report: bool = False,
    ):
        """Software fast-path scan of the resident database (no cycle model).

        Runs the bit-parallel scoring engine — optionally across a process
        pool — over every reference already packed into this host, and
        returns per-reference :class:`repro.core.aligner.AlignmentResult`
        objects in database order.  Use :meth:`search` when modeled kernel
        timing is needed; use this when only the hits are.

        Passing ``policy`` (:class:`repro.host.resilience.RetryPolicy`),
        ``faults``, ``checkpoint_dir``/``resume`` or ``with_report=True``
        runs the scan under the supervised fault-tolerant runtime;
        ``with_report=True`` returns ``(results, ScanReport)`` so callers
        can inspect retries, timeouts and degradations.
        """
        if not self._entries:
            raise ValueError("the database is empty; add references first")
        from repro.host.scan import PackedDatabase, scan_database

        database = PackedDatabase.from_references(
            [entry.codes for entry in self._entries],
            names=[entry.name for entry in self._entries],
        )
        return scan_database(
            query,
            database,
            threshold=threshold,
            min_identity=min_identity,
            engine=engine,
            workers=workers,
            chunk_size=chunk_size,
            keep_scores=keep_scores,
            policy=policy,
            faults=faults,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            with_report=with_report,
        )

    def search_many(
        self,
        queries: Sequence,
        *,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
    ) -> List[HostSearchResult]:
        """Run a batch of queries sequentially (the paper's usage model:
        one query resident in FF memory at a time)."""
        return [
            self.search(query, threshold=threshold, min_identity=min_identity)
            for query in queries
        ]


def batch_seconds(results: Sequence[HostSearchResult], *, pipelined: bool = True) -> float:
    """Wall-clock of a multi-query batch.

    ``pipelined=True`` models the standard OpenCL double-buffering: while
    the kernel runs query *i*, the host uploads query *i+1* and reads back
    *i-1*'s results, so transfers hide behind compute (except the first
    upload and last readback).  ``pipelined=False`` is the naive serial sum.
    """
    if not results:
        return 0.0
    kernel_total = sum(r.kernel_seconds for r in results)
    transfer_total = sum(r.transfer_seconds for r in results)
    if not pipelined:
        return kernel_total + transfer_total
    exposed = results[0].transfer_seconds / 2 + results[-1].transfer_seconds / 2
    return max(kernel_total, transfer_total) + exposed
