"""Multi-FPGA cluster model: sharding a database across accelerators.

The paper's group deploys FPGAs in multi-board platforms (its ref. [14]);
genomics databases outgrow a single board's DRAM, so the natural scale-out
is *database sharding*: every board holds a slice of the references and
runs the same query; the host merges hit lists.  This module models that
deployment — shard assignment, per-board timing, merge — and reports the
scaling efficiency (stragglers bound the speedup, so balanced sharding
matters and is tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.accel.device import FpgaDevice, KINTEX7
from repro.host.session import FabPHost, HostSearchResult, NamedHit


@dataclass(frozen=True)
class ClusterSearchResult:
    """Merged outcome of one query over all shards."""

    per_board: Tuple[HostSearchResult, ...]
    hits: Tuple[NamedHit, ...]

    @property
    def elapsed_seconds(self) -> float:
        """Boards run concurrently; the straggler sets the pace."""
        return max(r.total_seconds for r in self.per_board)

    @property
    def total_board_seconds(self) -> float:
        """Aggregate busy time (cost/energy accounting)."""
        return sum(r.total_seconds for r in self.per_board)

    @property
    def scaling_efficiency(self) -> float:
        """Parallel efficiency: ideal/actual = mean/max board time."""
        times = [r.total_seconds for r in self.per_board]
        if not times or max(times) == 0:
            return 1.0
        return (sum(times) / len(times)) / max(times)


class FabPCluster:
    """A pool of FabP boards with a sharded reference database."""

    def __init__(self, num_boards: int, device: FpgaDevice = KINTEX7):
        if num_boards < 1:
            raise ValueError("a cluster needs at least one board")
        self.device = device
        self.boards: List[FabPHost] = [FabPHost(device) for _ in range(num_boards)]
        self._board_nucleotides = [0] * num_boards

    @property
    def num_boards(self) -> int:
        return len(self.boards)

    def add_reference(self, reference, name: str = "") -> int:
        """Shard a reference to the least-loaded board; returns board index."""
        board_index = int(np.argmin(self._board_nucleotides))
        entry = self.boards[board_index].add_reference(reference, name)
        self._board_nucleotides[board_index] += entry.length
        return board_index

    def add_references(self, references: Sequence) -> List[int]:
        return [self.add_reference(reference) for reference in references]

    @property
    def database_nucleotides(self) -> int:
        return sum(self._board_nucleotides)

    def load_imbalance(self) -> float:
        """max/mean shard size — 1.0 is perfectly balanced.

        Empty boards count: an idle board drags the mean down, not out of
        the statistic — a two-board cluster with one empty shard is
        maximally imbalanced (2.0), not perfectly balanced.
        """
        sizes = list(self._board_nucleotides)
        if not any(sizes):
            return 1.0
        return max(sizes) / (sum(sizes) / len(sizes))

    def search(
        self,
        query,
        *,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
        both_strands: bool = False,
    ) -> ClusterSearchResult:
        """Run one query on every board; merge and rank the hits."""
        occupied = [b for b in self.boards if b.num_references]
        if not occupied:
            raise ValueError("the cluster database is empty")
        results = [
            board.search(
                query,
                threshold=threshold,
                min_identity=min_identity,
                both_strands=both_strands,
            )
            for board in occupied
        ]
        merged: List[NamedHit] = []
        for result in results:
            merged.extend(result.hits)
        merged.sort(key=lambda h: (-h.score, h.reference, h.position))
        return ClusterSearchResult(per_board=tuple(results), hits=tuple(merged))

    def speedup_vs_single_board(self, query, **options) -> float:
        """Measured scale-out speedup for one query on this database."""
        single = FabPHost(self.device)
        for board in self.boards:
            for entry in board.entries:
                single.add_reference(entry.codes, entry.name)
        single_time = single.search(query, **options).total_seconds
        cluster_time = self.search(query, **options).elapsed_seconds
        if cluster_time == 0:
            return float(self.num_boards)
        return single_time / cluster_time
