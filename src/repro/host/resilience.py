"""Supervised, fault-tolerant execution of chunked database scans.

:func:`repro.host.scan.scan_database` can fan a scan out over a process
pool, but a plain pool treats any worker failure as fatal: one hung
process, one OOM-killed worker, or one corrupt chunk result takes the
whole multi-hour scan down.  This module is the robustness backbone the
ROADMAP's production north-star needs — a small supervisor that owns its
workers directly and guarantees the scan either completes with
**bit-identical, input-ordered results** or fails with a typed
:class:`repro.host.errors.ScanError`:

* **per-chunk timeout** — a chunk attempt that runs past
  :attr:`RetryPolicy.timeout` gets its worker killed and the chunk retried;
* **bounded retries with exponential backoff + jitter** — every failed
  attempt (crash, hang, raise, corrupt) requeues the chunk until
  :attr:`RetryPolicy.max_retries` is exhausted;
* **dead-worker detection and replacement** — worker deaths are observed
  via their process sentinels and the pool is topped back up;
* **hedged re-dispatch** — once the queue drains, straggler chunks older
  than :attr:`RetryPolicy.hedge_after` are speculatively re-issued to idle
  workers; the first sane result wins, duplicates are discarded;
* **per-chunk sanity checking** — every result (including ones loaded from
  a checkpoint) is validated with :func:`check_chunk_payload`; corrupt
  data is never merged, it is retried;
* **graceful degradation** — when a chunk exhausts its budget or the pool
  keeps dying (:attr:`RetryPolicy.max_respawns`), the remaining chunks are
  finished by the in-process serial engine and the
  :class:`ScanReport` marks the scan *degraded* (CLI exit code 3);
* **durable checkpointing** — with a checkpoint directory every completed
  chunk is persisted immediately (:mod:`repro.host.checkpoint`), so a scan
  killed mid-run resumes without rescoring finished chunks.

Determinism: chunk results are merged by reference index, so retry order,
hedging, and worker scheduling cannot change the output.  The
:class:`repro.host.faults.FaultPlan` hook exists precisely to prove that in
CI — any recoverable plan must yield results bit-identical to a fault-free
serial scan.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.host.checkpoint import CheckpointStore, ChunkPayload, scan_fingerprint
from repro.host.errors import (
    ChunkFailedError,
    CorruptResultError,
    PoolUnhealthyError,
)
from repro.host.faults import FaultKind, FaultPlan
from repro.obs import profile as _obs_profile

__all__ = [
    "RetryPolicy",
    "ChunkAttempt",
    "ScanReport",
    "ScanOutcome",
    "ShardStatus",
    "check_chunk_payload",
    "supervised_scan",
]


# -- policy --------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the supervised runtime (all durations in seconds)."""

    #: Extra attempts allowed per chunk after the first one fails.
    max_retries: int = 3
    #: Per-chunk attempt wall-clock budget; ``None`` disables timeouts.
    timeout: Optional[float] = 300.0
    #: Base backoff delay; attempt ``n`` waits ``backoff * 2**(n-1)``.
    backoff: float = 0.05
    #: Ceiling on the exponential backoff delay.
    backoff_max: float = 2.0
    #: Multiplicative jitter: the delay is scaled by ``1 + jitter * u``.
    jitter: float = 0.25
    #: Re-dispatch stragglers older than this once the queue drains;
    #: ``None`` disables hedging.
    hedge_after: Optional[float] = None
    #: Worker respawns tolerated before the pool is declared unhealthy.
    max_respawns: int = 8
    #: On an unhealthy pool / exhausted chunk, finish serially in-process
    #: (reported as *degraded*) instead of raising.
    degrade: bool = True
    #: Seed of the jitter RNG — backoff schedules are reproducible.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff < 0 or self.backoff_max < 0 or self.jitter < 0:
            raise ValueError("backoff, backoff_max and jitter must be >= 0")

    def delay(self, failures: int, rng: random.Random) -> float:
        """Backoff before retry number ``failures`` (1-based), with jitter."""
        base = min(self.backoff_max, self.backoff * (2.0 ** max(0, failures - 1)))
        return base * (1.0 + self.jitter * rng.random())


# -- report --------------------------------------------------------------------


@dataclass
class ChunkAttempt:
    """One attempt at one chunk, as recorded in the :class:`ScanReport`."""

    chunk: int
    attempt: int
    outcome: str  # ok | crash | hang-timeout | timeout | raise | corrupt | duplicate
    seconds: float
    worker: Optional[int] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "chunk": self.chunk,
            "attempt": self.attempt,
            "outcome": self.outcome,
            "seconds": round(self.seconds, 6),
        }
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.detail:
            payload["detail"] = self.detail
        return payload


@dataclass
class ShardStatus:
    """Per-shard outcome of a sharded scan (the schema-v3 ``shards`` row)."""

    shard: int
    start: int
    stop: int
    nucleotides: int
    status: str = "ok"  # ok | dead
    attempts: int = 0
    resumed_chunks: int = 0
    hedges: int = 0
    elapsed_seconds: float = 0.0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "shard": self.shard,
            "start": self.start,
            "stop": self.stop,
            "nucleotides": self.nucleotides,
            "status": self.status,
            "attempts": self.attempts,
            "resumed_chunks": self.resumed_chunks,
            "hedges": self.hedges,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        if self.detail:
            payload["detail"] = self.detail
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardStatus":
        return cls(
            shard=int(payload["shard"]),
            start=int(payload["start"]),
            stop=int(payload["stop"]),
            nucleotides=int(payload["nucleotides"]),
            status=str(payload.get("status", "ok")),
            attempts=int(payload.get("attempts", 0)),
            resumed_chunks=int(payload.get("resumed_chunks", 0)),
            hedges=int(payload.get("hedges", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            detail=str(payload.get("detail", "")),
        )


@dataclass
class ScanReport:
    """Machine-readable account of a supervised scan (schema v3).

    Serialized by :meth:`to_dict` / written by ``fabp-repro scan
    --report-json``; the full schema is documented in
    ``docs/robustness.md`` and ``docs/observability.md``.  Schema v2 added
    the ``metrics`` section (stage wall-times, checkpoint volume, shared
    memory footprint); schema v3 adds the ``shards`` section filled by
    :class:`repro.host.shards.ShardedScanRuntime` (empty for single-shard
    scans) and the exit code 4 = "complete with dead shards".  Older
    reports remain readable through
    :func:`repro.obs.summary.normalize_report_dict`.
    """

    mode: str = "serial"  # serial | parallel | sharded
    workers: int = 1
    chunk_size: int = 0
    chunks_total: int = 0
    chunks_completed: int = 0
    chunks_from_checkpoint: int = 0
    chunks_degraded: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    raised: int = 0
    corrupt: int = 0
    hedges: int = 0
    respawns: int = 0
    degraded: bool = False
    degraded_reason: Optional[str] = None
    engine: str = ""
    threshold: int = 0
    elapsed_seconds: float = 0.0
    checkpoint_dir: Optional[str] = None
    resumed: bool = False
    attempts: List[ChunkAttempt] = field(default_factory=list)
    #: Profiling section (new in v2): ``stage_seconds``, ``checkpoint``
    #: volume and ``shared_memory_bytes``, filled by :func:`supervised_scan`.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Per-shard section (new in v3): filled by the sharded runtime, empty
    #: for single-shard scans.
    shards: List[ShardStatus] = field(default_factory=list)

    #: Report schema version (bump on breaking changes).
    VERSION = 3

    @property
    def clean(self) -> bool:
        """Completed without degradation (retries alone stay clean)."""
        return self.chunks_completed == self.chunks_total and not self.degraded

    @property
    def dead_shards(self) -> int:
        """Shards that exhausted their health budget (partial results)."""
        return sum(1 for shard in self.shards if shard.status == "dead")

    def exit_code(self) -> int:
        """The documented CLI contract: 0 clean, 3 degraded, 4 dead shards."""
        if self.dead_shards:
            return 4
        return 0 if self.clean else 3

    def record(
        self,
        chunk: int,
        attempt: int,
        outcome: str,
        seconds: float,
        worker: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.attempts.append(
            ChunkAttempt(chunk, attempt, outcome, seconds, worker, detail)
        )
        _obs_profile.record_scan_attempt(chunk, attempt, outcome, seconds, worker)
        if outcome in ("timeout", "hang-timeout"):
            self.timeouts += 1
        elif outcome == "crash":
            self.crashes += 1
        elif outcome == "raise":
            self.raised += 1
        elif outcome == "corrupt":
            self.corrupt += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.VERSION,
            "clean": self.clean,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "mode": self.mode,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "engine": self.engine,
            "threshold": self.threshold,
            "chunks": {
                "total": self.chunks_total,
                "completed": self.chunks_completed,
                "from_checkpoint": self.chunks_from_checkpoint,
                "degraded_serial": self.chunks_degraded,
            },
            "counters": {
                "attempts": len(self.attempts),
                "retries": self.retries,
                "timeouts": self.timeouts,
                "crashes": self.crashes,
                "raises": self.raised,
                "corrupt": self.corrupt,
                "hedges": self.hedges,
                "respawns": self.respawns,
            },
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "checkpoint_dir": self.checkpoint_dir,
            "resumed": self.resumed,
            "chunk_attempts": [a.to_dict() for a in self.attempts],
            "metrics": self.metrics,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    def summary(self) -> str:
        """One status line for CLI output."""
        if self.dead_shards:
            state = "dead-shards"
        elif self.degraded:
            state = "degraded"
        else:
            state = "clean"
        line = (
            f"{self.chunks_completed}/{self.chunks_total} chunks "
            f"({self.chunks_from_checkpoint} from checkpoint) [{state}] "
            f"retries={self.retries} timeouts={self.timeouts} "
            f"crashes={self.crashes} corrupt={self.corrupt} "
            f"hedges={self.hedges} mode={self.mode}"
        )
        if self.shards:
            line += f" shards={len(self.shards)} dead={self.dead_shards}"
        return line


@dataclass
class ScanOutcome:
    """What :func:`supervised_scan` returns: results plus their report."""

    results: List[Any]  # List[repro.core.aligner.AlignmentResult]
    report: ScanReport


# -- per-chunk sanity check ----------------------------------------------------


def check_chunk_payload(
    payload: ChunkPayload,
    start: int,
    stop: int,
    lengths: np.ndarray,
    threshold: int,
    span: int,
    keep_scores: bool,
) -> Optional[str]:
    """Cheap structural validation of one chunk result.

    Returns ``None`` when the payload is sane, else a human-readable
    reason.  This is what turns a corrupt worker result into a retry
    instead of silently wrong output: every invariant checked here is one
    the honest scan code upholds by construction.
    """
    if not isinstance(payload, list):
        return f"payload is {type(payload).__name__}, expected a record list"
    if len(payload) != stop - start:
        return f"expected {stop - start} records, got {len(payload)}"
    for offset, record in enumerate(payload):
        if not isinstance(record, tuple) or len(record) != 5:
            return f"record {offset} is not a 5-tuple"
        index, positions, hit_scores, scores, length = record
        expected_index = start + offset
        if index != expected_index:
            return f"record {offset} carries index {index}, expected {expected_index}"
        if int(length) != int(lengths[index]):
            return (
                f"reference {index} length {length} != database length "
                f"{int(lengths[index])}"
            )
        if not isinstance(positions, np.ndarray) or positions.ndim != 1:
            return f"reference {index}: positions is not a 1-D array"
        if not isinstance(hit_scores, np.ndarray) or hit_scores.shape != positions.shape:
            return f"reference {index}: hit_scores shape mismatch"
        num_positions = max(0, int(length) - span + 1)
        if positions.size:
            if positions.dtype.kind not in "iu" or hit_scores.dtype.kind not in "iu":
                return f"reference {index}: non-integer hit arrays"
            if int(positions.min()) < 0 or int(positions.max()) >= num_positions:
                return f"reference {index}: hit position out of range"
            if positions.size > 1 and not bool(np.all(np.diff(positions) > 0)):
                return f"reference {index}: hit positions not strictly increasing"
            if int(hit_scores.min()) < threshold or int(hit_scores.max()) > span:
                return (
                    f"reference {index}: hit score outside "
                    f"[{threshold}, {span}]"
                )
        if keep_scores:
            if not isinstance(scores, np.ndarray) or scores.ndim != 1:
                return f"reference {index}: missing score vector"
            if scores.size != num_positions:
                return (
                    f"reference {index}: score vector size {scores.size} != "
                    f"{num_positions}"
                )
            if scores.size and (
                int(scores.min()) < 0 or int(scores.max()) > span
            ):
                return f"reference {index}: score outside [0, {span}]"
            recomputed = np.nonzero(scores >= threshold)[0]
            if not np.array_equal(recomputed, positions):
                return f"reference {index}: hits disagree with score vector"
            if not np.array_equal(scores[positions], hit_scores):
                return f"reference {index}: hit scores disagree with score vector"
        elif scores is not None:
            return f"reference {index}: unexpected score vector"
    return None


def corrupt_payload(payload: ChunkPayload, span: int) -> ChunkPayload:
    """Deterministically damage a payload so the sanity check must catch it.

    Scores are pushed past the perfect score and every reference length is
    off by one — detectable even for chunks with zero hits.
    """
    damaged: ChunkPayload = []
    for index, positions, hit_scores, scores, length in payload:
        damaged.append(
            (
                index,
                positions,
                hit_scores + span + 7,
                None if scores is None else scores + span + 7,
                length + 1,
            )
        )
    return damaged


# -- chunk scoring (shared by workers, serial mode, degraded fallback) ---------


def _score_chunk_span(
    buffer: np.ndarray,
    lengths: np.ndarray,
    byte_offsets: np.ndarray,
    instructions: np.ndarray,
    threshold: int,
    engine: str,
    keep_scores: bool,
    start: int,
    stop: int,
) -> ChunkPayload:
    from repro.host.scan import _scan_reference_codes
    from repro.seq import packing

    payload: ChunkPayload = []
    for index in range(start, stop):
        codes = packing.unpack(
            buffer[int(byte_offsets[index]) : int(byte_offsets[index + 1])],
            int(lengths[index]),
        )
        positions, hit_scores, scores, length = _scan_reference_codes(
            instructions, codes, threshold, engine, keep_scores
        )
        payload.append((index, positions, hit_scores, scores, length))
    return payload


# -- worker process ------------------------------------------------------------


#: How often an idle worker re-checks that its supervisor is still alive.
_ORPHAN_POLL_SECONDS = 1.0


def _recv_or_orphaned(conn, parent_pid: int):
    """Receive the next message, or raise ``EOFError`` if the parent died.

    Under the fork start method every worker inherits the parent-side pipe
    ends of its earlier-spawned siblings, so a supervisor killed by a
    signal does not reliably surface as pipe EOF — a sibling still holds a
    write end open and a blocking ``recv`` would wait forever.  Poll with
    a bounded timeout and watch for re-parenting instead: once
    ``getppid`` no longer names the supervisor, treat it exactly like EOF
    so the worker exits rather than outliving a SIGKILLed parent.
    """
    while not conn.poll(_ORPHAN_POLL_SECONDS):
        if os.getppid() != parent_pid:
            raise EOFError("supervisor died; worker orphaned")
    return conn.recv()


def _hang_sleep(seconds: float, parent_pid: int) -> None:
    """Injected-hang sleep that still notices a dead supervisor.

    The hang models a stuck worker from the *supervisor's* point of view
    (the chunk times out either way), so slicing the sleep changes
    nothing it tests — but it lets an orphaned hung worker exit within
    one slice instead of finishing a multi-minute nap first.
    """
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        if os.getppid() != parent_pid:
            raise EOFError("supervisor died; worker orphaned")
        remaining = deadline - time.monotonic()
        # statics: ignore[RC005] injected fault: the hang IS the test
        time.sleep(min(_ORPHAN_POLL_SECONDS, max(0.0, remaining)))


def _worker_main(
    conn,
    shm_name: str,
    packed_bytes: int,
    lengths: np.ndarray,
    byte_offsets: np.ndarray,
    instructions: np.ndarray,
    threshold: int,
    engine: str,
    keep_scores: bool,
    span: int,
    fault_plan: Optional[FaultPlan],
) -> None:
    """Worker loop: attach the shared image, score chunks until told to stop.

    Protocol (parent -> worker): ``("chunk", chunk_id, start, stop, attempt)``
    or ``("stop",)``.  Worker -> parent: ``("ok", chunk_id, attempt, payload)``
    or ``("err", chunk_id, attempt, message)``.
    """
    from multiprocessing import shared_memory

    parent_pid = os.getppid()
    segment = shared_memory.SharedMemory(name=shm_name)
    buffer: Optional[np.ndarray] = np.frombuffer(
        segment.buf, dtype=np.uint8, count=packed_bytes
    )
    try:
        while True:
            message = _recv_or_orphaned(conn, parent_pid)
            if message[0] == "stop":
                break
            _, chunk_id, start, stop, attempt = message
            fault = fault_plan.lookup(chunk_id, attempt) if fault_plan else None
            if fault is FaultKind.CRASH:
                os._exit(17)
            if fault is FaultKind.HANG:
                # The supervisor kills us at the policy timeout.
                _hang_sleep(
                    fault_plan.hang_seconds if fault_plan else 3600.0,
                    parent_pid,
                )
                conn.send(("err", chunk_id, attempt, "injected hang outlived parent"))
                continue
            if fault is FaultKind.RAISE:
                conn.send(("err", chunk_id, attempt, "injected raise fault"))
                continue
            payload = _score_chunk_span(
                buffer, lengths, byte_offsets, instructions,
                threshold, engine, keep_scores, start, stop,
            )
            if fault is FaultKind.CORRUPT:
                payload = corrupt_payload(payload, span)
            conn.send(("ok", chunk_id, attempt, payload))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        # Drop the numpy view first: closing a segment with an exported
        # buffer pointer raises BufferError at interpreter shutdown.
        buffer = None  # noqa: F841
        try:
            segment.close()
        except (OSError, BufferError):
            pass


# -- the supervisor ------------------------------------------------------------


class _WorkerHandle:
    """Parent-side view of one worker process."""

    __slots__ = ("id", "process", "conn", "busy")

    def __init__(self, worker_id: int, process, conn):
        self.id = worker_id
        self.process = process
        self.conn = conn
        #: ``None`` when idle, else ``(chunk, attempt, started, deadline)``.
        self.busy: Optional[Tuple[int, int, float, Optional[float]]] = None


class _Exhausted(Exception):
    """Internal: a chunk ran out of retries or the pool is unhealthy."""

    def __init__(self, reason: str, error: Exception):
        self.reason = reason
        self.error = error
        super().__init__(reason)


class _Supervisor:
    """Drive a pool of directly-owned workers through the chunk list."""

    def __init__(
        self,
        database,
        instructions: np.ndarray,
        threshold: int,
        engine: str,
        keep_scores: bool,
        span: int,
        num_workers: int,
        bounds: Sequence[Tuple[int, int]],
        policy: RetryPolicy,
        fault_plan: Optional[FaultPlan],
        store: Optional[CheckpointStore],
        report: ScanReport,
        done: Dict[int, ChunkPayload],
    ):
        self.database = database
        self.instructions = instructions
        self.threshold = threshold
        self.engine = engine
        self.keep_scores = keep_scores
        self.span = span
        self.num_workers = num_workers
        self.bounds = list(bounds)
        self.policy = policy
        self.fault_plan = fault_plan
        self.store = store
        self.report = report
        self.done = done
        self.rng = random.Random(policy.seed)
        self.failures: Dict[int, List[str]] = {}
        self.next_attempt: Dict[int, int] = {}
        self.in_flight: Dict[int, int] = {}
        #: (ready_time, chunk) items awaiting dispatch.
        self.pending: List[Tuple[float, int]] = []
        self.workers: List[_WorkerHandle] = []
        self._next_worker_id = 0
        self._segment = None
        self._context = None

    # -- lifecycle ------------------------------------------------------------

    def run(self) -> None:
        import multiprocessing

        from repro.host import scan as scan_mod

        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._context = multiprocessing.get_context()
        now = time.monotonic()
        for chunk in range(len(self.bounds)):
            if chunk not in self.done:
                self.pending.append((now, chunk))
        self._segment = scan_mod.publish_segment(self.database.buffer)
        try:
            for _ in range(min(self.num_workers, max(1, len(self.pending)))):
                self._spawn_worker()
            self._loop()
        finally:
            self._shutdown()
            scan_mod.retire_segment(self._segment)
            self._segment = None

    def _spawn_worker(self) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._segment.name,
                self.database.packed_bytes,
                self.database.lengths,
                self.database.byte_offsets,
                self.instructions,
                self.threshold,
                self.engine,
                self.keep_scores,
                self.span,
                self.fault_plan,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(self._next_worker_id, process, parent_conn)
        self._next_worker_id += 1
        self.workers.append(handle)
        return handle

    def _shutdown(self) -> None:
        for worker in self.workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers = []

    # -- scheduling -----------------------------------------------------------

    def _take_attempt(self, chunk: int) -> int:
        attempt = self.next_attempt.get(chunk, 0)
        self.next_attempt[chunk] = attempt + 1
        return attempt

    def _dispatch_to(self, worker: _WorkerHandle, chunk: int, hedge: bool) -> None:
        attempt = self._take_attempt(chunk)
        start, stop = self.bounds[chunk]
        now = time.monotonic()
        deadline = None if self.policy.timeout is None else now + self.policy.timeout
        worker.conn.send(("chunk", chunk, start, stop, attempt))
        worker.busy = (chunk, attempt, now, deadline)
        self.in_flight[chunk] = self.in_flight.get(chunk, 0) + 1
        if hedge:
            self.report.hedges += 1

    def _dispatch(self, now: float) -> None:
        idle = [w for w in self.workers if w.busy is None]
        if not idle:
            return
        # Ready pending chunks first (input order for determinism of dispatch).
        self.pending.sort(key=lambda item: (item[0], item[1]))
        for worker in idle:
            chosen = None
            for i, (ready_time, chunk) in enumerate(self.pending):
                if chunk in self.done:
                    self.pending.pop(i)
                    chosen = None
                    break  # list mutated; re-enter on next loop iteration
                if ready_time <= now:
                    chosen = self.pending.pop(i)[1]
                    break
            if chosen is None:
                continue
            self._dispatch_to(worker, chosen, hedge=False)
        # Hedging: queue drained, idle capacity, stragglers in flight.
        if self.policy.hedge_after is None or self.pending:
            return
        for worker in [w for w in self.workers if w.busy is None]:
            straggler = self._pick_straggler(now)
            if straggler is None:
                return
            self._dispatch_to(worker, straggler, hedge=True)

    def _pick_straggler(self, now: float) -> Optional[int]:
        oldest_chunk = None
        oldest_started = None
        for worker in self.workers:
            if worker.busy is None:
                continue
            chunk, _attempt, started, _deadline = worker.busy
            if chunk in self.done or self.in_flight.get(chunk, 0) > 1:
                continue
            if now - started < (self.policy.hedge_after or 0.0):
                continue
            if oldest_started is None or started < oldest_started:
                oldest_chunk, oldest_started = chunk, started
        return oldest_chunk

    def _wait_timeout(self, now: float) -> Optional[float]:
        candidates: List[float] = []
        for worker in self.workers:
            if worker.busy is None:
                continue
            if worker.busy[3] is not None:
                candidates.append(worker.busy[3])
            if self.policy.hedge_after is not None:
                # Wake at the hedge threshold too — it is always earlier
                # than (or independent of) the kill deadline.
                candidates.append(worker.busy[2] + self.policy.hedge_after)
        if any(w.busy is None for w in self.workers):
            candidates.extend(ready for ready, _ in self.pending)
        if not candidates:
            return None
        return max(0.0, min(candidates) - now) + 0.005

    # -- event handling -------------------------------------------------------

    def _loop(self) -> None:
        from multiprocessing import connection

        total = len(self.bounds)
        while len(self.done) < total:
            now = time.monotonic()
            self._dispatch(now)
            conn_map = {w.conn: w for w in self.workers}
            sentinel_map = {w.process.sentinel: w for w in self.workers}
            timeout = self._wait_timeout(now)
            ready = connection.wait(
                list(conn_map) + list(sentinel_map), timeout=timeout
            )
            now = time.monotonic()
            handled = set()
            for obj in ready:
                worker = conn_map.get(obj)
                if worker is None:
                    worker = sentinel_map.get(obj)
                if worker is None or id(worker) in handled:
                    continue
                handled.add(id(worker))
                self._service_worker(worker, now)
            self._sweep_timeouts(time.monotonic())
            if self.report.respawns > self.policy.max_respawns:
                raise _Exhausted(
                    f"pool unhealthy: {self.report.respawns} worker respawns",
                    PoolUnhealthyError(self.report.respawns, self.policy.max_respawns),
                )

    def _service_worker(self, worker: _WorkerHandle, now: float) -> None:
        message = None
        try:
            if worker.conn.poll():
                message = worker.conn.recv()
        except (EOFError, OSError):
            message = None
        if message is not None:
            self._on_message(worker, message, now)
            # Fall through: the worker may additionally have died.
        if not worker.process.is_alive():
            self._on_death(worker, now)

    def _on_message(self, worker: _WorkerHandle, message, now: float) -> None:
        kind, chunk, attempt = message[0], message[1], message[2]
        started = worker.busy[2] if worker.busy else now
        elapsed = now - started
        worker.busy = None
        self.in_flight[chunk] = max(0, self.in_flight.get(chunk, 1) - 1)
        if chunk in self.done:
            self.report.record(
                chunk, attempt, "duplicate", elapsed, worker.id,
                "hedged twin finished first",
            )
            return
        if kind == "err":
            self.report.record(chunk, attempt, "raise", elapsed, worker.id, message[3])
            self._register_failure(chunk, "raise", now)
            return
        payload = message[3]
        start, stop = self.bounds[chunk]
        error = check_chunk_payload(
            payload, start, stop, self.database.lengths,
            self.threshold, self.span, self.keep_scores,
        )
        if error is not None:
            self.report.record(chunk, attempt, "corrupt", elapsed, worker.id, error)
            self._register_failure(chunk, "corrupt", now)
            return
        self.report.record(chunk, attempt, "ok", elapsed, worker.id)
        self._complete(chunk, payload)

    def _on_death(self, worker: _WorkerHandle, now: float) -> None:
        self.workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=0.5)
        exitcode = worker.process.exitcode
        if worker.busy is not None:
            chunk, attempt, started, _deadline = worker.busy
            self.in_flight[chunk] = max(0, self.in_flight.get(chunk, 1) - 1)
            if chunk not in self.done:
                self.report.record(
                    chunk, attempt, "crash", now - started, worker.id,
                    f"exitcode {exitcode}",
                )
                self._register_failure(chunk, "crash", now)
        self.report.respawns += 1
        if self.report.respawns <= self.policy.max_respawns:
            self._spawn_worker()

    def _sweep_timeouts(self, now: float) -> None:
        for worker in list(self.workers):
            if worker.busy is None or worker.busy[3] is None:
                continue
            chunk, attempt, started, deadline = worker.busy
            if now <= deadline:
                continue
            # Kill the worker: there is no way to abort the task in place.
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn child
                worker.process.kill()
                worker.process.join(timeout=1.0)
            self.workers.remove(worker)
            try:
                worker.conn.close()
            except OSError:
                pass
            self.in_flight[chunk] = max(0, self.in_flight.get(chunk, 1) - 1)
            if chunk not in self.done:
                self.report.record(
                    chunk, attempt, "timeout", now - started, worker.id,
                    f"exceeded {self.policy.timeout:.3g}s",
                )
                self._register_failure(chunk, "timeout", now)
            self.report.respawns += 1
            if self.report.respawns <= self.policy.max_respawns:
                self._spawn_worker()

    def _register_failure(self, chunk: int, outcome: str, now: float) -> None:
        outcomes = self.failures.setdefault(chunk, [])
        outcomes.append(outcome)
        if len(outcomes) > self.policy.max_retries:
            raise _Exhausted(
                f"chunk {chunk} exhausted its retry budget "
                f"({len(outcomes)} failures: {', '.join(outcomes)})",
                ChunkFailedError(chunk, outcomes),
            )
        self.report.retries += 1
        ready = now + self.policy.delay(len(outcomes), self.rng)
        self.pending.append((ready, chunk))

    def _complete(self, chunk: int, payload: ChunkPayload) -> None:
        self.done[chunk] = payload
        if self.store is not None:
            self.store.save_chunk(chunk, payload)


# -- serial supervised execution ----------------------------------------------


def _serial_supervised(
    database,
    instructions: np.ndarray,
    threshold: int,
    engine: str,
    keep_scores: bool,
    span: int,
    bounds: Sequence[Tuple[int, int]],
    policy: RetryPolicy,
    fault_plan: Optional[FaultPlan],
    store: Optional[CheckpointStore],
    report: ScanReport,
    done: Dict[int, ChunkPayload],
) -> None:
    """In-process supervised loop: same retry semantics, no pool to kill.

    ``crash`` faults raise (there is no worker process to sacrifice) and
    ``hang`` faults genuinely sleep for the plan's ``hang_seconds`` —
    there is no supervisor above this process, which is exactly what the
    kill-and-resume scenario exploits.
    """
    rng = random.Random(policy.seed)
    for chunk, (start, stop) in enumerate(bounds):
        if chunk in done:
            continue
        outcomes: List[str] = []
        while True:
            attempt = len(outcomes)
            fault = fault_plan.lookup(chunk, attempt) if fault_plan else None
            t0 = time.monotonic()
            payload: Optional[ChunkPayload] = None
            outcome = "ok"
            detail = ""
            if fault is FaultKind.HANG:
                time.sleep(fault_plan.hang_seconds if fault_plan else 0.0)
                outcome, detail = "hang-timeout", "injected hang (serial mode)"
            elif fault in (FaultKind.CRASH, FaultKind.RAISE):
                outcome = "crash" if fault is FaultKind.CRASH else "raise"
                detail = f"injected {fault.value} fault (serial mode)"
            else:
                payload = _score_chunk_span(
                    database.buffer, database.lengths, database.byte_offsets,
                    instructions, threshold, engine, keep_scores, start, stop,
                )
                if fault is FaultKind.CORRUPT:
                    payload = corrupt_payload(payload, span)
                error = check_chunk_payload(
                    payload, start, stop, database.lengths,
                    threshold, span, keep_scores,
                )
                if error is not None:
                    outcome, detail, payload = "corrupt", error, None
            elapsed = time.monotonic() - t0
            report.record(chunk, attempt, outcome, elapsed, None, detail)
            if payload is not None:
                done[chunk] = payload
                if store is not None:
                    store.save_chunk(chunk, payload)
                break
            outcomes.append(outcome)
            if len(outcomes) > policy.max_retries:
                raise _Exhausted(
                    f"chunk {chunk} exhausted its retry budget "
                    f"({len(outcomes)} failures: {', '.join(outcomes)})",
                    ChunkFailedError(chunk, outcomes),
                )
            report.retries += 1
            time.sleep(policy.delay(len(outcomes), rng))


def _degraded_completion(
    database,
    instructions: np.ndarray,
    threshold: int,
    engine: str,
    keep_scores: bool,
    span: int,
    bounds: Sequence[Tuple[int, int]],
    store: Optional[CheckpointStore],
    report: ScanReport,
    done: Dict[int, ChunkPayload],
) -> None:
    """Finish the remaining chunks with the pristine in-process engine.

    Fault injection does not apply here — degradation *is* the escape
    hatch.  A sanity failure on this path means the scan itself is broken,
    which is fatal.
    """
    for chunk, (start, stop) in enumerate(bounds):
        if chunk in done:
            continue
        t0 = time.monotonic()
        payload = _score_chunk_span(
            database.buffer, database.lengths, database.byte_offsets,
            instructions, threshold, engine, keep_scores, start, stop,
        )
        error = check_chunk_payload(
            payload, start, stop, database.lengths, threshold, span, keep_scores
        )
        if error is not None:
            raise CorruptResultError(chunk, 0, f"degraded serial scan: {error}")
        report.record(chunk, 0, "ok", time.monotonic() - t0, None, "degraded serial")
        report.chunks_degraded += 1
        done[chunk] = payload
        if store is not None:
            store.save_chunk(chunk, payload)


# -- public entry point --------------------------------------------------------


def supervised_scan(
    encoded,
    database,
    *,
    threshold: int,
    engine: str,
    keep_scores: bool = False,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    checkpoint_dir=None,
    resume: bool = False,
) -> ScanOutcome:
    """Run a chunked scan under supervision; return results and a report.

    ``encoded`` is an :class:`repro.core.encoding.EncodedQuery`,
    ``database`` a :class:`repro.host.scan.PackedDatabase`, ``threshold``
    already resolved to an absolute score.  Unlike the plain fast path,
    ``workers`` is honoured literally (no small-database serial gate), so
    fault injection exercises real worker processes even on test-sized
    inputs.  Raises a :class:`repro.host.errors.ScanError` subclass on
    fatal conditions; completes with ``report.degraded`` set when the
    policy allows degradation instead.
    """
    from repro.host.scan import chunk_bounds, resolve_chunk_size, resolve_workers

    policy = policy or RetryPolicy()
    num_workers = resolve_workers(workers)
    size = resolve_chunk_size(database.num_references, num_workers, chunk_size)
    bounds = chunk_bounds(database.num_references, size) if database.num_references else []
    instructions = encoded.as_array()
    span = len(encoded)

    report = ScanReport(
        workers=num_workers,
        chunk_size=size,
        chunks_total=len(bounds),
        engine=engine,
        threshold=threshold,
    )

    stage_seconds: Dict[str, float] = {}
    store: Optional[CheckpointStore] = None
    done: Dict[int, ChunkPayload] = {}
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        report.checkpoint_dir = str(store.directory)
        report.resumed = bool(resume)
        with _obs_profile.stage(
            "scan.checkpoint_load", category="scan"
        ) as load_timer:
            fingerprint = scan_fingerprint(
                database, instructions, threshold, engine, keep_scores, size
            )
            loaded = store.prepare(fingerprint, len(bounds), size, resume)
            # Never trust disk blindly: a checkpoint chunk must pass the same
            # sanity check a worker result does, or it gets rescanned.
            for chunk, payload in loaded.items():
                start, stop = bounds[chunk]
                if (
                    check_chunk_payload(
                        payload, start, stop, database.lengths,
                        threshold, span, keep_scores,
                    )
                    is None
                ):
                    done[chunk] = payload
        stage_seconds["checkpoint_load"] = load_timer.seconds
        report.chunks_from_checkpoint = len(done)

    started = time.monotonic()
    execute_timer: Optional[_obs_profile.StageTimer] = None
    try:
        if len(done) < len(bounds):
            with _obs_profile.stage("scan.execute", category="scan") as timer:
                execute_timer = timer
                if num_workers > 1:
                    report.mode = "parallel"
                    supervisor = _Supervisor(
                        database, instructions, threshold, engine, keep_scores,
                        span, num_workers, bounds, policy, faults, store, report,
                        done,
                    )
                    try:
                        supervisor.run()
                    except (ImportError, OSError, PermissionError):
                        # Restricted environments (no /dev/shm, no fork): the
                        # supervised serial path provides the same guarantees.
                        report.mode = "serial"
                        _serial_supervised(
                            database, instructions, threshold, engine,
                            keep_scores, span, bounds, policy, faults, store,
                            report, done,
                        )
                else:
                    report.mode = "serial"
                    _serial_supervised(
                        database, instructions, threshold, engine, keep_scores,
                        span, bounds, policy, faults, store, report, done,
                    )
    except _Exhausted as exhausted:
        if not policy.degrade:
            raise exhausted.error from None
        report.degraded = True
        report.degraded_reason = exhausted.reason
        with _obs_profile.stage("scan.degraded", category="scan") as degraded_timer:
            _degraded_completion(
                database, instructions, threshold, engine, keep_scores,
                span, bounds, store, report, done,
            )
        stage_seconds["degraded"] = degraded_timer.seconds
    if execute_timer is not None:
        stage_seconds["execute"] = execute_timer.seconds
    report.chunks_completed = len(done)
    report.elapsed_seconds = time.monotonic() - started

    from repro.host.scan import _build_result

    results: List[Any] = []
    with _obs_profile.stage("scan.merge", category="scan") as merge_timer:
        for chunk in range(len(bounds)):
            for index, positions, hit_scores, scores, length in done[chunk]:
                results.append(
                    _build_result(
                        encoded, database.names[index], length, threshold,
                        positions, hit_scores, scores,
                    )
                )
    stage_seconds["merge"] = merge_timer.seconds
    report.metrics["stage_seconds"] = {
        name: round(seconds, 6) for name, seconds in stage_seconds.items()
    }
    if store is not None:
        report.metrics["checkpoint"] = {
            "chunks_written": store.chunks_written,
            "bytes_written": store.bytes_written,
        }
    if report.mode == "parallel":
        report.metrics["shared_memory_bytes"] = int(database.packed_bytes)
    _obs_profile.record_scan_report_counters(
        report.retries, report.hedges, report.respawns, report.degraded
    )
    return ScanOutcome(results=results, report=report)
