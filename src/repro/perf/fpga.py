"""FPGA (FabP) performance model.

Pure beat arithmetic — the same accounting :class:`repro.accel.FabPKernel`
performs cycle by cycle, in closed form so it can be applied to the paper's
full 4-Gnt reference without simulating 15.6 M beats.  A test checks that
this model and the streaming kernel agree exactly on small references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.axi import DEFAULT_EFFICIENCY
from repro.accel.device import FpgaDevice, KINTEX7
from repro.accel.scheduler import SchedulePlan, plan_schedule
from repro.perf.workload import Workload


@dataclass(frozen=True)
class FpgaEstimate:
    """Closed-form execution estimate for one workload on one device."""

    workload: Workload
    device: FpgaDevice
    plan: SchedulePlan
    beats: int
    compute_cycles: int
    stall_cycles: int
    load_cycles: int
    writeback_cycles: int
    drain_cycles: int

    @property
    def total_cycles(self) -> int:
        return (
            self.compute_cycles
            + self.stall_cycles
            + self.load_cycles
            + self.writeback_cycles
            + self.drain_cycles
        )

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.device.clock_hz

    @property
    def effective_bandwidth(self) -> float:
        """Achieved reference-read bandwidth, bytes/s (Table I bottom row)."""
        return self.beats * self.device.bytes_per_beat / self.seconds


def estimate(
    workload: Workload,
    device: FpgaDevice = KINTEX7,
    *,
    axi_efficiency: float = DEFAULT_EFFICIENCY,
    expected_hits: int = 1000,
) -> FpgaEstimate:
    """Estimate end-to-end FabP execution (query load -> write-back).

    ``expected_hits`` sizes the write-back traffic; with any sane threshold
    it is noise (a thousand hits is one part in 10^4 of the beat count).
    Multi-channel devices split the reference across channels (§III-C: "FabP
    is able to utilize multiple channels").
    """
    plan = plan_schedule(workload.query_elements, device)
    per_beat = device.nucleotides_per_beat
    beats = -(-workload.reference_nucleotides // per_beat)
    channel_beats = -(-beats // device.memory_channels)
    compute_cycles = channel_beats * plan.segments
    # Deterministic stall model: the AXI stream holds its valid/cycle ratio
    # at the measured sequential-read efficiency; every invalid cycle stalls
    # the whole pipeline (§III-C).  This matches FabPKernel's accounting
    # exactly (slightly conservative for segmented designs, whose input
    # FIFO could hide some stalls).
    stall_cycles = max(
        0, int(np.ceil(channel_beats / axi_efficiency)) - channel_beats
    )
    load_cycles = -(-6 * workload.query_elements // device.axi_width_bits)
    records_per_beat = device.axi_width_bits // 42
    writeback_cycles = -(-expected_hits // records_per_beat)
    return FpgaEstimate(
        workload=workload,
        device=device,
        plan=plan,
        beats=beats,
        compute_cycles=compute_cycles,
        stall_cycles=stall_cycles,
        load_cycles=load_cycles,
        writeback_cycles=writeback_cycles,
        drain_cycles=plan.pipeline_latency,
    )


def fabp_seconds(workload: Workload, device: FpgaDevice = KINTEX7) -> float:
    """Convenience: end-to-end seconds for one workload."""
    return estimate(workload, device).seconds
