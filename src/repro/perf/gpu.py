"""GPU baseline performance model (the paper's custom CUDA kernel).

The paper compares against "our highly optimized GPU implementation" of the
same substitution-only scan on a GTX 1080 Ti.  We model it as a SIMT
executor running the identical algorithm:

* every alignment position performs ``3 * L_q`` element comparisons;
* the packed reference is read once from global memory (tiles staged in
  shared memory, so DRAM traffic ~= reference bytes);
* throughput is the minimum of compute and memory rates; compute dominates
  for every Fig. 6 point (the scan is arithmetic-bound).

The single free constant — comparisons retired per core-cycle — lives in
:data:`repro.perf.platforms.GTX_1080TI` with its calibration note.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.platforms import GTX_1080TI, GpuSpec
from repro.perf.workload import Workload


@dataclass(frozen=True)
class GpuEstimate:
    """Execution estimate for the CUDA scan on one workload."""

    workload: Workload
    gpu: GpuSpec
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds) + self.overhead_seconds

    @property
    def bound(self) -> str:
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


def estimate(workload: Workload, gpu: GpuSpec = GTX_1080TI) -> GpuEstimate:
    """Model the CUDA kernel's execution time for one workload."""
    comparison_rate = gpu.cuda_cores * gpu.clock_ghz * 1e9 * gpu.comparisons_per_core_cycle
    compute_seconds = workload.comparisons / comparison_rate
    memory_seconds = workload.reference_bytes / gpu.memory_bandwidth
    return GpuEstimate(
        workload=workload,
        gpu=gpu,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        overhead_seconds=gpu.launch_overhead_s,
    )


def gpu_seconds(workload: Workload, gpu: GpuSpec = GTX_1080TI) -> float:
    """Convenience: end-to-end seconds for one workload."""
    return estimate(workload, gpu).seconds
