"""Score-engine benchmark harness (``fabp-repro bench``).

Times the software scoring engines — naive Python, the per-element
vectorized path, the bit-parallel SWAR engine — on a synthetic planted
workload, plus the chunked multi-process database scan at several worker
counts, and writes a ``BENCH_scoring.json`` artifact so the repo carries a
recorded perf trajectory (schema below; one record per measurement):

.. code-block:: json

    {"engine": "bitscore", "L_q": 750, "L_r": 1000000, "n_refs": 1,
     "wall_s": 0.19, "positions_per_s": 5.2e6, "workers": 1}

``L_q`` counts encoded *elements* (3 per residue) to match the paper's
notation; ``positions_per_s`` is alignment positions scored per second —
the size-normalized figure of merit that makes runs at different scales
comparable.  The naive engine is measured on a truncated reference (it is
pure Python, ~10^3x slower) and normalized the same way; its record's
``L_r`` is the truncated length actually timed.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.aligner import DEFAULT_ENGINE, scores_from_codes
from repro.core.encoding import EncodedQuery, encode_query
from repro.obs import profile as _obs_profile
from repro.seq.packing import codes_from_text

#: Engines timed on the single-reference workload, in report order.
SINGLE_REFERENCE_ENGINES = ("naive", "vectorized", "diagonal", "bitscore")

#: Positions the naive engine is allowed to score (it is pure Python).
NAIVE_POSITION_CAP = 2_000

#: Positions the diagonal engine is allowed to score on the big workload
#: (its L_q x L_r match matrix is materialized; keep it tens of MB).
DIAGONAL_POSITION_CAP = 100_000

#: Artifact schema version (bump on incompatible field changes).
#: v2 adds the ``batch`` field (queries scored per call) and the batched /
#: warm-session record families.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class BenchRecord:
    """One timed measurement (one row of the artifact)."""

    engine: str
    L_q: int
    L_r: int
    n_refs: int
    wall_s: float
    positions_per_s: float
    workers: int = 1
    repeats: int = 1
    #: Queries scored per call; ``positions_per_s`` aggregates the batch.
    batch: int = 1


@dataclass
class BenchReport:
    """The full artifact: metadata, records, derived speedups."""

    records: List[BenchRecord] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)
    speedups: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "meta": self.meta,
            "records": [asdict(r) for r in self.records],
            "speedups": self.speedups,
        }

    def write(self, path: os.PathLike) -> pathlib.Path:
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return out

    def record_for(self, engine: str, workers: int = 1) -> Optional[BenchRecord]:
        for record in self.records:
            if record.engine == engine and record.workers == workers:
                return record
        return None


def _planted_reference(
    query, length: int, rng: np.random.Generator
) -> np.ndarray:
    """A random reference with one perfectly matching planted region."""
    from repro.seq.generate import random_rna
    from repro.workloads.builder import encode_protein_as_rna, plant_homolog

    region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
    background = random_rna(length, rng=rng).letters
    position = int(rng.integers(0, max(1, length - len(region))))
    return codes_from_text(plant_homolog(background, region, position))


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time (min is the standard noise filter)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_engine(
    encoded: EncodedQuery, ref_codes: np.ndarray, engine: str, repeats: int
) -> BenchRecord:
    instructions = encoded.as_array()
    num_positions = ref_codes.size - instructions.size + 1
    wall = _time(lambda: scores_from_codes(instructions, ref_codes, engine), repeats)
    record = BenchRecord(
        engine=engine,
        L_q=int(instructions.size),
        L_r=int(ref_codes.size),
        n_refs=1,
        wall_s=wall,
        positions_per_s=num_positions / wall if wall > 0 else float("inf"),
        repeats=repeats,
    )
    _obs_profile.record_bench_record(
        engine, 1, record.positions_per_s, record.wall_s
    )
    return record


def run_score_benchmark(
    *,
    residues: int = 250,
    reference_length: int = 1_000_000,
    scan_references: int = 8,
    scan_reference_length: int = 250_000,
    workers_sweep: Sequence[int] = (1, 2, 4),
    engines: Sequence[str] = SINGLE_REFERENCE_ENGINES,
    repeats: int = 3,
    seed: int = 2021,
    naive_position_cap: int = NAIVE_POSITION_CAP,
    small_scan_references: int = 2,
    small_scan_reference_length: int = 30_000,
) -> BenchReport:
    """Run the full benchmark; return the report (callers write/print it).

    Single-reference timings isolate engine throughput at ``L_q = 3 *
    residues`` elements over ``reference_length`` nucleotides; the scan
    sweep then times the end-to-end chunked database scan (bitscore engine)
    at each worker count over ``scan_references x scan_reference_length``.
    Worker counts above 1 force the parallel path (``parallel_threshold=0``)
    so the records measure true pool cost regardless of the cutover.

    A second, deliberately tiny serial/parallel pair
    (``parallel-scan-small``, workers 1 and 2) records pool overhead at a
    size where it dominates; together with the big pair it lets
    :func:`repro.host.scan.derive_cutover` solve for the database size at
    which parallelism starts paying off *on the recorded machine*.
    """
    from repro.host.scan import PackedDatabase, scan_database
    from repro.seq.generate import random_protein

    rng = np.random.default_rng(seed)
    query = random_protein(residues, rng=rng)
    encoded = encode_query(query)
    num_elements = len(encoded)
    report = BenchReport(
        meta={
            "residues": residues,
            "reference_length": reference_length,
            "scan_references": scan_references,
            "scan_reference_length": scan_reference_length,
            "seed": seed,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "numpy": np.__version__,
        }
    )

    ref_codes = _planted_reference(query, reference_length, rng)
    position_caps = {
        # Pure Python / matrix-materializing paths get truncated slices;
        # positions/s stays the comparable metric and L_r records the truth.
        "naive": naive_position_cap,
        "diagonal": DIAGONAL_POSITION_CAP,
    }
    for engine in engines:
        cap = position_caps.get(engine)
        timed_codes = (
            ref_codes if cap is None else ref_codes[: num_elements + cap - 1]
        )
        engine_repeats = 1 if engine == "naive" else repeats
        report.records.append(
            _time_engine(encoded, timed_codes, engine, engine_repeats)
        )

    database = PackedDatabase.from_references(
        [
            _planted_reference(query, scan_reference_length, rng)
            for _ in range(scan_references)
        ]
    )
    scan_positions = sum(
        max(0, int(length) - num_elements + 1) for length in database.lengths
    )
    for workers in workers_sweep:
        wall = _time(
            lambda workers=workers: scan_database(
                encoded, database, min_identity=0.9, workers=workers,
                parallel_threshold=0 if workers > 1 else None,
            ),
            repeats,
        )
        scan_record = BenchRecord(
            engine="parallel-scan",
            L_q=num_elements,
            L_r=int(database.lengths.sum()),
            n_refs=database.num_references,
            wall_s=wall,
            positions_per_s=scan_positions / wall if wall > 0 else float("inf"),
            workers=workers,
            repeats=repeats,
        )
        report.records.append(scan_record)
        _obs_profile.record_bench_record(
            "parallel-scan", workers, scan_record.positions_per_s,
            scan_record.wall_s,
        )

    small_database = PackedDatabase.from_references(
        [
            _planted_reference(query, small_scan_reference_length, rng)
            for _ in range(small_scan_references)
        ]
    )
    small_positions = sum(
        max(0, int(length) - num_elements + 1) for length in small_database.lengths
    )
    for workers in (1, 2):
        wall = _time(
            lambda workers=workers: scan_database(
                encoded, small_database, min_identity=0.9, workers=workers,
                parallel_threshold=0 if workers > 1 else None,
            ),
            repeats,
        )
        small_record = BenchRecord(
            engine="parallel-scan-small",
            L_q=num_elements,
            L_r=int(small_database.lengths.sum()),
            n_refs=small_database.num_references,
            wall_s=wall,
            positions_per_s=(
                small_positions / wall if wall > 0 else float("inf")
            ),
            workers=workers,
            repeats=repeats,
        )
        report.records.append(small_record)
        _obs_profile.record_bench_record(
            "parallel-scan-small", workers, small_record.positions_per_s,
            small_record.wall_s,
        )

    _derive_speedups(report)
    return report


def _derive_speedups(report: BenchReport) -> None:
    """Headline ratios: every engine vs naive/vectorized, scan scaling."""
    baseline = {
        r.engine: r.positions_per_s for r in report.records if r.workers == 1
    }
    bitscore = baseline.get("bitscore")
    if bitscore:
        for reference_engine in ("naive", "vectorized"):
            if baseline.get(reference_engine):
                report.speedups[f"bitscore_vs_{reference_engine}"] = (
                    bitscore / baseline[reference_engine]
                )
    scan_records = [r for r in report.records if r.engine == "parallel-scan"]
    one_worker = next((r for r in scan_records if r.workers == 1), None)
    if one_worker and one_worker.positions_per_s:
        for record in scan_records:
            if record.workers != 1:
                report.speedups[f"scan_scaling_w{record.workers}"] = (
                    record.positions_per_s / one_worker.positions_per_s
                )


def run_batch_benchmark(
    *,
    residues: int = 250,
    reference_length: int = 1_000_000,
    batch_sizes: Sequence[int] = (1, 4, 8),
    session_references: int = 4,
    session_reference_length: int = 150_000,
    session_workers: int = 2,
    repeats: int = 3,
    seed: int = 2021,
) -> BenchReport:
    """Benchmark the batched kernel and the warm scan session.

    Two record families, same schema as :func:`run_score_benchmark`:

    * ``bitscore-sequential`` vs ``bitscore_batch`` at each ``k`` in
      ``batch_sizes`` — k independent bitscore sweeps against one shared
      sweep that scores all k queries per reference pass.  Both sides
      report *aggregate* positions/s (``k x positions / wall``), so the
      ratio is the amortization factor of sharing the database stream.
    * ``scan-session-cold`` vs ``scan-session-warm`` — a full
      pack + session-open + scan + close cycle per call, against repeated
      ``scan_batch`` calls on an already-warm :class:`ScanSession` whose
      worker pool and shared database image persist across calls.

    Derived speedups: ``batch_amortization_k{k}`` per batch size and
    ``session_warm_speedup``.
    """
    from repro.core.aligner import scores_batch_from_codes
    from repro.host.scan_session import ScanSession
    from repro.seq.generate import random_protein, random_rna

    rng = np.random.default_rng(seed)
    max_k = max(batch_sizes)
    queries = [random_protein(residues, rng=rng) for _ in range(max_k)]
    encoded = [encode_query(query) for query in queries]
    arrays = [e.as_array() for e in encoded]
    num_elements = int(arrays[0].size)
    ref_codes = _planted_reference(queries[0], reference_length, rng)
    positions = ref_codes.size - num_elements + 1
    report = BenchReport(
        meta={
            "residues": residues,
            "reference_length": reference_length,
            "batch_sizes": list(batch_sizes),
            "session_references": session_references,
            "session_reference_length": session_reference_length,
            "session_workers": session_workers,
            "seed": seed,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "numpy": np.__version__,
        }
    )

    for k in batch_sizes:
        subset = arrays[:k]
        wall_seq = _time(
            lambda subset=subset: [
                scores_from_codes(a, ref_codes, "bitscore") for a in subset
            ],
            repeats,
        )
        wall_batch = _time(
            lambda subset=subset: scores_batch_from_codes(
                subset, ref_codes, "bitscore_batch"
            ),
            repeats,
        )
        for engine, wall in (
            ("bitscore-sequential", wall_seq),
            ("bitscore_batch", wall_batch),
        ):
            record = BenchRecord(
                engine=engine,
                L_q=num_elements,
                L_r=int(ref_codes.size),
                n_refs=1,
                wall_s=wall,
                positions_per_s=(
                    k * positions / wall if wall > 0 else float("inf")
                ),
                repeats=repeats,
                batch=k,
            )
            report.records.append(record)
            _obs_profile.record_bench_record(
                engine, 1, record.positions_per_s, record.wall_s
            )

    references = [
        random_rna(session_reference_length, rng=rng).letters
        for _ in range(session_references)
    ]
    session_positions = max_k * session_references * max(
        0, session_reference_length - num_elements + 1
    )

    def _cold_cycle() -> None:
        with ScanSession(references, workers=session_workers) as session:
            session.scan_batch(encoded, min_identity=0.9)

    wall_cold = _time(_cold_cycle, repeats)
    session = ScanSession(references, workers=session_workers)
    try:
        session.scan_batch(encoded, min_identity=0.9)  # warm the pool
        wall_warm = _time(
            lambda: session.scan_batch(encoded, min_identity=0.9), repeats
        )
    finally:
        session.close()
    for engine, wall in (
        ("scan-session-cold", wall_cold),
        ("scan-session-warm", wall_warm),
    ):
        record = BenchRecord(
            engine=engine,
            L_q=num_elements,
            L_r=session_references * session_reference_length,
            n_refs=session_references,
            wall_s=wall,
            positions_per_s=(
                session_positions / wall if wall > 0 else float("inf")
            ),
            workers=session_workers,
            repeats=repeats,
            batch=max_k,
        )
        report.records.append(record)
        _obs_profile.record_bench_record(
            engine, session_workers, record.positions_per_s, record.wall_s
        )

    _derive_batch_speedups(report)
    return report


def _derive_batch_speedups(report: BenchReport) -> None:
    """Amortization per batch size plus the warm-session ratio."""
    sequential = {
        r.batch: r.positions_per_s
        for r in report.records
        if r.engine == "bitscore-sequential"
    }
    for record in report.records:
        if record.engine != "bitscore_batch":
            continue
        baseline = sequential.get(record.batch)
        if baseline:
            report.speedups[f"batch_amortization_k{record.batch}"] = (
                record.positions_per_s / baseline
            )
    cold = next(
        (r for r in report.records if r.engine == "scan-session-cold"), None
    )
    warm = next(
        (r for r in report.records if r.engine == "scan-session-warm"), None
    )
    if cold and warm and cold.positions_per_s:
        report.speedups["session_warm_speedup"] = (
            warm.positions_per_s / cold.positions_per_s
        )


def quick_benchmark(seed: int = 2021) -> BenchReport:
    """The CI-sized benchmark: seconds, not minutes, same schema."""
    return run_score_benchmark(
        residues=50,
        reference_length=200_000,
        scan_references=4,
        scan_reference_length=80_000,
        workers_sweep=(1, 2),
        repeats=2,
        seed=seed,
        naive_position_cap=500,
    )


def quick_batch_benchmark(seed: int = 2021) -> BenchReport:
    """The CI-sized batch benchmark: seconds, not minutes, same schema."""
    return run_batch_benchmark(
        reference_length=300_000,
        session_references=2,
        session_reference_length=60_000,
        repeats=2,
        seed=seed,
    )


def format_report(report: BenchReport) -> str:
    """Monospace table of the records plus the headline speedups."""
    from repro.analysis.report import text_table

    rows = []
    for r in report.records:
        rows.append(
            [
                r.engine,
                r.L_q,
                f"{r.L_r:,}",
                r.n_refs,
                r.workers,
                r.batch,
                f"{r.wall_s:.4f}",
                f"{r.positions_per_s:,.0f}",
            ]
        )
    table = text_table(
        ["engine", "L_q", "L_r", "refs", "workers", "batch", "wall_s",
         "positions/s"],
        rows,
        title="Score-engine benchmark",
    )
    lines = [table]
    if report.speedups:
        lines.append("")
        for key, value in sorted(report.speedups.items()):
            lines.append(f"{key}: {value:.2f}x")
    return "\n".join(lines)
