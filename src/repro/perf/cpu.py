"""CPU baseline performance model: NCBI TBLASTN on an i7-8700K.

TBLASTN translates the nucleotide database in all six frames and runs the
protein BLAST pipeline against the translations.  Its cost decomposes as

* a **scan** term — per translated residue: translation itself plus the
  k-mer hash-table probe (the paper singles these random accesses out as
  the CPU bottleneck), independent of query length;
* a **seed/extension** term — the number of seed hits grows with query
  length (more query k-mers in the neighborhood table), and each surviving
  two-hit seed pays an ungapped X-drop extension and occasionally a gapped
  Smith-Waterman.

which yields ``time_1t = residues * (C_SCAN + C_SEED * query_residues)``.
The two constants are calibrated against published TBLASTN throughput on
Coffee-Lake-class cores and pinned so the FabP-vs-CPU-12 mean speedup lands
near the paper's 24.8x (EXPERIMENTS.md records paper vs measured).  Our
from-scratch TBLASTN implementation in :mod:`repro.baselines.tblastn` has
the same asymptotic shape; a bench checks its measured scaling against this
model's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.platforms import I7_8700K, CpuSpec
from repro.perf.workload import Workload

#: Per translated residue: six-frame translation + hash probe, seconds
#: (single thread).  ~2 Gresidue/s scan rate.
C_SCAN = 5.0e-10

#: Per translated residue per query residue: seed processing + extensions,
#: seconds (single thread).
C_SEED = 2.55e-11


@dataclass(frozen=True)
class CpuEstimate:
    """Execution estimate for TBLASTN on one workload."""

    workload: Workload
    cpu: CpuSpec
    threads: int
    scan_seconds: float
    seed_seconds: float

    @property
    def seconds(self) -> float:
        scaling = self.cpu.thread_scaling if self.threads > 1 else 1.0
        return (self.scan_seconds + self.seed_seconds) / scaling


def estimate(
    workload: Workload, cpu: CpuSpec = I7_8700K, *, threads: int = 1
) -> CpuEstimate:
    """Model TBLASTN's execution time for one workload.

    ``threads=1`` is the paper's normalization baseline; ``threads=12`` is
    its "TBLASTN-12" configuration (any ``threads > 1`` applies the spec's
    measured full-machine scaling).
    """
    if threads not in (1, cpu.threads):
        raise ValueError(
            f"model is calibrated for 1 or {cpu.threads} threads, got {threads}"
        )
    translated_residues = 2 * workload.reference_nucleotides  # 6 frames x nt/3
    scan = translated_residues * C_SCAN
    seed = translated_residues * C_SEED * workload.query_residues
    return CpuEstimate(
        workload=workload, cpu=cpu, threads=threads, scan_seconds=scan, seed_seconds=seed
    )


def cpu_seconds(
    workload: Workload, cpu: CpuSpec = I7_8700K, *, threads: int = 1
) -> float:
    """Convenience: end-to-end seconds for one workload."""
    return estimate(workload, cpu, threads=threads).seconds
