"""Performance and energy models for the paper's three platforms.

* :mod:`repro.perf.fpga` — FabP beat/segment arithmetic (validated against
  the streaming kernel);
* :mod:`repro.perf.gpu` — SIMT model of the paper's custom CUDA scan;
* :mod:`repro.perf.cpu` — TBLASTN cost model on the i7-8700K;
* :mod:`repro.perf.energy` — load-power composition (joules);
* :mod:`repro.perf.figures` — the Fig. 6 sweep and headline averages.
"""

from repro.perf.figures import Fig6Data, Fig6Point, figure6
from repro.perf.workload import FIG6_QUERY_LENGTHS, REFERENCE_NUCLEOTIDES, Workload

__all__ = [
    "FIG6_QUERY_LENGTHS",
    "Fig6Data",
    "Fig6Point",
    "REFERENCE_NUCLEOTIDES",
    "Workload",
    "figure6",
]
