"""Hardware platform specifications for the paper's three baselines.

All capacities are public vendor specs; the power draws are *load* powers
(not TDP) chosen within each part's documented envelope and calibrated so
the model's energy ratios land near the paper's headline numbers (23.2x vs
GPU, 266.8x vs 12-thread CPU) — see EXPERIMENTS.md for the calibration
notes.  Everything here feeds the analytic models in :mod:`repro.perf`;
none of it affects functional alignment results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuSpec:
    """A multicore CPU platform (the paper's TBLASTN host)."""

    name: str
    cores: int
    threads: int
    clock_ghz: float
    tdp_watts: float
    #: Package power at single-threaded load.
    power_1t_watts: float
    #: Package power with all threads loaded.
    power_all_watts: float
    #: Effective throughput scaling from 1 thread to all threads
    #: (hyper-threading on 6C/12T parts yields ~7x, not 12x).
    thread_scaling: float


@dataclass(frozen=True)
class GpuSpec:
    """A discrete GPU platform (the paper's custom CUDA baseline)."""

    name: str
    cuda_cores: int
    clock_ghz: float
    memory_bandwidth: float  # bytes/s
    tdp_watts: float
    #: Board power under the alignment kernel (below TDP: memory-light).
    power_watts: float
    #: Packed nucleotide comparisons retired per core-cycle.  The paper's
    #: kernel is "highly optimized"; bit-sliced LOP3 inner loops retire more
    #: than one 2-bit comparison per instruction.  Calibrated so the mean
    #: FabP-vs-GPU speedup across query lengths matches the paper's 8.1 %.
    comparisons_per_core_cycle: float
    #: Fixed per-invocation overhead: transfers, launch, result readback.
    launch_overhead_s: float = 2.0e-3


#: Intel Core i7-8700K (6C/12T, Coffee Lake) — the paper's CPU platform.
I7_8700K = CpuSpec(
    name="Intel i7-8700K",
    cores=6,
    threads=12,
    clock_ghz=3.7,
    tdp_watts=95.0,
    power_1t_watts=55.0,
    power_all_watts=110.0,
    thread_scaling=7.0,
)

#: NVIDIA GTX 1080 Ti — the paper's GPU platform.
GTX_1080TI = GpuSpec(
    name="NVIDIA GTX 1080 Ti",
    cuda_cores=3584,
    clock_ghz=1.58,
    memory_bandwidth=484e9,
    tdp_watts=250.0,
    power_watts=215.0,
    comparisons_per_core_cycle=1.37,
)
