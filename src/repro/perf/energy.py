"""Energy models: joules per workload, per platform.

Energy is load power x execution time.  Load powers live in the platform
specs (:mod:`repro.perf.platforms` and :mod:`repro.accel.device`) with
their calibration notes; this module only composes them with the timing
models, so Fig. 6(b) is fully determined by Fig. 6(a) plus the power
constants — the same structure the paper's evaluation has.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.device import FpgaDevice, KINTEX7
from repro.perf import cpu as cpu_model
from repro.perf import fpga as fpga_model
from repro.perf import gpu as gpu_model
from repro.perf.platforms import GTX_1080TI, I7_8700K, CpuSpec, GpuSpec
from repro.perf.workload import Workload


@dataclass(frozen=True)
class PlatformRun:
    """Time + energy of one platform executing one workload."""

    platform: str
    workload: Workload
    seconds: float
    watts: float

    @property
    def joules(self) -> float:
        return self.seconds * self.watts

    @property
    def throughput(self) -> float:
        """Alignments (reference positions) per second."""
        positions = self.workload.reference_nucleotides - self.workload.query_elements + 1
        return positions / self.seconds


def fabp_run(workload: Workload, device: FpgaDevice = KINTEX7) -> PlatformRun:
    return PlatformRun(
        platform="FabP",
        workload=workload,
        seconds=fpga_model.fabp_seconds(workload, device),
        watts=device.power_watts,
    )


def gpu_run(workload: Workload, gpu: GpuSpec = GTX_1080TI) -> PlatformRun:
    return PlatformRun(
        platform="GPU",
        workload=workload,
        seconds=gpu_model.gpu_seconds(workload, gpu),
        watts=gpu.power_watts,
    )


def cpu_run(
    workload: Workload, cpu: CpuSpec = I7_8700K, *, threads: int = 1
) -> PlatformRun:
    watts = cpu.power_all_watts if threads > 1 else cpu.power_1t_watts
    label = f"TBLASTN-{threads}" if threads > 1 else "TBLASTN-1"
    return PlatformRun(
        platform=label,
        workload=workload,
        seconds=cpu_model.cpu_seconds(workload, cpu, threads=threads),
        watts=watts,
    )


def energy_efficiency_ratio(reference: PlatformRun, other: PlatformRun) -> float:
    """How many times more energy-efficient ``reference`` is than ``other``."""
    return other.joules / reference.joules
