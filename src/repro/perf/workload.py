"""The evaluation workload of §IV.

The paper aligns protein queries (50..250 residues, sampled from NCBI nr)
against "1 GByte of reference sequences" from NCBI nt.  One gigabyte of
2-bit-packed nucleotides is 4x10^9 bases, which is the figure the bandwidth
arithmetic in §III-C/Table I is consistent with; this module pins that
workload so every model and bench sweeps the same axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Query lengths (amino acids) swept in Fig. 6.
FIG6_QUERY_LENGTHS: Tuple[int, ...] = (50, 100, 150, 200, 250)

#: Reference size: 1 GByte of packed 2-bit nucleotides.
REFERENCE_NUCLEOTIDES: int = 4_000_000_000


@dataclass(frozen=True)
class Workload:
    """One evaluation point: a query length against a reference size."""

    query_residues: int
    reference_nucleotides: int = REFERENCE_NUCLEOTIDES

    @property
    def query_elements(self) -> int:
        """Encoded query elements after back-translation (3 per residue)."""
        return 3 * self.query_residues

    @property
    def reference_bytes(self) -> int:
        """Packed DRAM footprint of the reference."""
        return -(-self.reference_nucleotides // 4)

    @property
    def comparisons(self) -> int:
        """Element-wise comparisons the substitution-only scan performs."""
        positions = self.reference_nucleotides - self.query_elements + 1
        return max(positions, 0) * self.query_elements


def fig6_workloads(
    reference_nucleotides: int = REFERENCE_NUCLEOTIDES,
) -> Tuple[Workload, ...]:
    """The five Fig. 6 design points."""
    return tuple(
        Workload(length, reference_nucleotides) for length in FIG6_QUERY_LENGTHS
    )
