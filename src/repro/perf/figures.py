"""Figure 6 generator: normalized performance and energy efficiency.

Reproduces both panels of the paper's Fig. 6.  For every query length in
{50..250} and every platform (TBLASTN-1, TBLASTN-12, GPU, FabP):

* **Fig. 6(a)** — performance normalized to single-threaded TBLASTN:
  ``speedup = t_cpu1 / t_platform``;
* **Fig. 6(b)** — energy efficiency normalized the same way:
  ``eff = E_cpu1 / E_platform``.

Also computes the paper's headline averages: FabP vs GPU (paper: 8.1 %
faster, 23.2x energy) and FabP vs TBLASTN-12 (paper: 24.8x faster, 266.8x
energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.accel.device import FpgaDevice, KINTEX7
from repro.perf.energy import PlatformRun, cpu_run, fabp_run, gpu_run
from repro.perf.workload import FIG6_QUERY_LENGTHS, REFERENCE_NUCLEOTIDES, Workload

PLATFORM_ORDER: Tuple[str, ...] = ("TBLASTN-1", "TBLASTN-12", "GPU", "FabP")


@dataclass(frozen=True)
class Fig6Point:
    """One (query length, platform) cell of Fig. 6."""

    query_residues: int
    platform: str
    seconds: float
    joules: float
    speedup_vs_cpu1: float
    energy_eff_vs_cpu1: float


@dataclass(frozen=True)
class Fig6Data:
    """Both panels of Fig. 6 plus the headline averages."""

    points: Tuple[Fig6Point, ...]
    lengths: Tuple[int, ...]

    def series(self, platform: str, metric: str = "speedup") -> List[float]:
        """One plotted line: values per query length for a platform."""
        key = {
            "speedup": lambda p: p.speedup_vs_cpu1,
            "energy": lambda p: p.energy_eff_vs_cpu1,
            "seconds": lambda p: p.seconds,
            "joules": lambda p: p.joules,
        }[metric]
        return [
            key(p)
            for length in self.lengths
            for p in self.points
            if p.platform == platform and p.query_residues == length
        ]

    def mean_ratio(self, platform_a: str, platform_b: str, metric: str = "speedup") -> float:
        """Mean of per-length ratios A/B — the paper's averaging convention."""
        a = self.series(platform_a, metric)
        b = self.series(platform_b, metric)
        return sum(x / y for x, y in zip(a, b)) / len(a)

    def headline(self) -> Dict[str, float]:
        """The four numbers the abstract quotes."""
        return {
            "speedup_vs_gpu": self.mean_ratio("FabP", "GPU"),
            "speedup_vs_cpu12": self.mean_ratio("FabP", "TBLASTN-12"),
            "energy_vs_gpu": self.mean_ratio("FabP", "GPU", "energy"),
            "energy_vs_cpu12": self.mean_ratio("FabP", "TBLASTN-12", "energy"),
        }

    def table(self, metric: str = "speedup") -> str:
        """Render one panel as an aligned text table."""
        header = "len(aa)  " + "  ".join(f"{p:>11}" for p in PLATFORM_ORDER)
        lines = [header]
        for length in self.lengths:
            row = [f"{length:>7}"]
            for platform in PLATFORM_ORDER:
                (value,) = [
                    (p.speedup_vs_cpu1 if metric == "speedup" else p.energy_eff_vs_cpu1,)
                    for p in self.points
                    if p.platform == platform and p.query_residues == length
                ][0]
                row.append(f"{value:>11.2f}")
            lines.append("  ".join(row))
        return "\n".join(lines)


def figure6(
    lengths: Sequence[int] = FIG6_QUERY_LENGTHS,
    reference_nucleotides: int = REFERENCE_NUCLEOTIDES,
    device: FpgaDevice = KINTEX7,
) -> Fig6Data:
    """Evaluate all platforms over the Fig. 6 sweep."""
    points: List[Fig6Point] = []
    for length in lengths:
        workload = Workload(length, reference_nucleotides)
        runs: List[PlatformRun] = [
            cpu_run(workload, threads=1),
            cpu_run(workload, threads=12),
            gpu_run(workload),
            fabp_run(workload, device),
        ]
        baseline = runs[0]
        for run in runs:
            points.append(
                Fig6Point(
                    query_residues=length,
                    platform=run.platform,
                    seconds=run.seconds,
                    joules=run.joules,
                    speedup_vs_cpu1=baseline.seconds / run.seconds,
                    energy_eff_vs_cpu1=baseline.joules / run.joules,
                )
            )
    return Fig6Data(points=tuple(points), lengths=tuple(lengths))
