"""Tests for VCD waveform recording."""

import pytest

from repro.rtl.netlist import Netlist
from repro.rtl.popcount import lut_init
from repro.rtl.simulator import Simulator
from repro.rtl.vcd import VcdTracer


def _toggle_design():
    netlist = Netlist("toggler")
    a = netlist.add_input("a")
    q = netlist.add_ff(a)
    netlist.set_output("q", q)
    return netlist


class TestVcd:
    def test_header_declares_signals(self):
        tracer = VcdTracer(Simulator(_toggle_design()))
        header = tracer.header()
        assert "$timescale 1 ns $end" in header
        assert "clk" in header
        assert "$enddefinitions $end" in header
        # input a + output q + clock.
        assert header.count("$var wire 1") == 3

    def test_value_changes_recorded(self):
        sim = Simulator(_toggle_design())
        tracer = VcdTracer(sim)
        tracer.run([{"a": 1}, {"a": 0}, {"a": 1}])
        dump = tracer.dump()
        assert "#0" in dump
        # q follows a with one cycle delay; both edges present.
        assert dump.count("\n1") >= 2  # some rising values recorded

    def test_only_changes_emitted(self):
        sim = Simulator(_toggle_design())
        tracer = VcdTracer(sim)
        tracer.run([{"a": 1}] * 5)  # constant input after first cycle
        body = tracer.dump().split("$enddefinitions $end")[1]
        # 'a' changes once (0->1); it must not be re-emitted every cycle.
        a_id = tracer._ids["a"]
        assert body.count(f"1{a_id}") == 1

    def test_clock_toggles_every_cycle(self):
        sim = Simulator(_toggle_design())
        tracer = VcdTracer(sim)
        tracer.run([{"a": 0}] * 4)
        body = tracer.dump().split("$enddefinitions $end")[1]
        clock = tracer._clock_id
        assert body.count(f"1{clock}") == 4
        assert body.count(f"0{clock}") == 4

    def test_batch_simulator_rejected(self):
        with pytest.raises(ValueError, match="batch-1"):
            VcdTracer(Simulator(_toggle_design(), batch=4))

    def test_custom_signals(self):
        netlist = _toggle_design()
        sim = Simulator(netlist)
        tracer = VcdTracer(sim, signals={"only_q": netlist.outputs["q"]})
        assert "only_q" in tracer.header()
        assert "$var wire 1" in tracer.header()

    def test_write_file(self, tmp_path):
        sim = Simulator(_toggle_design())
        tracer = VcdTracer(sim)
        tracer.run([{"a": 1}, {"a": 0}])
        path = tmp_path / "wave.vcd"
        size = tracer.write(path)
        assert size == len(path.read_text())

    def test_identifier_compactness(self):
        from repro.rtl.vcd import _identifier

        ids = {_identifier(i) for i in range(500)}
        assert len(ids) == 500
        assert all(1 <= len(i) <= 2 for i in ids)
