"""Exhaustive verification of the two-LUT comparator netlist (Fig. 5)."""

import numpy as np
import pytest

from repro.core import comparator as golden
from repro.core.encoding import encode_query
from repro.rtl.comparator import (
    LUTS_PER_ELEMENT,
    build_element_comparator,
    build_instance_comparator,
)
from repro.rtl.simulator import Simulator
from repro.seq.generate import random_protein, random_rna
from repro.seq.packing import codes_from_text


class TestElementComparator:
    def test_exactly_two_luts(self):
        # §III-D: "FabP uses only two Lookup Tables" per element.
        netlist = build_element_comparator()
        assert netlist.lut_count == LUTS_PER_ELEMENT == 2
        assert netlist.ff_count == 0

    def test_exhaustive_against_golden(self):
        """All 64 x 4 x 4 x 4 input combinations match the golden model."""
        netlist = build_element_comparator()
        batch = 64 * 4 * 4 * 4
        sim = Simulator(netlist, batch=batch)
        index = np.arange(batch)
        q = index % 64
        ref = (index // 64) % 4
        prev1 = (index // 256) % 4
        prev2 = (index // 1024) % 4
        inputs = {}
        inputs.update(sim.set_input_bus("q", q))
        inputs.update(sim.set_input_bus("ref", ref))
        inputs.update(sim.set_input_bus("prev1", prev1))
        inputs.update(sim.set_input_bus("prev2", prev2))
        sim.settle(inputs)
        got = sim.output_bus("match")
        expected = np.array(
            [
                int(golden.instruction_matches(int(a), int(b), int(c), int(d)))
                for a, b, c, d in zip(q, ref, prev1, prev2)
            ]
        )
        assert np.array_equal(got, expected)


class TestInstanceComparator:
    def test_lut_budget_scales_linearly(self):
        for n in (1, 3, 9):
            netlist = build_instance_comparator(n)
            assert netlist.lut_count == 2 * n

    def test_match_vector_width(self):
        # Fig. 3: "The output of a Custom comparator is L_q bits".
        netlist = build_instance_comparator(6)
        assert len([k for k in netlist.outputs if k.startswith("match")]) == 6

    def test_instance_against_golden_scores(self, rng):
        """A full instance's popcount equals the golden score at offset 0."""
        from repro.core.aligner import alignment_scores

        query = random_protein(4, rng=rng)
        encoded = encode_query(query)
        n = len(encoded)
        netlist = build_instance_comparator(n)
        reference = random_rna(n, rng=rng)
        codes = codes_from_text(reference.letters)
        sim = Simulator(netlist)
        inputs = {}
        for i, instruction in enumerate(encoded.instructions):
            inputs.update(sim.set_input_bus(f"q{i}", int(instruction)))
        inputs.update(sim.set_input_bus("ref0", 0))
        inputs.update(sim.set_input_bus("ref1", 0))
        for j, code in enumerate(codes):
            inputs.update(sim.set_input_bus(f"ref{j + 2}", int(code)))
        sim.settle(inputs)
        total = 0
        bit = 0
        while f"match[{bit}]" in netlist.outputs:
            net = netlist.outputs[f"match[{bit}]"]
            total += int(sim.peek(net)[0])
            bit += 1
        expected = alignment_scores(encoded, codes)
        assert total == int(expected[0])

    def test_reference_arity_validated(self):
        netlist = build_instance_comparator(3)
        from repro.rtl.comparator import add_instance_comparator
        from repro.rtl.netlist import Netlist

        fresh = Netlist()
        q = [fresh.add_input_bus(f"q{i}", 6) for i in range(2)]
        refs = [(0, 0)] * 3  # needs 4
        with pytest.raises(ValueError, match="reference elements"):
            add_instance_comparator(fresh, q, refs)

    def test_zero_elements_rejected(self):
        with pytest.raises(ValueError):
            build_instance_comparator(0)
