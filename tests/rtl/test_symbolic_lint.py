"""Tests for the SA-family symbolic lint rules."""

import dataclasses

from repro.rtl.comparator import build_instance_comparator
from repro.rtl.lint import demo_designs, lint_netlist
from repro.rtl.netlist import Netlist
from repro.rtl.popcount import add_pop36, build_popcounter
from repro.rtl.symbolic_lint import lint_netlist_symbolic


def rule_ids(report):
    return sorted({f.rule_id for f in report.findings})


class TestCleanDesigns:
    def test_demo_designs_carry_no_symbolic_findings(self):
        for name, netlist in demo_designs():
            report = lint_netlist_symbolic(netlist)
            assert report.clean, (name, [str(f) for f in report.findings])


class TestSA001ComparatorDivergence:
    def _mutated(self):
        netlist = build_instance_comparator(3)
        lut = netlist.luts[2]
        netlist.luts[2] = dataclasses.replace(lut, init=lut.init ^ (1 << 7))
        return netlist

    def test_mutation_refuted(self):
        report = lint_netlist_symbolic(self._mutated())
        assert rule_ids(report) == ["SA001"]
        (finding,) = report.findings
        assert "match[1]" in finding.location
        assert finding.data is not None
        assert finding.data["element"] == 1
        assert finding.data["expected"] != finding.data["actual"]

    def test_silent_without_port_contract(self):
        # The single-element comparator uses q/prev buses, not q0/ref0.
        from repro.rtl.comparator import build_element_comparator

        report = lint_netlist_symbolic(build_element_comparator())
        assert "SA001" not in rule_ids(report)

    def test_reaches_combined_lint_entry_point(self):
        report = lint_netlist(self._mutated(), symbolic=True)
        assert "SA001" in rule_ids(report)
        assert not report.ok

    def test_not_run_without_symbolic_flag(self):
        report = lint_netlist(self._mutated())
        assert "SA001" not in rule_ids(report)


class TestSA002ScoreRange:
    def test_truncated_bus_is_an_error(self):
        netlist = Netlist("truncated")
        bits = netlist.add_input_bus("bits", 36)
        out = add_pop36(netlist, bits)
        netlist.set_output_bus("score", out[:5])
        report = lint_netlist_symbolic(netlist, rules=["SA002"])
        (finding,) = report.findings
        assert finding.rule_id == "SA002"
        assert not report.ok
        assert finding.data is not None
        assert finding.data["max_value"] == 36

    def test_proof_closes_on_table1_point(self):
        netlist = build_popcounter(750, style="fabp").netlist
        report = lint_netlist_symbolic(netlist, rules=["SA002"])
        assert report.clean


class TestSA003FalsePath:
    def test_false_pin_reported_as_info(self):
        netlist = Netlist("fp")
        a, b = netlist.add_input("a"), netlist.add_input("b")
        netlist.set_output("y", netlist.add_lut((a, b), 0b1100, name="dead_a"))
        report = lint_netlist_symbolic(netlist, rules=["SA003"])
        (finding,) = report.findings
        assert finding.rule_id == "SA003"
        assert report.ok  # info severity: never a failure
        assert "dead_a" in finding.location


class TestSA004ConstantOutput:
    def test_reconvergent_constant_needs_symbolic(self):
        # a XOR a: per-pin ternary enumeration cannot correlate the
        # duplicated net, so only the exact symbolic pass catches this.
        netlist = Netlist("const")
        a = netlist.add_input("a")
        xor_self = netlist.add_lut((a, a), 0b0110, name="a_xor_a")
        netlist.set_output("y", xor_self)
        report = lint_netlist_symbolic(netlist, rules=["SA004"])
        (finding,) = report.findings
        assert finding.rule_id == "SA004"
        assert "constant 0" in finding.message

    def test_constant_init_caught_by_ternary(self):
        netlist = Netlist("const")
        a, b = netlist.add_input("a"), netlist.add_input("b")
        netlist.set_output("y", netlist.add_lut((a, b), 0b1111, name="one"))
        report = lint_netlist_symbolic(netlist, rules=["SA004"])
        (finding,) = report.findings
        assert "constant 1" in finding.message

    def test_folded_gnd_port_not_flagged(self):
        from repro.rtl.netlist import GND

        netlist = Netlist("folded")
        a = netlist.add_input("a")
        netlist.set_output("y", netlist.add_lut((a,), 0b10))
        netlist.set_output("zero", GND)
        assert lint_netlist_symbolic(netlist, rules=["SA004"]).clean


class TestRuleSelection:
    def test_ignore_suppresses(self):
        netlist = build_instance_comparator(2)
        lut = netlist.luts[0]
        netlist.luts[0] = dataclasses.replace(lut, init=lut.init ^ 1)
        assert lint_netlist_symbolic(netlist, ignore=("SA001",)).clean

    def test_combined_rules_split_by_family(self):
        netlist = build_popcounter(36, style="fabp").netlist
        report = lint_netlist(netlist, rules=["NL008", "SA002"], symbolic=True)
        assert report.clean  # both families ran without KeyError
