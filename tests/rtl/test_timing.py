"""Tests for static timing analysis."""

import pytest

from repro.rtl.comparator import build_element_comparator
from repro.rtl.netlist import Netlist
from repro.rtl.popcount import add_ripple_adder, build_popcounter, lut_init
from repro.rtl.timing import analyze, logic_depths, stage_depths


class TestLogicDepth:
    def test_sources_are_depth_zero(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_ff(a)
        netlist.set_output("q", q)
        depth = logic_depths(netlist)
        assert depth[a] == 0
        assert depth[q] == 0

    def test_chain_depth(self):
        netlist = Netlist()
        net = netlist.add_input("a")
        identity = lut_init(lambda x: x, 1)
        for _ in range(5):
            net = netlist.add_lut((net,), identity)
        netlist.set_output("y", net)
        assert analyze(netlist).critical_depth == 5

    def test_ripple_adder_depth_linear(self):
        depths = []
        for width in (4, 8, 16):
            netlist = Netlist()
            a = netlist.add_input_bus("a", width)
            b = netlist.add_input_bus("b", width)
            out = add_ripple_adder(netlist, a, b)
            netlist.set_output_bus("s", out)
            depths.append(analyze(netlist).critical_depth)
        assert depths == [4, 8, 16]  # carry chain: one LUT level per bit

    def test_comparator_is_two_levels(self):
        # Fig. 5: mux LUT feeding the comparison LUT.
        report = analyze(build_element_comparator())
        assert report.critical_depth == 2

    def test_deep_chain_no_recursion_error(self):
        netlist = Netlist()
        net = netlist.add_input("a")
        identity = lut_init(lambda x: x, 1)
        for _ in range(5000):
            net = netlist.add_lut((net,), identity)
        netlist.set_output("y", net)
        assert analyze(netlist).critical_depth == 5000


class TestFmax:
    def test_pipelined_popcounter_meets_200mhz(self):
        """The paper's 200 MHz clock needs shallow pipeline stages."""
        block = build_popcounter(150, style="fabp", pipelined=True)
        report = analyze(block.netlist)
        assert report.meets(200.0), report

    def test_unpipelined_wide_popcounter_slower(self):
        pipelined = analyze(build_popcounter(750, style="fabp", pipelined=True).netlist)
        flat = analyze(build_popcounter(750, style="fabp", pipelined=False).netlist)
        assert flat.critical_depth > pipelined.critical_depth
        assert flat.fmax_mhz < pipelined.fmax_mhz

    def test_fmax_formula(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        out = netlist.add_lut((a,), lut_init(lambda x: x, 1))
        netlist.set_output("y", out)
        report = analyze(netlist)
        assert report.critical_path_ns == pytest.approx(0.60 + 1.0)
        assert report.fmax_mhz == pytest.approx(625.0)

    def test_stage_profile(self):
        block = build_popcounter(72, style="fabp", pipelined=True)
        profile = stage_depths(block.netlist)
        assert len(profile) == block.ff_count
        assert profile[0] == max(profile)

    def test_report_str(self):
        report = analyze(build_element_comparator())
        assert "fmax" in str(report)
