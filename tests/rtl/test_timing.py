"""Tests for static timing analysis."""

import pytest

from repro.rtl.comparator import build_element_comparator
from repro.rtl.netlist import Netlist
from repro.rtl.popcount import add_ripple_adder, build_popcounter, lut_init
from repro.rtl.timing import analyze, logic_depths, stage_depths


class TestLogicDepth:
    def test_sources_are_depth_zero(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_ff(a)
        netlist.set_output("q", q)
        depth = logic_depths(netlist)
        assert depth[a] == 0
        assert depth[q] == 0

    def test_chain_depth(self):
        netlist = Netlist()
        net = netlist.add_input("a")
        identity = lut_init(lambda x: x, 1)
        for _ in range(5):
            net = netlist.add_lut((net,), identity)
        netlist.set_output("y", net)
        assert analyze(netlist).critical_depth == 5

    def test_ripple_adder_depth_linear(self):
        depths = []
        for width in (4, 8, 16):
            netlist = Netlist()
            a = netlist.add_input_bus("a", width)
            b = netlist.add_input_bus("b", width)
            out = add_ripple_adder(netlist, a, b)
            netlist.set_output_bus("s", out)
            depths.append(analyze(netlist).critical_depth)
        assert depths == [4, 8, 16]  # carry chain: one LUT level per bit

    def test_comparator_is_two_levels(self):
        # Fig. 5: mux LUT feeding the comparison LUT.
        report = analyze(build_element_comparator())
        assert report.critical_depth == 2

    def test_deep_chain_no_recursion_error(self):
        netlist = Netlist()
        net = netlist.add_input("a")
        identity = lut_init(lambda x: x, 1)
        for _ in range(5000):
            net = netlist.add_lut((net,), identity)
        netlist.set_output("y", net)
        assert analyze(netlist).critical_depth == 5000


class TestFmax:
    def test_pipelined_popcounter_meets_200mhz(self):
        """The paper's 200 MHz clock needs shallow pipeline stages."""
        block = build_popcounter(150, style="fabp", pipelined=True)
        report = analyze(block.netlist)
        assert report.meets(200.0), report

    def test_unpipelined_wide_popcounter_slower(self):
        pipelined = analyze(build_popcounter(750, style="fabp", pipelined=True).netlist)
        flat = analyze(build_popcounter(750, style="fabp", pipelined=False).netlist)
        assert flat.critical_depth > pipelined.critical_depth
        assert flat.fmax_mhz < pipelined.fmax_mhz

    def test_fmax_formula(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        out = netlist.add_lut((a,), lut_init(lambda x: x, 1))
        netlist.set_output("y", out)
        report = analyze(netlist)
        assert report.critical_path_ns == pytest.approx(0.60 + 1.0)
        assert report.fmax_mhz == pytest.approx(625.0)

    def test_stage_profile(self):
        block = build_popcounter(72, style="fabp", pipelined=True)
        profile = stage_depths(block.netlist)
        assert len(profile) == block.ff_count
        assert profile[0] == max(profile)

    def test_report_str(self):
        report = analyze(build_element_comparator())
        assert "fmax" in str(report)


class TestFalsePathExclusion:
    def _false_path_netlist(self):
        """A depth-2 chain where the deep arrival feeds a provably dead pin."""
        netlist = Netlist("fp")
        a, b, c = (netlist.add_input(n) for n in "abc")
        deep = netlist.add_lut((a, b), 0b1000, name="and")
        # Reads (deep, c) but the INIT only depends on position 1 (c).
        netlist.set_output("y", netlist.add_lut((deep, c), 0b1100, name="buf_c"))
        return netlist

    def test_false_path_dropped_from_critical_path(self):
        netlist = self._false_path_netlist()
        plain = analyze(netlist)
        aware = analyze(netlist, exclude_false_paths=True)
        assert plain.critical_depth == 2
        assert aware.critical_depth == 1
        assert aware.critical_ns < plain.critical_ns
        assert aware.excluded_false_pins == 1
        assert aware.fmax_mhz > plain.fmax_mhz

    def test_clean_design_unchanged(self):
        netlist = build_popcounter(72, style="fabp", pipelined=True).netlist
        plain = analyze(netlist)
        aware = analyze(netlist, exclude_false_paths=True)
        assert aware.excluded_false_pins == 0
        assert aware.critical_ns == plain.critical_ns
        assert aware.critical_depth == plain.critical_depth


class TestReportDict:
    def test_to_dict_fields(self):
        record = analyze(build_element_comparator()).to_dict()
        assert record["critical_depth"] == 2
        assert record["critical_path_ns"] == pytest.approx(
            0.60 + record["critical_ns"]
        )
        assert record["fmax_mhz"] == pytest.approx(
            1000.0 / record["critical_path_ns"], rel=1e-3
        )
        assert record["excluded_false_pins"] == 0
        import json

        json.dumps(record)  # JSON-serializable as claimed
