"""Tests for the structural netlist model."""

import pytest

from repro.rtl.netlist import GND, VCC, Netlist, NetlistError, const_net


class TestConstruction:
    def test_constants_preexist(self):
        netlist = Netlist()
        assert netlist.num_nets == 2
        assert const_net(0) == GND
        assert const_net(1) == VCC

    def test_const_net_validates(self):
        with pytest.raises(NetlistError):
            const_net(2)

    def test_new_nets_unique(self):
        netlist = Netlist()
        nets = netlist.new_nets(5)
        assert len(set(nets)) == 5

    def test_add_input_bus(self):
        netlist = Netlist()
        bus = netlist.add_input_bus("a", 3)
        assert len(bus) == 3
        assert set(netlist.inputs) == {"a[0]", "a[1]", "a[2]"}

    def test_duplicate_input_rejected(self):
        netlist = Netlist()
        netlist.add_input("x")
        with pytest.raises(NetlistError, match="duplicate"):
            netlist.add_input("x")

    def test_duplicate_output_rejected(self):
        netlist = Netlist()
        net = netlist.add_input("x")
        netlist.set_output("y", net)
        with pytest.raises(NetlistError, match="duplicate"):
            netlist.set_output("y", net)

    def test_unknown_net_rejected(self):
        netlist = Netlist()
        with pytest.raises(NetlistError, match="does not exist"):
            netlist.add_lut((99,), 1)


class TestPrimitives:
    def test_lut_arity_limit(self):
        netlist = Netlist()
        inputs = netlist.add_input_bus("a", 7)
        with pytest.raises(NetlistError, match="7 inputs"):
            netlist.add_lut(inputs, 0)

    def test_lut_init_range(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        with pytest.raises(NetlistError, match="INIT"):
            netlist.add_lut((a,), 1 << 64)

    def test_lut62_arity_limit(self):
        netlist = Netlist()
        inputs = netlist.add_input_bus("a", 6)
        with pytest.raises(NetlistError):
            netlist.add_lut62(inputs, 0, 0)

    def test_double_drive_rejected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        out = netlist.add_lut((a,), 0b10)
        with pytest.raises(NetlistError, match="already driven"):
            netlist.add_lut_driving(out, (a,), 0b10)

    def test_lut_counting(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.add_lut((a,), 0b10)
        netlist.add_lut62((a,), 1, 2)
        assert netlist.lut_count == 2  # LUT6_2 counts once (one physical LUT)

    def test_ff_counting(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.add_ff(a)
        netlist.add_ff_bus([a, a, a][0:1])
        assert netlist.ff_count == 2

    def test_stats(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        out = netlist.add_lut((a,), 0b10)
        netlist.set_output("y", out)
        stats = netlist.stats()
        assert stats["luts"] == 1
        assert stats["inputs"] == 1
        assert stats["outputs"] == 1
