"""Tests for Pop36 and the pop-counter builders (Fig. 4, §III-D)."""

import numpy as np
import pytest

from repro.rtl.netlist import Netlist
from repro.rtl.popcount import (
    POPCOUNT6_INITS,
    add_pop36,
    add_popcount6,
    add_ripple_adder,
    add_tree_adder_popcount,
    build_popcounter,
    lut_init,
)
from repro.rtl.simulator import Simulator


def _evaluate_block(builder, width, vectors):
    """Build inputs->block->outputs and evaluate a batch of bit vectors."""
    netlist = Netlist()
    bits = netlist.add_input_bus("bits", width)
    out = builder(netlist, bits)
    netlist.set_output_bus("out", out)
    sim = Simulator(netlist, batch=len(vectors))
    inputs = {
        f"bits[{i}]": np.array([v[i] for v in vectors], dtype=np.uint8)
        for i in range(width)
    }
    sim.settle(inputs)
    return netlist, sim.output_bus("out")


class TestLutInit:
    def test_parity_init(self):
        init = lut_init(lambda a, b: a ^ b, 2)
        assert init == 0b0110

    def test_enumeration_order(self):
        # Address bit i carries input i.
        init = lut_init(lambda a, b: a, 2)
        assert init == 0b1010


class TestPopcount6:
    def test_inits_are_shared_function_bits(self):
        for address in range(64):
            count = bin(address).count("1")
            for bit in range(3):
                assert ((POPCOUNT6_INITS[bit] >> address) & 1) == ((count >> bit) & 1)

    def test_exhaustive(self):
        vectors = [[(a >> i) & 1 for i in range(6)] for a in range(64)]
        netlist, out = _evaluate_block(add_popcount6, 6, vectors)
        assert netlist.lut_count == 3
        expected = [bin(a).count("1") for a in range(64)]
        assert list(out) == expected

    def test_partial_inputs_padded(self):
        vectors = [[1, 1, 1]]
        _, out = _evaluate_block(add_popcount6, 3, vectors)
        assert out[0] == 3

    def test_arity_validated(self):
        netlist = Netlist()
        bits = netlist.add_input_bus("b", 7)
        with pytest.raises(ValueError):
            add_popcount6(netlist, bits)


class TestRippleAdder:
    @pytest.mark.parametrize("fractured", [True, False])
    def test_addition_exhaustive_4bit(self, fractured):
        pairs = [(a, b) for a in range(16) for b in range(16)]
        netlist = Netlist()
        a_bits = netlist.add_input_bus("a", 4)
        b_bits = netlist.add_input_bus("b", 4)
        out = add_ripple_adder(netlist, a_bits, b_bits, fractured=fractured)
        netlist.set_output_bus("s", out)
        sim = Simulator(netlist, batch=len(pairs))
        inputs = {}
        inputs.update(sim.set_input_bus("a", np.array([p[0] for p in pairs])))
        inputs.update(sim.set_input_bus("b", np.array([p[1] for p in pairs])))
        sim.settle(inputs)
        got = sim.output_bus("s")
        assert list(got) == [a + b for a, b in pairs]

    def test_fractured_costs_one_lut_per_bit(self):
        netlist = Netlist()
        a = netlist.add_input_bus("a", 4)
        b = netlist.add_input_bus("b", 4)
        add_ripple_adder(netlist, a, b, fractured=True)
        assert netlist.lut_count == 4

    def test_plain_costs_two_luts_per_bit(self):
        netlist = Netlist()
        a = netlist.add_input_bus("a", 4)
        b = netlist.add_input_bus("b", 4)
        add_ripple_adder(netlist, a, b, fractured=False)
        assert netlist.lut_count == 8

    def test_unequal_widths(self):
        netlist = Netlist()
        a = netlist.add_input_bus("a", 3)
        b = netlist.add_input_bus("b", 1)
        out = add_ripple_adder(netlist, a, b)
        netlist.set_output_bus("s", out)
        sim = Simulator(netlist)
        inputs = {}
        inputs.update(sim.set_input_bus("a", 7))
        inputs.update(sim.set_input_bus("b", 1))
        sim.settle(inputs)
        assert sim.output_bus("s")[0] == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            add_ripple_adder(Netlist(), [], [])


class TestPop36:
    def test_randomized_against_popcount(self, rng):
        vectors = rng.integers(0, 2, size=(500, 36)).tolist()
        netlist, out = _evaluate_block(add_pop36, 36, vectors)
        expected = [sum(v) for v in vectors]
        assert list(out) == expected

    def test_structure_stage1_is_18_luts(self):
        """Fig. 4: six groups of three shared-input LUTs, then compression."""
        netlist = Netlist()
        bits = netlist.add_input_bus("bits", 36)
        add_pop36(netlist, bits)
        # 18 (stage 1) + 9 (column compress) + 9 (two ripple adds) = 36 LUTs.
        assert netlist.lut_count == 36

    def test_short_input_padded(self):
        vectors = [[1] * 10]
        _, out = _evaluate_block(add_pop36, 10, vectors)
        assert out[0] == 10

    def test_arity_validated(self):
        netlist = Netlist()
        bits = netlist.add_input_bus("b", 37)
        with pytest.raises(ValueError):
            add_pop36(netlist, bits)

    def test_corner_values(self):
        vectors = [[0] * 36, [1] * 36]
        _, out = _evaluate_block(add_pop36, 36, vectors)
        assert list(out) == [0, 36]


class TestTreeAdderPopcount:
    def test_randomized(self, rng):
        width = 27
        vectors = rng.integers(0, 2, size=(200, width)).tolist()
        netlist, out = _evaluate_block(
            lambda nl, bits: add_tree_adder_popcount(nl, bits), width, vectors
        )
        assert list(out) == [sum(v) for v in vectors]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            add_tree_adder_popcount(Netlist(), [])


class TestBuildPopcounter:
    @pytest.mark.parametrize("style", ["fabp", "tree"])
    @pytest.mark.parametrize("width", [7, 36, 100])
    def test_functional(self, style, width, rng):
        block = build_popcounter(width, style=style, pipelined=False)
        vectors = rng.integers(0, 2, size=(100, width))
        sim = Simulator(block.netlist, batch=100)
        inputs = {f"bits[{i}]": vectors[:, i].astype(np.uint8) for i in range(width)}
        sim.settle(inputs)
        assert np.array_equal(sim.output_bus("score"), vectors.sum(axis=1))

    def test_pipelined_latency(self, rng):
        block = build_popcounter(100, style="fabp", pipelined=True)
        assert block.latency >= 2  # pop36 stage + at least one merge level
        width = 100
        vectors = rng.integers(0, 2, size=(1, width))
        sim = Simulator(block.netlist)
        inputs = {
            f"bits[{i}]": np.array([vectors[0, i]], dtype=np.uint8)
            for i in range(width)
        }
        for _ in range(block.latency):
            sim.step(inputs)
        sim.settle(inputs)
        assert sim.output_bus("score")[0] == vectors.sum()

    def test_fabp_smaller_than_tree(self):
        """§III-D: the hand-crafted pop-counter beats the naive tree adder."""
        for width in (36, 150, 750):
            fabp = build_popcounter(width, style="fabp")
            tree = build_popcounter(width, style="tree")
            assert fabp.lut_count < tree.lut_count
            reduction = 1 - fabp.lut_count / tree.lut_count
            assert reduction > 0.20  # at least the paper's claimed saving

    def test_score_bits_ten_at_750(self):
        # Table I discussion: "The alignment score is a 10-bit number".
        block = build_popcounter(750, style="fabp")
        assert block.score_bits == 10

    def test_invalid_style(self):
        with pytest.raises(ValueError):
            build_popcounter(10, style="magic")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_popcounter(0)
