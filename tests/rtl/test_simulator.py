"""Tests for the cycle simulator."""

import numpy as np
import pytest

from repro.rtl.netlist import GND, VCC, Netlist
from repro.rtl.popcount import lut_init
from repro.rtl.simulator import CombinationalLoopError, Simulator


def _and_gate():
    netlist = Netlist()
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    out = netlist.add_lut((a, b), lut_init(lambda x, y: x & y, 2))
    netlist.set_output("y", out)
    return netlist


class TestCombinational:
    def test_and_gate(self):
        sim = Simulator(_and_gate())
        for a in (0, 1):
            for b in (0, 1):
                out = sim.settle({"a": a, "b": b})
                assert out["y"][0] == (a & b)

    def test_batched_evaluation(self):
        sim = Simulator(_and_gate(), batch=4)
        out = sim.settle(
            {"a": np.array([0, 0, 1, 1]), "b": np.array([0, 1, 0, 1])}
        )
        assert list(out["y"]) == [0, 0, 0, 1]

    def test_constants(self):
        netlist = Netlist()
        out = netlist.add_lut((GND, VCC), lut_init(lambda x, y: x | y, 2))
        netlist.set_output("y", out)
        assert Simulator(netlist).settle()["y"][0] == 1

    def test_chained_luts(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        inv1 = netlist.add_lut((a,), lut_init(lambda x: 1 - x, 1))
        inv2 = netlist.add_lut((inv1,), lut_init(lambda x: 1 - x, 1))
        netlist.set_output("y", inv2)
        sim = Simulator(netlist)
        assert sim.settle({"a": 1})["y"][0] == 1
        assert sim.settle({"a": 0})["y"][0] == 0

    def test_lut62_dual_outputs(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        o5, o6 = netlist.add_lut62(
            (a, b),
            lut_init(lambda x, y: x & y, 2) & 0xFFFFFFFF,
            lut_init(lambda x, y: x ^ y, 2) & 0xFFFFFFFF,
        )
        netlist.set_output("carry", o5)
        netlist.set_output("sum", o6)
        sim = Simulator(netlist)
        out = sim.settle({"a": 1, "b": 1})
        assert out["carry"][0] == 1 and out["sum"][0] == 0

    def test_bad_input_name(self):
        sim = Simulator(_and_gate())
        with pytest.raises(KeyError, match="no input named"):
            sim.settle({"nope": 1})

    def test_non_binary_input_rejected(self):
        sim = Simulator(_and_gate())
        with pytest.raises(ValueError, match="non-binary"):
            sim.settle({"a": 2, "b": 0})

    def test_wrong_batch_shape_rejected(self):
        sim = Simulator(_and_gate(), batch=2)
        with pytest.raises(ValueError, match="shape"):
            sim.settle({"a": np.array([0, 1, 0]), "b": 0})


class TestSequential:
    def test_ff_delays_one_cycle(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_ff(a)
        netlist.set_output("q", q)
        sim = Simulator(netlist)
        out0 = sim.step({"a": 1})
        assert out0["q"][0] == 0  # pre-edge value
        out1 = sim.step({"a": 0})
        assert out1["q"][0] == 1  # captured last cycle

    def test_ff_init_value(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q = netlist.add_ff(a, init=1)
        netlist.set_output("q", q)
        assert Simulator(netlist).settle()["q"][0] == 1

    def test_shift_register(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        q1 = netlist.add_ff(a)
        q2 = netlist.add_ff(q1)
        netlist.set_output("q", q2)
        sim = Simulator(netlist)
        stream = [1, 0, 1, 1, 0]
        seen = [int(sim.step({"a": bit})["q"][0]) for bit in stream]
        # Two-cycle delay: output is the input stream shifted by 2.
        assert seen == [0, 0, 1, 0, 1]

    def test_race_free_swap(self):
        """Two cross-coupled FFs swap values every cycle (classic race test)."""
        netlist = Netlist()
        d1 = netlist.new_net()
        d2 = netlist.new_net()
        q1 = netlist.add_ff(d1, init=1)
        q2 = netlist.add_ff(d2, init=0)
        identity = lut_init(lambda x: x, 1)
        netlist.add_lut_driving(d1, (q2,), identity)
        netlist.add_lut_driving(d2, (q1,), identity)
        netlist.set_output("q1", q1)
        netlist.set_output("q2", q2)
        sim = Simulator(netlist)
        sim.step()
        out = sim.settle()
        assert (out["q1"][0], out["q2"][0]) == (0, 1)
        sim.step()
        out = sim.settle()
        assert (out["q1"][0], out["q2"][0]) == (1, 0)

    def test_run_stream(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.set_output("q", netlist.add_ff(a))
        sim = Simulator(netlist)
        outputs = sim.run([{"a": 1}, {"a": 0}, {"a": 1}])
        assert [int(o["q"][0]) for o in outputs] == [0, 1, 0]


class TestBuses:
    def test_bus_roundtrip(self):
        netlist = Netlist()
        bus = netlist.add_input_bus("v", 4)
        netlist.set_output_bus("w", bus)
        sim = Simulator(netlist, batch=3)
        inputs = sim.set_input_bus("v", np.array([5, 9, 15]))
        sim.settle(inputs)
        assert list(sim.output_bus("w")) == [5, 9, 15]

    def test_missing_bus_raises(self):
        sim = Simulator(_and_gate())
        with pytest.raises(KeyError):
            sim.output_bus("nothere")
        with pytest.raises(KeyError):
            sim.set_input_bus("nothere", 0)


class TestLoopDetection:
    def test_combinational_loop_rejected(self):
        netlist = Netlist()
        d = netlist.new_net()
        identity = lut_init(lambda x: x, 1)
        # LUT driving its own input net.
        netlist.add_lut_driving(d, (d,), identity)
        with pytest.raises(CombinationalLoopError):
            Simulator(netlist)

    def test_loop_through_ff_is_fine(self):
        netlist = Netlist()
        d = netlist.new_net()
        q = netlist.add_ff(d)
        netlist.add_lut_driving(d, (q,), lut_init(lambda x: 1 - x, 1))
        netlist.set_output("q", q)
        sim = Simulator(netlist)  # must not raise
        values = []
        for _ in range(4):
            sim.step()
            values.append(int(sim.settle()["q"][0]))
        assert values == [1, 0, 1, 0]  # toggles
