"""Per-rule tests of the netlist lint passes (repro.rtl.lint).

Each defect test builds the smallest netlist whose corruption triggers the
rule under test — and *only* that rule — so the assertions pin both the
detection and the isolation of every pass.
"""

import json

import pytest

from repro.lint import (
    Finding,
    LintReport,
    Severity,
    merge_reports,
    render_json,
    render_text,
)
from repro.rtl.comparator import add_element_comparator, build_element_comparator
from repro.rtl.lint import NETLIST_RULES, NetlistLintConfig, demo_designs, lint_netlist
from repro.rtl.netlist import GND, FlipFlop, Lut6, Netlist, NetlistError
from repro.rtl.popcount import add_popcount6, add_ripple_adder, lut_init

BUFFER_INIT = lut_init(lambda a: a, 1)
AND2_INIT = lut_init(lambda a, b: a & b, 2)
XOR2_INIT = lut_init(lambda a, b: a ^ b, 2)


def rule_ids(report: LintReport):
    return sorted(set(report.by_rule()))


def test_registry_has_all_documented_rules():
    expected = [f"NL00{i}" for i in range(1, 10)]
    assert list(NETLIST_RULES.ids()) == expected


class TestShippedGeneratorsAreClean:
    """Acceptance: zero errors on every shipped design point."""

    def test_no_errors_on_any_demo_design(self):
        for name, netlist in demo_designs():
            report = lint_netlist(netlist)
            assert report.ok, f"{name}: {[str(f) for f in report.errors]}"

    def test_element_comparator_known_warning_only(self):
        # prev1[0] is deliberately declared-but-unused (the mux reads only
        # the hi bit; the 2-bit bus keeps exhaustive sweeps symmetric).
        report = lint_netlist(build_element_comparator())
        assert rule_ids(report) == ["NL003"]
        assert "prev1[0]" in report.findings[0].location

    def test_popcounters_have_no_warnings(self):
        for name, netlist in demo_designs():
            if not name.startswith("popcounter"):
                continue
            report = lint_netlist(netlist)
            assert not report.warnings, f"{name}: {[str(f) for f in report.warnings]}"


class TestNL001Undriven:
    def test_lut_reading_undriven_net(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        phantom = netlist.new_net("phantom")  # allocated, never driven
        out = netlist.add_lut((a, phantom), AND2_INIT, name="and")
        netlist.set_output("y", out)
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL001"]
        assert f"net {phantom}" in report.findings[0].message

    def test_undriven_output_port(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        out = netlist.add_lut((a,), BUFFER_INIT, name="buf")
        netlist.set_output("y", out)
        netlist.set_output("z", netlist.new_net("floating"))
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL001"]


class TestNL002MultiplyDriven:
    def test_lut_shorting_an_input(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.set_output("y", netlist.add_lut((a,), BUFFER_INIT, name="buf"))
        # The add_* helpers enforce single drivers, so corrupt directly:
        # a LUT driving the net the input port already drives.
        netlist.luts.append(Lut6((b,), a, BUFFER_INIT, "clash"))
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL002"]
        assert "2 sources" in report.findings[0].message


class TestNL003FloatingInput:
    def test_unused_primary_input(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.add_input("unused")
        netlist.set_output("y", netlist.add_lut((a,), BUFFER_INIT, name="buf"))
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL003"]
        assert "unused" in report.findings[0].location


class TestNL004DeadLogic:
    def test_unconsumed_lut(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.set_output("y", netlist.add_lut((a, b), AND2_INIT, name="live"))
        netlist.add_lut((a, b), XOR2_INIT, name="dead")  # output goes nowhere
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL004"]
        assert report.findings[0].location == "dead"

    def test_no_outputs_at_all(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.add_lut((a,), BUFFER_INIT, name="buf")
        report = lint_netlist(netlist, rules=["NL004"])
        assert rule_ids(report) == ["NL004"]
        assert "no primary outputs" in report.findings[0].message

    def test_ff_cone_is_traversed(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        lut = netlist.add_lut((a,), BUFFER_INIT, name="buf")
        q = netlist.add_ff(lut, name="reg")
        netlist.set_output("y", q)
        assert lint_netlist(netlist).clean


class TestNL005CombinationalLoop:
    def test_two_lut_cycle(self):
        netlist = Netlist()
        n1 = netlist.new_net("n1")
        n2 = netlist.new_net("n2")
        netlist.luts.append(Lut6((n2,), n1, BUFFER_INIT, "loop_a"))
        netlist.luts.append(Lut6((n1,), n2, BUFFER_INIT, "loop_b"))
        netlist.set_output("y", n1)
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL005"]
        assert "loop_a" in report.findings[0].message

    def test_self_loop(self):
        netlist = Netlist()
        n = netlist.new_net("n")
        netlist.luts.append(Lut6((n,), n, BUFFER_INIT, "self"))
        netlist.set_output("y", n)
        report = lint_netlist(netlist, rules=["NL005"])
        assert len(report.findings) == 1

    def test_ff_feedback_is_legal(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        d = netlist.new_net("d")
        q = netlist.add_ff(d, name="reg")
        netlist.add_lut_driving(d, (a, q), XOR2_INIT, name="toggle")
        netlist.set_output("y", q)
        assert lint_netlist(netlist).clean


class TestNL006DegenerateInit:
    def test_ignored_connected_input(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        c = netlist.add_input("c")
        init = lut_init(lambda a, b, c: a ^ b, 3)  # c wired but ignored
        netlist.set_output("y", netlist.add_lut((a, b, c), init, name="waste"))
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL006"]
        assert "input 2" in report.findings[0].message

    def test_constant_wiring_can_mask_sensitivity(self):
        # AND with one leg tied to GND: the other leg can no longer affect
        # the output, but the whole LUT is constant -> NL007, not NL006.
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.set_output("y", netlist.add_lut((a, GND), AND2_INIT, name="gnd_and"))
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL007"]


class TestNL007ConstantLut:
    def test_lut_wired_to_constants_only(self):
        netlist = Netlist()
        netlist.set_output("y", netlist.add_lut((GND,), BUFFER_INIT, name="zero"))
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL007"]
        assert report.findings[0].severity == Severity.INFO

    def test_duplicate_net_constant(self):
        # XOR of a net with itself is constant 0 regardless of the net.
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.set_output("y", netlist.add_lut((a, a), XOR2_INIT, name="x"))
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL007"]


class TestNL008ScoreWidth:
    @staticmethod
    def _popcount8(truncate_to):
        netlist = Netlist(name="pc8")
        bits = netlist.add_input_bus("bits", 8)
        low = add_popcount6(netlist, bits[:4], name="lo")
        high = add_popcount6(netlist, bits[4:], name="hi")
        score = add_ripple_adder(netlist, low, high, name="sum")
        netlist.set_output_bus("score", score[:truncate_to])
        return netlist

    def test_overflow_possible_is_error(self):
        report = lint_netlist(self._popcount8(3))  # 8 inputs need 4 bits
        assert rule_ids(report) == ["NL008"]
        assert report.errors and "overflow" in report.errors[0].message

    def test_exact_width_is_silent(self):
        assert lint_netlist(self._popcount8(4)).clean

    def test_overprovisioned_is_info(self):
        netlist = Netlist(name="wide")
        bits = netlist.add_input_bus("bits", 2)
        score = add_ripple_adder(netlist, [bits[0]], [bits[1]], name="sum")
        netlist.set_output_bus("score", [score[0], score[1], score[1]])
        report = lint_netlist(netlist)
        assert rule_ids(report) == ["NL008"]
        assert report.findings[0].severity == Severity.INFO

    def test_bus_names_configurable(self):
        netlist = self._popcount8(3)
        config = NetlistLintConfig(count_input_bus="nonexistent")
        assert lint_netlist(netlist, config=config, rules=["NL008"]).clean


class TestNL009ComparatorBudget:
    @staticmethod
    def _comparator(extra_buffer):
        netlist = Netlist(name="cmp1")
        q = netlist.add_input_bus("q", 6)
        ref = netlist.add_input_bus("ref", 2)
        p1h = netlist.add_input("p1h")
        p2l = netlist.add_input("p2l")
        p2h = netlist.add_input("p2h")
        match = add_element_comparator(
            netlist, q, (ref[1], ref[0]), prev1_hi=p1h, prev2_lo=p2l, prev2_hi=p2h
        )
        if extra_buffer:
            match = netlist.add_lut((match,), BUFFER_INIT, name="extra")
        netlist.set_output_bus("match", [match])
        return netlist

    def test_exact_budget_is_silent(self):
        assert lint_netlist(self._comparator(False)).clean

    def test_over_budget_is_error(self):
        report = lint_netlist(self._comparator(True))
        assert rule_ids(report) == ["NL009"]
        assert report.errors and "3 LUTs" in report.errors[0].message

    def test_under_budget_is_info(self):
        netlist = Netlist(name="tiny")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.set_output_bus("match", [netlist.add_lut((a, b), AND2_INIT, "m")])
        report = lint_netlist(netlist, rules=["NL009"])
        assert report.findings and report.findings[0].severity == Severity.INFO

    def test_budget_override(self):
        config = NetlistLintConfig(luts_per_element=3)
        report = lint_netlist(self._comparator(True), config=config, rules=["NL009"])
        assert report.clean


class TestSuppressionAndSelection:
    def test_ignore_drops_rule(self):
        report = lint_netlist(build_element_comparator(), ignore=("NL003",))
        assert report.clean

    def test_rules_subset(self):
        netlist = Netlist()
        netlist.add_input("unused")
        report = lint_netlist(netlist, rules=["NL001", "NL002"])
        assert report.clean  # NL003 not selected

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="NL999"):
            lint_netlist(Netlist(), rules=["NL999"])


class TestReporters:
    def test_render_text_summary(self):
        reports = [lint_netlist(n) for _, n in demo_designs()]
        text = render_text(reports)
        assert "summary:" in text and "0 errors" in text

    def test_render_json_roundtrip(self):
        reports = [lint_netlist(build_element_comparator())]
        payload = json.loads(render_json(reports, extra={"resources": {"x": 1}}))
        assert payload["summary"]["ok"] is True
        assert payload["summary"]["warnings"] == 1
        assert payload["resources"] == {"x": 1}
        assert payload["subjects"][0]["findings"][0]["rule"] == "NL003"

    def test_merge_reports_prefixes_locations(self):
        merged = merge_reports(
            "all", [lint_netlist(build_element_comparator())]
        )
        assert merged.findings[0].location.startswith("element_comparator:")

    def test_finding_str_includes_fix(self):
        finding = Finding("XX001", Severity.ERROR, "here", "broken", "fix it")
        assert "fix it" in str(finding) and "[error]" in str(finding)


class TestNetlistValidate:
    def test_clean_netlist_validates(self):
        for _, netlist in demo_designs():
            netlist.validate()

    def test_duplicate_driver_caught(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        shared = netlist.new_net()
        netlist.luts.append(Lut6((a,), shared, BUFFER_INIT, "one"))
        netlist.luts.append(Lut6((a,), shared, BUFFER_INIT, "two"))
        with pytest.raises(NetlistError, match="driven by both"):
            netlist.validate()

    def test_out_of_range_net_caught(self):
        netlist = Netlist()
        netlist.luts.append(Lut6((99,), netlist.new_net(), BUFFER_INIT, "bad"))
        with pytest.raises(NetlistError, match="does not exist"):
            netlist.validate()

    def test_constant_net_driver_caught(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.luts.append(Lut6((a,), GND, BUFFER_INIT, "drives_gnd"))
        with pytest.raises(NetlistError, match="constant"):
            netlist.validate()

    def test_primitive_handle_validation(self):
        with pytest.raises(NetlistError, match="non-integer"):
            Lut6(("x",), 2, BUFFER_INIT, "bad")
        with pytest.raises(NetlistError, match="negative"):
            Lut6((-1,), 2, BUFFER_INIT, "bad")

    def test_ff_init_validated(self):
        with pytest.raises(NetlistError, match="init must be 0 or 1"):
            FlipFlop(data=2, output=3, init=7)
