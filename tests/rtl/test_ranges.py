"""Tests for the word-level value-range prover."""

import dataclasses

import pytest

from repro.rtl.comparator import build_instance_comparator
from repro.rtl.netlist import Netlist
from repro.rtl.popcount import add_pop36, build_popcounter
from repro.rtl.ranges import lane_budget, prove_count_range


def _fabp(width: int) -> Netlist:
    return build_popcounter(width, style="fabp").netlist


class TestProvenExact:
    @pytest.mark.parametrize("width", [6, 12, 36, 72, 150])
    def test_small_and_medium_widths(self, width):
        proof = prove_count_range(_fabp(width))
        assert proof.proven and proof.exact, proof.reason
        assert (proof.min_value, proof.max_value) == (0, width)
        assert proof.width_ok

    def test_tree_style(self):
        proof = prove_count_range(
            build_popcounter(36, style="tree").netlist
        )
        assert proof.proven and proof.exact, proof.reason
        assert proof.max_value == 36

    def test_table1_bound_at_750(self):
        """The acceptance claim: 750 elements provably score in 10 bits,
        without enumerating a single input vector."""
        proof = prove_count_range(_fabp(750))
        assert proof.proven and proof.exact, proof.reason
        assert proof.max_value == 750
        assert proof.out_width == 10
        assert proof.needed_bits == 10
        assert proof.width_ok
        # The tail chunk leaves dangling ripple carries the proof must
        # discharge with the cone-local argument.
        assert proof.slack_terms > 0

    def test_unpipelined_variant(self):
        proof = prove_count_range(
            build_popcounter(36, style="fabp", pipelined=False).netlist
        )
        assert proof.proven and proof.exact, proof.reason


class TestRefutation:
    def test_flipped_lut_bit_breaks_the_proof(self):
        netlist = _fabp(72)
        lut = netlist.luts[0]
        netlist.luts[0] = dataclasses.replace(lut, init=lut.init ^ 1)
        proof = prove_count_range(netlist)
        assert not proof.proven
        assert not proof.width_ok

    def test_truncated_score_bus_fails_width(self):
        """A 36-input counter exported on 5 bits can overflow."""
        netlist = Netlist("truncated")
        bits = netlist.add_input_bus("bits", 36)
        out = add_pop36(netlist, bits)
        netlist.set_output_bus("score", out[:5])  # needs 6 bits
        proof = prove_count_range(netlist)
        # The dropped top bit leaves an undischargeable slack term: the
        # bound [0, 36] still holds, equality does not, and 36 >= 2^5.
        assert proof.proven and not proof.exact
        assert not proof.width_ok


class TestGracefulFailure:
    def test_non_popcount_netlist(self):
        netlist = build_instance_comparator(2)
        proof = prove_count_range(netlist)
        assert not proof.proven
        assert proof.reason

    def test_missing_buses(self):
        netlist = Netlist("empty")
        a = netlist.add_input("a")
        netlist.set_output("y", a)
        proof = prove_count_range(netlist)
        assert not proof.proven


class TestProofRecord:
    def test_to_dict_round_trips_key_fields(self):
        proof = prove_count_range(_fabp(36))
        record = proof.to_dict()
        assert record["netlist"] == proof.netlist_name
        assert record["max_value"] == 36
        assert record["width_ok"] is True
        assert record["exact"] is True


class TestLaneBudget:
    """The Pop36 bit-budget claim as a cached, queryable proof object."""

    def test_750_elements_fit_ten_bits_exactly(self):
        budget = lane_budget(750)
        assert budget.proven and budget.exact
        assert budget.max_value == 750
        assert budget.needed_bits == 10
        assert budget.out_bits == 10
        assert budget.fits

    def test_undersized_budget_is_refuted(self):
        assert not lane_budget(750, out_bits=9).fits

    def test_generous_budget_still_fits(self):
        assert lane_budget(36, out_bits=12).fits

    def test_results_are_cached(self):
        assert lane_budget(36) is lane_budget(36)

    def test_to_dict_carries_the_proof(self):
        record = lane_budget(36).to_dict()
        assert record["fits"] is True
        assert record["needed_bits"] == 6
        assert record["proof"]["proven"] is True
