"""Fault injection: prove the verification flow actually catches bugs.

A verification suite that never sees a failure proves nothing.  These
tests inject single faults into known-good netlists — a flipped LUT INIT
minterm (stuck-at in the truth table), a swapped wire — and assert that
the checking machinery (exhaustive equivalence, golden-model comparison)
detects every one.  This is mutation testing of the reproduction's own
verification layer.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import comparator as golden
from repro.rtl.comparator import build_element_comparator
from repro.rtl.equivalence import check_equivalence
from repro.rtl.netlist import Lut6, Netlist
from repro.rtl.popcount import build_popcounter
from repro.rtl.simulator import Simulator


def _flip_init_bit(netlist: Netlist, lut_index: int, bit: int) -> Netlist:
    """Return a copy of the netlist with one INIT minterm flipped."""
    mutated = dataclasses.replace(
        netlist,
        luts=list(netlist.luts),
        luts2=list(netlist.luts2),
        flops=list(netlist.flops),
        inputs=dict(netlist.inputs),
        outputs=dict(netlist.outputs),
        _drivers=dict(netlist._drivers),
    )
    victim = mutated.luts[lut_index]
    mutated.luts[lut_index] = Lut6(
        victim.inputs, victim.output, victim.init ^ (1 << bit), victim.name
    )
    return mutated


class TestComparatorFaults:
    def _exhaustive_outputs(self, netlist: Netlist) -> np.ndarray:
        batch = 4096
        sim = Simulator(netlist, batch=batch)
        index = np.arange(batch)
        inputs = {}
        inputs.update(sim.set_input_bus("q", index % 64))
        inputs.update(sim.set_input_bus("ref", (index // 64) % 4))
        inputs.update(sim.set_input_bus("prev1", (index // 256) % 4))
        inputs.update(sim.set_input_bus("prev2", (index // 1024) % 4))
        sim.settle(inputs)
        return sim.output_bus("match")

    def test_every_comparison_lut_fault_detected(self):
        """All 64 single-minterm faults in the comparison LUT change some
        exhaustive output (no redundant logic to hide faults in)."""
        reference = build_element_comparator()
        good = self._exhaustive_outputs(reference)
        cmp_index = next(
            i for i, lut in enumerate(reference.luts) if lut.name.endswith(".cmp")
        )
        for bit in range(64):
            mutated = _flip_init_bit(reference, cmp_index, bit)
            bad = self._exhaustive_outputs(mutated)
            assert not np.array_equal(good, bad), f"fault at minterm {bit} undetected"

    def test_mux_lut_faults_mostly_detected(self):
        """Mux LUT faults are observable unless they sit in don't-care
        space (config values whose selected bit is ignored downstream)."""
        reference = build_element_comparator()
        good = self._exhaustive_outputs(reference)
        mux_index = next(
            i for i, lut in enumerate(reference.luts) if lut.name.endswith(".mux")
        )
        detected = 0
        for bit in range(64):
            mutated = _flip_init_bit(reference, mux_index, bit)
            if not np.array_equal(good, self._exhaustive_outputs(mutated)):
                detected += 1
        # The X bit is ignored for Type I instructions whose nucleotide
        # hi-bit makes the comparison independent of X in some rows, so not
        # every fault propagates — but the large majority must.
        assert detected >= 32


class TestEquivalenceCatchesFaults:
    def test_popcounter_init_fault_caught_exhaustively(self):
        reference = build_popcounter(10, style="fabp", pipelined=False).netlist
        # LUT 0 is the first popcount6 group with six live inputs; minterm
        # 17 is reachable.  (A fault behind a GND-padded input would be
        # logically redundant — genuinely undetectable, as in real silicon.)
        mutated = _flip_init_bit(reference, 0, 17)
        result = check_equivalence(reference, mutated, mode="exhaustive")
        assert not result
        assert result.counterexample is not None

    def test_fault_behind_padded_input_is_redundant(self):
        """Sanity check of the note above: a minterm requiring a grounded
        input high never differs."""
        reference = build_popcounter(10, style="fabp", pipelined=False).netlist
        # LUT 3 belongs to the second group (4 live + 2 GND inputs);
        # minterm 17 requires input 4 = 1, which is tied to ground.
        mutated = _flip_init_bit(reference, 3, 17)
        assert check_equivalence(reference, mutated, mode="exhaustive")

    def test_popcounter_init_fault_caught_randomly(self):
        reference = build_popcounter(30, style="fabp", pipelined=False).netlist
        mutated = _flip_init_bit(reference, 5, 9)
        result = check_equivalence(
            reference, mutated, mode="random", random_vectors=30_000, seed=7
        )
        assert not result


class TestGoldenCrossCheckCatchesFaults:
    def test_rtl_vs_golden_catches_comparator_fault(self, rng):
        """The standard RTL-vs-golden test methodology detects an injected
        comparator fault on a realistic stream."""
        from repro.accel.rtl_kernel import RtlKernel
        from repro.core.aligner import alignment_scores
        from repro.seq.generate import random_protein, random_rna

        from repro.core.encoding import encode_query

        query = random_protein(3, rng=rng)
        reference = random_rna(120, rng=rng)
        kernel = RtlKernel(query, instances=1, threshold=5)
        netlist = kernel.array.netlist
        index = next(
            i for i, lut in enumerate(netlist.luts) if lut.name == "i0.e0.cmp"
        )
        # Flip every minterm of element 0's live opcode region (its first
        # three address bits are the instruction's opcode bits, which are
        # constant for this element), so the fault is guaranteed exercised.
        instruction = int(encode_query(query).instructions[0])
        mask = 0
        for address in range(64):
            if (address & 0b111) == (instruction & 0b111):
                mask |= 1 << address
        victim = netlist.luts[index]
        netlist.luts[index] = Lut6(
            victim.inputs, victim.output, victim.init ^ mask, victim.name
        )
        scores, _ = kernel.run(reference)
        expected = alignment_scores(query, reference)
        assert not np.array_equal(scores, expected)
