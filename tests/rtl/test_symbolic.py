"""Tests for the bit-parallel symbolic evaluation engine."""

import pytest

from repro.core.comparator import instruction_matches
from repro.core.encoding import encode_query
from repro.rtl.comparator import build_element_comparator, build_instance_comparator
from repro.rtl.netlist import GND, VCC, Netlist
from repro.rtl.popcount import build_popcounter, lut_init
from repro.rtl.simulator import Simulator
from repro.rtl.symbolic import (
    X,
    Space,
    SymbolicEvaluator,
    SymbolicFunction,
    SymbolicLimitError,
    false_fanin_positions,
    ternary_outputs,
    ternary_settle,
)


class TestSpace:
    def test_variable_truth_tables(self):
        space = Space(["a", "b"])
        assert space.variable("a").mask == 0b1010
        assert space.variable("b").mask == 0b1100

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Space(["a", "a"])

    def test_lut_composition_equals_enumeration(self):
        space = Space(["a", "b", "c"])
        init = lut_init(lambda p, q, r: (p & q) | r, 3)
        function = space.lut(
            init, [space.variable(n) for n in ("a", "b", "c")]
        )
        for minterm in range(8):
            a, b, c = minterm & 1, (minterm >> 1) & 1, (minterm >> 2) & 1
            assert (function.mask >> minterm) & 1 == ((a & b) | c)


class TestSymbolicFunction:
    def _space(self):
        return Space(["a", "b", "c"])

    def test_operators(self):
        space = self._space()
        a, b = space.variable("a"), space.variable("b")
        assert (a & b).mask == a.mask & b.mask
        assert (a | b).mask == a.mask | b.mask
        assert (a ^ a).is_constant()
        assert (~a).mask == ~a.mask & space.full

    def test_cofactor_and_support(self):
        space = self._space()
        a, b = space.variable("a"), space.variable("b")
        f = a & b
        assert f.cofactor("a", 1).equivalent(b)
        assert f.cofactor("a", 0).is_constant()
        assert f.support() == ("a", "b")
        assert not f.depends_on("c")

    def test_satisfying_minterm_minimization(self):
        space = self._space()
        f = space.variable("b")
        minterm = f.satisfying_minterm()
        assert minterm == 0b010
        assert space.assignment_of(minterm) == {"a": 0, "b": 1, "c": 0}

    def test_value_at(self):
        space = self._space()
        f = space.variable("a") ^ space.variable("c")
        assert f.value_at({"a": 1, "b": 0, "c": 0}) == 1
        assert f.value_at({"a": 1, "b": 1, "c": 1}) == 0


class TestSymbolicEvaluator:
    def test_matches_simulator_on_element_comparator(self):
        netlist = build_element_comparator()
        evaluator = SymbolicEvaluator(netlist)
        function = evaluator.output_function("match[0]")
        simulator = Simulator(netlist)
        names = sorted(netlist.inputs)
        # Exhaust the cone support only; other inputs are don't-cares.
        support = function.support()
        for minterm in range(1 << len(support)):
            assignment = {
                name: (minterm >> i) & 1 for i, name in enumerate(support)
            }
            inputs = {name: 0 for name in names}
            inputs.update(assignment)
            sim_out = simulator.settle(
                {k: [v] for k, v in inputs.items()}
            )["match[0]"][0]
            assert function.value_at(inputs) == int(sim_out)

    def test_golden_semantics_per_instruction(self):
        """The symbolic cone reproduces instruction_matches() exactly."""
        netlist = build_element_comparator()
        evaluator = SymbolicEvaluator(netlist)
        function = evaluator.output_function("match[0]")
        encoded = encode_query("W")  # UGG: fixed nucleotides, no deps
        for position, instruction in enumerate(encoded.instructions):
            for ref_code in range(4):
                assignment = {f"q[{b}]": (instruction >> b) & 1 for b in range(6)}
                assignment["ref[0]"] = ref_code & 1
                assignment["ref[1]"] = (ref_code >> 1) & 1
                assignment["prev1[1]"] = 0
                assignment["prev2[0]"] = 0
                assignment["prev2[1]"] = 0
                expected = instruction_matches(instruction, ref_code, 0, 0)
                assert function.value_at(assignment) == int(expected)

    def test_cone_limit_raises(self):
        netlist = build_popcounter(36, style="fabp", pipelined=False).netlist
        evaluator = SymbolicEvaluator(netlist, max_support=8)
        with pytest.raises(SymbolicLimitError) as info:
            evaluator.output_bus_functions("score")
        assert info.value.support == 36
        assert info.value.limit == 8

    def test_popcount_score_bit_functions(self):
        """score[k] of a small popcounter == bit k of the popcount."""
        netlist = build_popcounter(6, style="fabp", pipelined=False).netlist
        evaluator = SymbolicEvaluator(netlist)
        space, functions = evaluator.output_bus_functions("score")
        for minterm in range(1 << 6):
            count = bin(minterm).count("1")
            assignment = space.assignment_of(minterm)
            for k, function in enumerate(functions):
                assert function.value_at(assignment) == (count >> k) & 1


class TestTernary:
    def test_known_inputs_propagate(self):
        netlist = Netlist()
        a, b = netlist.add_input("a"), netlist.add_input("b")
        out = netlist.add_lut((a, b), lut_init(lambda p, q: p & q, 2))
        netlist.set_output("y", out)
        assert ternary_outputs(netlist, {"a": 1, "b": 1})["y"] == 1
        assert ternary_outputs(netlist, {"a": 0})["y"] == 0  # 0 & X == 0
        assert ternary_outputs(netlist, {"a": 1})["y"] == X

    def test_all_unknown_inputs_yield_x(self):
        netlist = build_element_comparator()
        values = ternary_settle(netlist)
        assert values[netlist.outputs["match[0]"]] == X


class TestFalsePaths:
    def test_ignored_pin_reported(self):
        netlist = Netlist()
        a, b = netlist.add_input("a"), netlist.add_input("b")
        # INIT depends only on address bit 1 (input b).
        out = netlist.add_lut((a, b), 0b1100, name="ignores_a")
        netlist.set_output("y", out)
        false = false_fanin_positions(netlist)
        assert false == {("lut", 0): frozenset({0})}

    def test_constant_pins_not_reported(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        out = netlist.add_lut((a, GND, VCC), 0b10101010, name="padded")
        netlist.set_output("y", out)
        assert false_fanin_positions(netlist) == {}

    def test_clean_designs_have_none(self):
        for netlist in (
            build_instance_comparator(2),
            build_popcounter(36, style="fabp").netlist,
        ):
            assert false_fanin_positions(netlist) == {}


class TestDiffMinimization:
    def test_diff_support_is_minimal(self):
        space = Space(["a", "b", "c", "d"])
        f = space.variable("a") & space.variable("b")
        g = space.variable("a")
        diff = SymbolicFunction(space, f.mask ^ g.mask)
        assert diff.support() == ("a", "b")  # c, d are don't-cares
