"""Round-trip tests: export Verilog, re-import, prove bit-identical."""

import numpy as np
import pytest

from repro.accel.rtl_kernel import build_alignment_array
from repro.rtl.comparator import build_element_comparator
from repro.rtl.equivalence import check_equivalence
from repro.rtl.netlist import Netlist
from repro.rtl.popcount import build_popcounter
from repro.rtl.simulator import Simulator
from repro.rtl.verilog import to_verilog, write_verilog
from repro.rtl.verilog_parser import VerilogParseError, parse_verilog, read_verilog


class TestRoundTrip:
    def test_comparator_equivalent_after_roundtrip(self):
        original = build_element_comparator()
        reimported = parse_verilog(to_verilog(original))
        result = check_equivalence(original, reimported, mode="random",
                                   random_vectors=20_000, seed=1)
        assert result, result.counterexample

    def test_popcounter_combinational_roundtrip(self):
        original = build_popcounter(20, style="fabp", pipelined=False).netlist
        reimported = parse_verilog(to_verilog(original))
        assert check_equivalence(original, reimported, mode="exhaustive")

    def test_lut62_roundtrip(self):
        """Fractured-adder INIT packing survives export + import."""
        original = build_popcounter(40, style="fabp", pipelined=False).netlist
        assert original.luts2  # the design really contains LUT6_2s
        reimported = parse_verilog(to_verilog(original))
        assert len(reimported.luts2) == len(original.luts2)
        result = check_equivalence(original, reimported, mode="random",
                                   random_vectors=20_000, seed=2)
        assert result, result.counterexample

    def test_sequential_roundtrip_cycle_accurate(self, rng):
        """A registered design replays identically after re-import."""
        original = build_popcounter(12, style="fabp", pipelined=True).netlist
        reimported = parse_verilog(to_verilog(original))
        assert reimported.ff_count == original.ff_count
        sim_a = Simulator(original)
        sim_b = Simulator(reimported)
        for _ in range(10):
            value = int(rng.integers(0, 1 << 12))
            inputs_a = sim_a.set_input_bus("bits", value)
            inputs_b = sim_b.set_input_bus("bits", value)
            sim_a.step(inputs_a)
            sim_b.step(inputs_b)
            sim_a.settle()
            sim_b.settle()
            assert sim_a.output_bus("score")[0] == sim_b.output_bus("score")[0]

    def test_full_array_roundtrip(self, rng):
        """The whole demo datapath re-imports and replays a stream."""
        from repro.core.aligner import alignment_scores
        from repro.seq.generate import random_protein, random_rna
        from repro.seq.packing import codes_from_text

        query = random_protein(3, rng=rng)
        original = build_alignment_array(query, instances=1, threshold=6).netlist
        reimported = parse_verilog(to_verilog(original))
        reference = random_rna(40, rng=rng)
        codes = codes_from_text(reference.letters)
        sim = Simulator(reimported)
        scores = []
        for index in range(codes.size + 2):
            code = int(codes[index]) if index < codes.size else 0
            sim.step({"nt[0]": code & 1, "nt[1]": (code >> 1) & 1, "valid": 1})
            k = (index + 1) - 9 - 2
            if 0 <= k <= codes.size - 9:
                sim.settle()
                scores.append(int(sim.output_bus("score0")[0]))
        expected = alignment_scores(query, codes)
        assert scores == list(expected)

    def test_file_roundtrip(self, tmp_path):
        original = build_element_comparator()
        path = tmp_path / "cmp.v"
        write_verilog(original, path)
        reimported = read_verilog(path)
        assert reimported.lut_count == original.lut_count


class TestParserValidation:
    def test_missing_module_rejected(self):
        with pytest.raises(VerilogParseError, match="module"):
            parse_verilog("wire n5;")

    def test_unknown_net_rejected(self):
        import re

        text = to_verilog(build_element_comparator())
        broken = re.sub(r"\.I0\(n\d+\)", ".I0(mystery)", text, count=1)
        assert "mystery" in broken
        with pytest.raises(VerilogParseError, match="mystery"):
            parse_verilog(broken)

    def test_weird_assign_rejected(self):
        text = to_verilog(build_element_comparator())
        broken = text.replace("endmodule", "assign n2 = n3 & n4;\nendmodule")
        with pytest.raises(VerilogParseError):
            parse_verilog(broken)

    def test_port_names_restored(self):
        reimported = parse_verilog(to_verilog(build_element_comparator()))
        assert "q[0]" in reimported.inputs
        assert "match[0]" in reimported.outputs
