"""Tests for the combinational equivalence checker."""

import dataclasses

import pytest

from repro.rtl.equivalence import (
    EquivalenceError,
    check_equivalence,
)
from repro.rtl.symbolic import SymbolicLimitError
from repro.rtl.netlist import Netlist
from repro.rtl.popcount import (
    add_pop36,
    add_tree_adder_popcount,
    lut_init,
)


def _popcount_netlist(width: int, style: str) -> Netlist:
    netlist = Netlist(f"pc_{style}_{width}")
    bits = netlist.add_input_bus("bits", width)
    if style == "fabp":
        out = add_pop36(netlist, bits)[: max(1, width.bit_length())]
    else:
        out = add_tree_adder_popcount(netlist, bits)
    netlist.set_output_bus("score", out)
    return netlist


class TestEquivalent:
    def test_pop36_equals_tree_adder_exhaustive(self):
        """The paper's hand-optimized block == the naive one, proven over
        all 2^12 vectors at width 12."""
        a = _popcount_netlist(12, "fabp")
        b = _popcount_netlist(12, "tree")
        result = check_equivalence(a, b)
        assert result
        assert result.mode == "exhaustive"
        assert result.vectors_checked == 4096

    def test_wide_blocks_use_random_mode(self):
        a = _popcount_netlist(30, "fabp")
        b = _popcount_netlist(30, "tree")
        result = check_equivalence(a, b, random_vectors=5000, seed=3)
        assert result
        assert result.mode == "random"
        assert result.vectors_checked == 5000

    def test_self_equivalence(self):
        a = _popcount_netlist(8, "fabp")
        b = _popcount_netlist(8, "fabp")
        assert check_equivalence(a, b)


class TestSymbolicMode:
    def test_proof_without_vectors(self):
        """18 inputs is beyond comfortable exhaustion but every score
        cone fits the truth-table limit: symbolic mode proves it."""
        a = _popcount_netlist(18, "fabp")
        b = _popcount_netlist(18, "tree")
        result = check_equivalence(a, b, mode="symbolic")
        assert result
        assert result.mode == "symbolic"
        assert result.proven
        assert result.vectors_checked == 0
        assert result.miss_probability_bound == 0.0

    def test_exhaustive_agreement(self):
        a = _popcount_netlist(10, "fabp")
        b = _popcount_netlist(10, "tree")
        assert check_equivalence(a, b, mode="symbolic")
        assert check_equivalence(a, b, mode="exhaustive")

    def test_mutation_refuted_with_minimized_counterexample(self):
        a = _popcount_netlist(18, "tree")
        b = _popcount_netlist(18, "fabp")
        lut = b.luts[0]
        b.luts[0] = dataclasses.replace(lut, init=lut.init ^ (1 << 5))
        result = check_equivalence(a, b, mode="symbolic")
        assert not result
        assert result.proven  # a refutation is still a proof
        example = result.counterexample
        assert example is not None
        assert example.essential is not None
        # Only the mutated LUT's 6-input cone matters; the other 12
        # inputs are reported as don't-cares.
        assert len(example.essential) <= 6
        assert set(example.essential) <= set(example.inputs)
        # The witness is concrete: re-simulation confirms the mismatch.
        assert example.outputs_a != example.outputs_b

    def test_intractable_cone_raises(self):
        a = _popcount_netlist(30, "fabp")
        b = _popcount_netlist(30, "tree")
        with pytest.raises(SymbolicLimitError):
            check_equivalence(a, b, mode="symbolic")

    def test_auto_prefers_symbolic_over_random(self):
        a = _popcount_netlist(18, "fabp")
        b = _popcount_netlist(18, "tree")
        # Widen past EXHAUSTIVE_LIMIT by padding unused inputs so auto
        # cannot exhaust, then check it lands on the symbolic proof.
        for netlist in (a, b):
            netlist.add_input_bus("pad", 8)
        result = check_equivalence(a, b)
        assert result.mode == "symbolic"
        assert result.proven

    def test_to_dict_payload(self):
        a = _popcount_netlist(8, "fabp")
        b = _popcount_netlist(8, "tree")
        record = check_equivalence(a, b, mode="symbolic").to_dict()
        assert record["equivalent"] is True
        assert record["proven"] is True
        assert record["counterexample"] is None


class TestRandomModeBound:
    def test_duplicates_removed_and_bound_reported(self):
        """At width 2 a 1000-vector request collapses to <= 4 unique
        vectors, and the bound comes from the effective count."""
        a = _popcount_netlist(2, "fabp")
        b = _popcount_netlist(2, "tree")
        result = check_equivalence(a, b, mode="random", random_vectors=1000)
        assert result
        assert result.vectors_checked == 1000  # requested samples drawn
        assert result.unique_vectors == 4  # effective, deduplicated
        assert result.miss_probability_bound == 0.0  # 4/4 minterms covered
        assert not result.proven  # sampling never claims a proof

    def test_wide_block_bound_uses_unique_count(self):
        a = _popcount_netlist(30, "fabp")
        b = _popcount_netlist(30, "tree")
        result = check_equivalence(a, b, mode="random", random_vectors=2000, seed=7)
        assert result.unique_vectors <= 2000
        expected = 1.0 - result.unique_vectors * (0.5**30)
        assert result.miss_probability_bound == pytest.approx(expected)


class TestInequivalent:
    def _xor_netlists(self, broken: bool):
        a = Netlist("good")
        x = a.add_input_bus("v", 2)
        a.set_output("y", a.add_lut(x, lut_init(lambda p, q: p ^ q, 2)))
        b = Netlist("maybe")
        x = b.add_input_bus("v", 2)
        function = (lambda p, q: p | q) if broken else (lambda p, q: p ^ q)
        b.set_output("y", b.add_lut(x, lut_init(function, 2)))
        return a, b

    def test_counterexample_found(self):
        a, b = self._xor_netlists(broken=True)
        result = check_equivalence(a, b)
        assert not result
        example = result.counterexample
        assert example is not None
        # OR and XOR differ exactly on (1, 1).
        assert example.inputs == {"v[0]": 1, "v[1]": 1}
        assert "differs" in str(example)

    def test_equal_variant_passes(self):
        a, b = self._xor_netlists(broken=False)
        assert check_equivalence(a, b)

    def test_single_minterm_bug_caught_exhaustively(self):
        a = Netlist("a")
        bits = a.add_input_bus("v", 10)
        a.set_output("y", a.add_lut(bits[:6], lut_init(lambda *b: sum(b) & 1, 6)))
        b = Netlist("b")
        bits_b = b.add_input_bus("v", 10)
        init = lut_init(lambda *bb: sum(bb) & 1, 6) ^ (1 << 17)  # flip one minterm
        b.set_output("y", b.add_lut(bits_b[:6], init))
        assert not check_equivalence(a, b)


class TestValidation:
    def test_port_mismatch(self):
        a = Netlist()
        a.set_output("y", a.add_lut((a.add_input("p"),), 0b10))
        b = Netlist()
        b.set_output("y", b.add_lut((b.add_input("q"),), 0b10))
        with pytest.raises(EquivalenceError, match="input ports"):
            check_equivalence(a, b)

    def test_no_shared_outputs(self):
        a = Netlist()
        a.set_output("x", a.add_lut((a.add_input("p"),), 0b10))
        b = Netlist()
        b.set_output("y", b.add_lut((b.add_input("p"),), 0b10))
        with pytest.raises(EquivalenceError, match="no output ports"):
            check_equivalence(a, b)

    def test_sequential_rejected(self):
        a = Netlist()
        p = a.add_input("p")
        a.set_output("y", a.add_ff(p))
        b = Netlist()
        p = b.add_input("p")
        b.set_output("y", b.add_ff(p))
        with pytest.raises(EquivalenceError, match="combinational"):
            check_equivalence(a, b)

    def test_unknown_mode(self):
        a, b = Netlist(), Netlist()
        a.set_output("y", a.add_lut((a.add_input("p"),), 0b10))
        b.set_output("y", b.add_lut((b.add_input("p"),), 0b10))
        with pytest.raises(ValueError, match="mode"):
            check_equivalence(a, b, mode="formal")
