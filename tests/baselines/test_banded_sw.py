"""Tests for banded Smith-Waterman."""

import pytest

from repro.baselines.scoring import NucleotideScoring, ProteinScoring
from repro.baselines.smith_waterman import (
    smith_waterman_banded,
    sw_score,
)
from repro.seq.generate import random_protein, random_rna


class TestBandedCorrectness:
    def test_full_band_equals_full_sw(self, rng):
        for _ in range(5):
            a = random_protein(15, rng=rng).letters
            b = random_protein(25, rng=rng).letters
            full = sw_score(a, b)
            banded = smith_waterman_banded(a, b, band=50)
            assert banded == full

    def test_band_is_lower_bound(self, rng):
        scoring = ProteinScoring()
        for _ in range(5):
            a = random_protein(20, rng=rng).letters
            b = random_protein(40, rng=rng).letters
            full = sw_score(a, b, scoring)
            for band in (0, 2, 5, 10):
                assert smith_waterman_banded(a, b, scoring, band=band) <= full

    def test_band_monotone(self, rng):
        a = random_protein(20, rng=rng).letters
        b = random_protein(40, rng=rng).letters
        scores = [smith_waterman_banded(a, b, band=k) for k in (0, 2, 4, 8, 16, 64)]
        assert scores == sorted(scores)

    def test_anchored_diagonal_recovers_planted(self, rng):
        """With the right diagonal, a narrow band finds the full score."""
        a = random_protein(30, rng=rng).letters
        prefix = random_protein(50, rng=rng).letters
        b = prefix + a + random_protein(20, rng=rng).letters
        full = sw_score(a, b)
        anchored = smith_waterman_banded(a, b, band=3, diagonal=50)
        assert anchored == full

    def test_wrong_diagonal_misses(self, rng):
        a = random_protein(30, rng=rng).letters
        b = random_protein(50, rng=rng).letters + a
        hit = smith_waterman_banded(a, b, band=2, diagonal=50)
        miss = smith_waterman_banded(a, b, band=2, diagonal=0)
        assert hit > miss

    def test_nucleotide_mode(self, rng):
        a = random_rna(30, rng=rng).letters
        full = sw_score(a, a, NucleotideScoring())
        banded = smith_waterman_banded(a, a, NucleotideScoring(), band=1)
        assert banded == full  # self-alignment sits on the main diagonal

    def test_ungapped_mode(self, rng):
        a = random_rna(20, rng=rng).letters
        b = random_rna(40, rng=rng).letters
        banded = smith_waterman_banded(a, b, band=100, mode="ungapped")
        from repro.baselines.smith_waterman import smith_waterman

        assert banded == smith_waterman(a, b, mode="ungapped", traceback=False).score

    def test_validation(self):
        with pytest.raises(ValueError):
            smith_waterman_banded("AC", "AC", band=-1)
        with pytest.raises(ValueError):
            smith_waterman_banded("AC", "AC", mode="global")

    def test_empty_inputs(self):
        assert smith_waterman_banded("", "ACGU", band=3) == 0
