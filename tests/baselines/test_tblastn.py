"""Tests for the TBLASTN-like pipeline."""

import numpy as np
import pytest

from repro.baselines.tblastn import Tblastn, TblastnParams, tblastn_search
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import encode_protein_as_rna


def _plant(query, rng, reference_length=3000, position=None, codon_usage="uniform"):
    region = encode_protein_as_rna(query, rng=rng, codon_usage=codon_usage).letters
    background = random_rna(reference_length, rng=rng).letters
    if position is None:
        position = reference_length // 2
    reference = background[:position] + region + background[position + len(region) :]
    return reference, position


class TestPlantedRecovery:
    def test_forward_frame_recovery(self, rng):
        query = random_protein(40, rng=rng)
        for frame_shift in (0, 1, 2):
            reference, position = _plant(query, rng, position=900 + frame_shift)
            result = Tblastn(query).search(reference)
            assert result.best is not None
            assert abs(result.best.nucleotide_start - (900 + frame_shift)) <= 3
            assert result.best.frame == (900 + frame_shift) % 3

    def test_reverse_strand_recovery(self, rng):
        query = random_protein(40, rng=rng)
        region = encode_protein_as_rna(query, rng=rng).letters
        background = random_rna(2000, rng=rng).letters
        from repro.seq.sequence import RnaSequence

        rc = RnaSequence(region).reverse_complement().letters
        reference = background[:700] + rc + background[700 + len(rc) :]
        result = Tblastn(query).search(reference)
        assert result.best is not None
        assert result.best.frame >= 3  # reverse frame
        hit_region = range(690, 700 + len(rc) + 10)
        assert result.best.nucleotide_start in hit_region

    def test_mutated_homolog_recovery(self, rng):
        from repro.seq.mutate import mutate_protein

        query = random_protein(50, rng=rng)
        mutated = mutate_protein(query, substitution_rate=0.15, rng=rng)
        from repro.seq.sequence import ProteinSequence

        reference, position = _plant(ProteinSequence(mutated.letters), rng)
        result = Tblastn(query).search(reference)
        assert result.best is not None
        assert abs(result.best.nucleotide_start - position) <= 6

    def test_homolog_with_indel_recovered(self, rng):
        """The gapped stage tolerates indels — FabP's key difference."""
        from repro.seq.mutate import mutate_protein
        from repro.seq.sequence import ProteinSequence

        query = random_protein(60, rng=rng)
        mutated = mutate_protein(query, indel_events=1, rng=rng)
        reference, position = _plant(ProteinSequence(mutated.letters), rng)
        result = Tblastn(query).search(reference)
        assert result.best is not None
        assert abs(result.best.nucleotide_start - position) <= 12

    def test_identity_reported(self, rng):
        query = random_protein(30, rng=rng)
        reference, _ = _plant(query, rng)
        result = Tblastn(query).search(reference)
        assert result.best.identity > 0.9


class TestPipelineBehaviour:
    def test_counters_populated(self, rng):
        query = random_protein(30, rng=rng)
        reference, _ = _plant(query, rng)
        result = Tblastn(query).search(reference)
        assert result.word_hits > 0
        assert result.two_hit_seeds > 0
        assert result.ungapped_extensions >= result.two_hit_seeds * 0 + 1

    def test_two_hit_reduces_extensions(self, rng):
        query = random_protein(30, rng=rng)
        reference, _ = _plant(query, rng)
        strict = Tblastn(query, TblastnParams(two_hit=True)).search(reference)
        loose = Tblastn(query, TblastnParams(two_hit=False)).search(reference)
        assert strict.ungapped_extensions < loose.ungapped_extensions
        # Sensitivity on the planted region must not be lost.
        assert strict.best is not None and loose.best is not None

    def test_random_reference_few_hits(self, rng):
        query = random_protein(40, rng=rng)
        reference = random_rna(3000, rng=rng)
        result = Tblastn(query).search(reference)
        # Background noise may produce a couple of weak HSPs, not a flood.
        assert len(result.hsps) <= 4

    def test_hsps_sorted_by_score(self, rng):
        query = random_protein(40, rng=rng)
        reference, _ = _plant(query, rng)
        scores = [h.score for h in Tblastn(query).search(reference).hsps]
        assert scores == sorted(scores, reverse=True)

    def test_search_database(self, rng):
        query = random_protein(25, rng=rng)
        references = [random_rna(1000, rng=rng) for _ in range(3)]
        results = Tblastn(query).search_database(references)
        assert len(results) == 3

    def test_convenience_function(self, rng):
        query = random_protein(25, rng=rng)
        reference, _ = _plant(query, rng)
        result = tblastn_search(query, reference, min_score=25)
        assert result.best is not None

    def test_str_rendering(self, rng):
        query = random_protein(25, rng=rng)
        reference, _ = _plant(query, rng)
        best = Tblastn(query).search(reference).best
        assert "HSP" in str(best)
