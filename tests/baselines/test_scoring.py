"""Tests for the scoring schemes."""

import numpy as np
import pytest

from repro.baselines.scoring import (
    BLOSUM62,
    GapPenalty,
    NucleotideScoring,
    ProteinScoring,
)
from repro.seq import alphabet


class TestBlosum62:
    def test_symmetric(self):
        table = ProteinScoring().table
        assert np.array_equal(table, table.T)

    def test_diagonal_positive(self):
        table = ProteinScoring().table
        assert (np.diag(table) > 0).all()

    def test_known_values(self):
        assert BLOSUM62[("W", "W")] == 11
        assert BLOSUM62[("A", "A")] == 4
        assert BLOSUM62[("I", "L")] == 2
        assert BLOSUM62[("W", "F")] == 1
        assert BLOSUM62[("E", "Q")] == 2
        assert BLOSUM62[("C", "C")] == 9

    def test_stop_penalized(self):
        scorer = ProteinScoring()
        assert scorer.score("*", "A") == -4
        assert scorer.score("*", "*") == 1

    def test_identity_scores_beat_substitutions(self):
        scorer = ProteinScoring()
        for aa in alphabet.AMINO_ACIDS:
            self_score = scorer.score(aa, aa)
            for other in alphabet.AMINO_ACIDS:
                if other != aa:
                    assert scorer.score(aa, other) < self_score

    def test_encode(self):
        scorer = ProteinScoring()
        codes = scorer.encode("MFW")
        assert codes.shape == (3,)
        assert scorer.table[codes[0], codes[0]] == scorer.score("M", "M")


class TestNucleotideScoring:
    def test_match_mismatch(self):
        scorer = NucleotideScoring(match=2, mismatch=-3)
        assert scorer.score("A", "A") == 2
        assert scorer.score("A", "G") == -3

    def test_table_shape(self):
        table = NucleotideScoring().table
        assert table.shape == (4, 4)
        assert (np.diag(table) == 2).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            NucleotideScoring(match=0)
        with pytest.raises(ValueError):
            NucleotideScoring(mismatch=1)

    def test_t_aliases_u(self):
        """DNA letters score like their RNA counterparts (mixed inputs)."""
        scorer = NucleotideScoring(match=2, mismatch=-3)
        assert scorer.score("T", "U") == 2
        assert scorer.score("U", "T") == 2
        assert scorer.score("T", "A") == -3
        assert list(scorer.encode("ACGT")) == list(scorer.encode("ACGU"))

    def test_mixed_dna_rna_alignment(self):
        from repro.baselines.smith_waterman import sw_score

        assert sw_score("ACGU", "ACGT", NucleotideScoring()) == 8


class TestGapPenalty:
    def test_cost(self):
        gap = GapPenalty(11, 1)
        assert gap.cost(0) == 0
        assert gap.cost(1) == 12
        assert gap.cost(5) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            GapPenalty(-1, 1)
