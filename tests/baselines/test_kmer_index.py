"""Tests for the BLAST-style k-mer neighborhood index."""

import pytest

from repro.baselines.kmer_index import KmerIndex, WordHit
from repro.baselines.scoring import ProteinScoring
from repro.seq.generate import random_protein


class TestConstruction:
    def test_exact_words_always_present(self, rng):
        query = random_protein(20, rng=rng).letters
        index = KmerIndex(query, k=3, threshold=11)
        scorer = ProteinScoring()
        for pos in range(len(query) - 2):
            word = query[pos : pos + 3]
            self_score = sum(scorer.score(c, c) for c in word)
            if self_score >= 11:
                assert pos in index.lookup(word)

    def test_neighborhood_threshold_respected(self, rng):
        query = random_protein(10, rng=rng).letters
        index = KmerIndex(query, k=3, threshold=12)
        scorer = ProteinScoring()
        for word, positions in index._table.items():
            for pos in positions:
                kmer = query[pos : pos + 3]
                score = sum(scorer.score(a, b) for a, b in zip(kmer, word))
                assert score >= 12

    def test_higher_threshold_smaller_table(self, rng):
        query = random_protein(15, rng=rng).letters
        low = KmerIndex(query, threshold=10)
        high = KmerIndex(query, threshold=14)
        assert len(high) <= len(low)

    def test_stop_kmers_skipped(self):
        index = KmerIndex("MF*WK", k=3)
        # Words overlapping the stop contribute nothing.
        for word, positions in index._table.items():
            for pos in positions:
                assert "*" not in "MF*WK"[pos : pos + 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            KmerIndex("MF", k=3)
        with pytest.raises(ValueError):
            KmerIndex("MFW", k=0)

    def test_stats(self, rng):
        query = random_protein(12, rng=rng).letters
        stats = KmerIndex(query).stats()
        assert stats["query_kmers"] == 10
        assert stats["entries"] >= stats["query_kmers"] - query.count("*")


class TestScan:
    def test_self_scan_hits_diagonal_zero(self, rng):
        query = random_protein(15, rng=rng).letters
        index = KmerIndex(query, threshold=11)
        hits = list(index.scan(query))
        diagonal_zero = [h for h in hits if h.diagonal == 0]
        assert len(diagonal_zero) >= 1

    def test_scan_positions_valid(self, rng):
        query = random_protein(12, rng=rng).letters
        subject = random_protein(60, rng=rng).letters
        index = KmerIndex(query)
        for hit in index.scan(subject):
            assert subject[hit.subject_pos : hit.subject_pos + 3] == hit.word
            assert 0 <= hit.query_pos <= len(query) - 3

    def test_no_hits_on_short_subject(self, rng):
        index = KmerIndex(random_protein(10, rng=rng).letters)
        assert list(index.scan("MF")) == []

    def test_wordhit_diagonal(self):
        hit = WordHit(query_pos=5, subject_pos=12, word="MFW")
        assert hit.diagonal == 7
