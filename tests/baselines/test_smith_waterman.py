"""Tests for Smith-Waterman local alignment."""

import pytest

from repro.baselines.scoring import GapPenalty, NucleotideScoring, ProteinScoring
from repro.baselines.smith_waterman import (
    LocalAlignment,
    smith_waterman,
    sw_score,
    ungapped_extend,
)
from repro.seq.generate import random_protein, random_rna


def _brute_force_ungapped(a: str, b: str, scoring) -> int:
    """Oracle: best ungapped local alignment by enumeration."""
    best = 0
    for i in range(len(a)):
        for j in range(len(b)):
            run = 0
            for k in range(min(len(a) - i, len(b) - j)):
                run += scoring.score(a[i + k], b[j + k])
                best = max(best, run)
                if run < 0:
                    break
    return best


class TestBasics:
    def test_identical_sequences(self):
        result = smith_waterman("ACGU", "ACGU")
        assert result.score == 8  # 4 matches x 2
        assert result.identity == 1.0
        assert result.aligned_a == "ACGU"

    def test_empty_input(self):
        assert smith_waterman("", "ACGU").score == 0

    def test_no_similarity(self):
        result = smith_waterman("AAAA", "GGGG", NucleotideScoring())
        assert result.score == 0

    def test_local_region_extraction(self):
        result = smith_waterman("UUUUACGUACGUUUUU"[4:12], "ACGUACGU")
        assert result.score == 16

    def test_substring_found(self):
        result = smith_waterman("ACGU", "UUACGUUU")
        assert result.b_start == 2
        assert result.b_end == 6

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            smith_waterman("AC", "AC", mode="global")

    def test_score_only_skips_traceback(self):
        full = smith_waterman("ACGUACGU", "ACGAACGU")
        fast = smith_waterman("ACGUACGU", "ACGAACGU", traceback=False)
        assert full.score == fast.score
        assert fast.aligned_a == ""
        assert sw_score("ACGUACGU", "ACGAACGU") == full.score


class TestGaps:
    def test_gap_recovered(self):
        # One deletion in b; affine penalties make a single gap optimal.
        a = "ACGUACGUAC"
        b = "ACGUCGUAC"  # A deleted at position 4
        result = smith_waterman(a, b, NucleotideScoring(match=2, mismatch=-3, gap=GapPenalty(3, 1)))
        assert "-" in result.aligned_b
        assert result.gaps == 1

    def test_affine_prefers_one_long_gap(self):
        a = "AAAAACCCCGGGGG"
        b = "AAAAAGGGGG"
        scoring = NucleotideScoring(match=2, mismatch=-3, gap=GapPenalty(4, 1))
        result = smith_waterman(a, b, scoring)
        # One 4-long gap: 10 matches x 2 - (4 + 4x1) = 12, beating the best
        # ungapped segment (10).
        assert result.score == 12
        assert result.aligned_b.count("-") == 4

    def test_linear_mode(self):
        a = "AAAAACCCCGGGGG"
        b = "AAAAAGGGGG"
        scoring = NucleotideScoring(match=2, mismatch=-3, gap=GapPenalty(4, 1))
        linear = smith_waterman(a, b, scoring, mode="linear")
        affine = smith_waterman(a, b, scoring, mode="affine")
        # Linear pays 1/gap residue: 20 - 4 = 16 > affine's 12.
        assert linear.score == 16
        assert linear.score > affine.score

    def test_ungapped_mode_matches_oracle(self, rng):
        scoring = ProteinScoring()
        for _ in range(5):
            a = random_protein(12, rng=rng).letters
            b = random_protein(30, rng=rng).letters
            got = smith_waterman(a, b, scoring, mode="ungapped").score
            assert got == _brute_force_ungapped(a, b, scoring)

    def test_gapped_at_least_ungapped(self, rng):
        scoring = ProteinScoring()
        for _ in range(5):
            a = random_protein(10, rng=rng).letters
            b = random_protein(40, rng=rng).letters
            assert (
                smith_waterman(a, b, scoring).score
                >= smith_waterman(a, b, scoring, mode="ungapped").score
            )


class TestTracebackConsistency:
    """The recovered path must actually achieve the reported score."""

    @staticmethod
    def _rescore(result, scoring, gap):
        total = 0
        run_a = run_b = 0
        for x, y in zip(result.aligned_a, result.aligned_b):
            if x == "-":
                run_a += 1
                if run_b:
                    total -= gap.cost(run_b)
                    run_b = 0
            elif y == "-":
                run_b += 1
                if run_a:
                    total -= gap.cost(run_a)
                    run_a = 0
            else:
                if run_a:
                    total -= gap.cost(run_a)
                    run_a = 0
                if run_b:
                    total -= gap.cost(run_b)
                    run_b = 0
                total += scoring.score(x, y)
        total -= gap.cost(run_a) + gap.cost(run_b)
        return total

    def test_affine_path_achieves_score(self, rng):
        scoring = ProteinScoring()
        for _ in range(10):
            a = random_protein(20, rng=rng).letters
            b = random_protein(50, rng=rng).letters
            result = smith_waterman(a, b, scoring)
            if result.score == 0:
                continue
            rescored = self._rescore(result, scoring, scoring.gap)
            assert rescored == result.score, (result.aligned_a, result.aligned_b)

    def test_nucleotide_path_achieves_score(self, rng):
        scoring = NucleotideScoring(gap=GapPenalty(3, 1))
        for _ in range(10):
            a = random_rna(30, rng=rng).letters
            b = random_rna(60, rng=rng).letters
            result = smith_waterman(a, b, scoring)
            if result.score == 0:
                continue
            assert self._rescore(result, scoring, scoring.gap) == result.score


class TestProteinAlignment:
    def test_blosum_self_alignment(self):
        result = smith_waterman("MFWKL", "MFWKL")
        expected = sum(ProteinScoring().score(aa, aa) for aa in "MFWKL")
        assert result.score == expected

    def test_default_scoring_picks_protein(self):
        result = smith_waterman("MFWKLE", "MFWKLE")
        assert result.score > 12  # BLOSUM identity scores, not match=2

    def test_alignment_rows_equal_length(self, rng):
        a = random_protein(15, rng=rng).letters
        b = random_protein(40, rng=rng).letters
        result = smith_waterman(a, b)
        assert len(result.aligned_a) == len(result.aligned_b)

    def test_alignment_consistent_with_ranges(self, rng):
        a = random_protein(15, rng=rng).letters
        b = random_protein(40, rng=rng).letters
        result = smith_waterman(a, b)
        assert result.aligned_a.replace("-", "") == a[result.a_start : result.a_end]
        assert result.aligned_b.replace("-", "") == b[result.b_start : result.b_end]

    def test_str(self):
        assert "score" in str(smith_waterman("MF", "MF"))


class TestUngappedExtend:
    def test_extends_to_full_match(self):
        scoring = NucleotideScoring()
        a = "ACGUACGU"
        b = "ACGUACGU"
        score, start, end = ungapped_extend(a, b, 3, 3, 2, scoring)
        assert (start, end) == (0, 8)
        assert score == 16

    def test_x_drop_stops_extension(self):
        scoring = NucleotideScoring(match=2, mismatch=-3)
        a = "ACGU" + "GGGG" * 3
        b = "ACGU" + "CCCC" * 3
        score, start, end = ungapped_extend(a, b, 0, 0, 4, scoring, x_drop=5)
        assert end <= 7  # extension abandoned quickly
        assert score == 8

    def test_invalid_seed(self):
        with pytest.raises(ValueError):
            ungapped_extend("AC", "AC", 0, 0, 0, NucleotideScoring())
