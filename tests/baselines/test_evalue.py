"""Tests for Karlin-Altschul statistics."""

import math

import pytest

from repro.baselines.evalue import (
    BLOSUM62_UNGAPPED_LAMBDA,
    KarlinAltschulParams,
    StatisticsError,
    default_protein_params,
    expected_score,
    rank_hsps,
    relative_entropy,
    solve_lambda,
)
from repro.baselines.scoring import GapPenalty, ProteinScoring


class TestLambda:
    def test_matches_published_blosum62_value(self):
        # NCBI reports lambda = 0.3176 for ungapped BLOSUM62.
        assert solve_lambda() == pytest.approx(BLOSUM62_UNGAPPED_LAMBDA, rel=0.01)

    def test_expected_score_negative(self):
        assert expected_score() < 0

    def test_lambda_satisfies_definition(self):
        from repro.seq.generate import UNIPROT_AA_FREQUENCIES

        scoring = ProteinScoring()
        lam = solve_lambda(scoring)
        total = sum(
            pa * pb * math.exp(lam * scoring.score(a, b))
            for a, pa in UNIPROT_AA_FREQUENCIES.items()
            for b, pb in UNIPROT_AA_FREQUENCIES.items()
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_uniform_composition_also_solvable(self):
        uniform = {aa: 0.05 for aa in "ACDEFGHIKLMNPQRSTVWY"}
        lam = solve_lambda(frequencies=uniform)
        assert 0.1 < lam < 0.6

    def test_positive_expectation_rejected(self):
        # A matrix with all-positive scores has no valid lambda.
        cheerful = {(a, b): 1 for a in "ACDEFGHIKLMNPQRSTVWY*" for b in "ACDEFGHIKLMNPQRSTVWY*"}
        scoring = ProteinScoring(matrix=cheerful)
        with pytest.raises(StatisticsError):
            solve_lambda(scoring)

    def test_relative_entropy_positive(self):
        assert relative_entropy() > 0


class TestEvalues:
    @pytest.fixture(scope="class")
    def params(self):
        return default_protein_params()

    def test_evalue_decreases_with_score(self, params):
        e1 = params.evalue(30, 100, 1_000_000)
        e2 = params.evalue(60, 100, 1_000_000)
        assert e2 < e1

    def test_evalue_scales_with_search_space(self, params):
        small = params.evalue(40, 100, 1_000_000)
        big = params.evalue(40, 100, 2_000_000)
        assert big == pytest.approx(2 * small)

    def test_bit_score_monotone(self, params):
        assert params.bit_score(60) > params.bit_score(30)

    def test_pvalue_bounds(self, params):
        p = params.pvalue(40, 100, 1_000_000)
        assert 0.0 <= p <= 1.0

    def test_pvalue_approximates_small_evalue(self, params):
        e = params.evalue(80, 100, 1_000_000)
        assert e < 0.01
        assert params.pvalue(80, 100, 1_000_000) == pytest.approx(e, rel=0.01)

    def test_score_for_evalue_roundtrip(self, params):
        score = params.score_for_evalue(1e-3, 100, 1_000_000)
        assert params.evalue(score, 100, 1_000_000) <= 1e-3
        assert params.evalue(score - 1, 100, 1_000_000) > 1e-3

    def test_input_validation(self, params):
        with pytest.raises(ValueError):
            params.evalue(40, 0, 100)
        with pytest.raises(ValueError):
            params.score_for_evalue(0.0, 100, 100)


class TestRanking:
    def test_rank_hsps_orders_by_evalue(self, rng):
        from repro.baselines.tblastn import Tblastn
        from repro.seq.generate import random_protein, random_rna
        from repro.workloads.builder import encode_protein_as_rna

        query = random_protein(40, rng=rng)
        region = encode_protein_as_rna(query, rng=rng).letters
        background = random_rna(4000, rng=rng).letters
        reference = background[:2000] + region + background[2000:]
        result = Tblastn(query).search(reference)
        ranked = rank_hsps(result.hsps, len(query), len(reference))
        evalues = [e for _, e in ranked]
        assert evalues == sorted(evalues)
        # The planted hit must be the most significant.
        assert abs(ranked[0][0].nucleotide_start - 2000) <= 3
        assert evalues[0] < 1e-6
