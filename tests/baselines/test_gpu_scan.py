"""Tests for the SIMT execution model of the CUDA baseline."""

import numpy as np
import pytest

from repro.baselines.gpu_scan import (
    INSTRUCTIONS_PER_COMPARISON,
    ISSUE_RATE,
    GpuLaunchConfig,
    GpuScanKernel,
)
from repro.core.aligner import align
from repro.perf.platforms import GTX_1080TI
from repro.seq.generate import random_protein, random_rna


class TestFunctionalEquivalence:
    def test_hits_match_golden(self, rng):
        for _ in range(4):
            query = random_protein(int(rng.integers(3, 15)), rng=rng)
            reference = random_rna(int(rng.integers(500, 4000)), rng=rng)
            kernel = GpuScanKernel(query, min_identity=0.6)
            result = kernel.run(reference)
            expected = align(query, reference, threshold=kernel.threshold)
            assert result.hits == expected.hits

    def test_tile_boundaries_covered(self, rng):
        """A hit exactly at a block-tile boundary must not be lost."""
        from repro.workloads.builder import encode_protein_as_rna

        query = random_protein(10, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        config = GpuLaunchConfig(threads_per_block=64, positions_per_thread=2)
        boundary = config.tile_positions  # position of the second tile start
        background = random_rna(2000, rng=rng).letters
        for position in (boundary - 1, boundary, boundary + 1):
            reference = (
                background[:position] + region + background[position + len(region) :]
            )
            kernel = GpuScanKernel(query, min_identity=0.99, config=config)
            result = kernel.run(reference)
            assert any(h.position == position for h in result.hits)

    def test_small_reference(self, rng):
        query = random_protein(5, rng=rng)
        result = GpuScanKernel(query, threshold=0).run("ACGU" * 4)
        assert result.blocks == 1
        assert len(result.hits) == 16 - 15 + 1

    def test_query_longer_than_reference(self, rng):
        query = random_protein(10, rng=rng)
        result = GpuScanKernel(query, threshold=0).run("ACGU")
        assert result.blocks == 0
        assert result.hits == ()


class TestExecutionModel:
    def test_instruction_count_scales(self, rng):
        query = random_protein(10, rng=rng)
        kernel = GpuScanKernel(query, min_identity=0.9)
        short = kernel.run(random_rna(1000, rng=rng))
        long_ = kernel.run(random_rna(4000, rng=rng))
        assert long_.instructions > 3 * short.instructions

    def test_global_traffic_near_reference_size(self, rng):
        query = random_protein(5, rng=rng)
        reference = random_rna(100_000, rng=rng)
        result = GpuScanKernel(query, min_identity=0.9).run(reference)
        packed = 100_000 // 4
        # Tiling halo inflates traffic, but only by a small factor.
        assert packed <= result.global_bytes <= 2 * packed

    def test_constants_consistent_with_closed_form(self):
        """The SIMT model and perf.gpu must encode the same machine."""
        assert ISSUE_RATE / INSTRUCTIONS_PER_COMPARISON == pytest.approx(
            GTX_1080TI.comparisons_per_core_cycle, rel=0.01
        )

    def test_estimate_matches_closed_form_model(self, rng):
        """Two derivations of GPU time agree at scale (overhead-dominated
        small cases excluded)."""
        from repro.perf.gpu import gpu_seconds
        from repro.perf.workload import Workload

        query = random_protein(50, rng=rng)
        reference = random_rna(200_000, rng=rng)
        result = GpuScanKernel(query, min_identity=0.9).run(reference)
        closed = gpu_seconds(Workload(50, 200_000))
        assert result.estimated_seconds == pytest.approx(closed, rel=0.15)

    def test_result_str(self, rng):
        query = random_protein(5, rng=rng)
        result = GpuScanKernel(query, min_identity=0.9).run(random_rna(500, rng=rng))
        assert "GpuScanResult" in str(result)
