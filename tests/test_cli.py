"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def synthetic_files(tmp_path):
    db = tmp_path / "db.fasta"
    queries = tmp_path / "q.fasta"
    code = main(
        [
            "generate",
            "--queries", "2",
            "--length", "20",
            "--references", "2",
            "--reference-length", "4000",
            "--seed", "5",
            "--out-db", str(db),
            "--out-queries", str(queries),
        ]
    )
    assert code == 0
    return db, queries


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--device", "asic"])


class TestEncode:
    def test_inline_query(self, capsys):
        assert main(["encode", "--query", "MFSR*"]) == 0
        out = capsys.readouterr().out
        assert "AUG-UU(C/U)" in out
        assert "hex bytes" in out

    def test_bits_flag(self, capsys):
        assert main(["encode", "--query", "M", "--bits"]) == 0
        out = capsys.readouterr().out
        assert "000000 001100 001000" in out

    def test_missing_query_errors(self):
        with pytest.raises(SystemExit):
            main(["encode"])


class TestSearch:
    def test_finds_planted(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = main(
            [
                "search",
                "--query-file", str(queries),
                "--database", str(db),
                "--min-identity", "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 hits >=" in out
        assert "synthetic_ref_" in out

    def test_generate_reports_plantings(self, synthetic_files, capsys):
        # (fixture already ran generate; re-run to capture output)
        db, queries = synthetic_files
        assert db.exists() and queries.exists()

    def test_both_strands_flag(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = main(
            [
                "search",
                "--query-file", str(queries),
                "--database", str(db),
                "--both-strands",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strand" in out

    def test_rescore_flag(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = main(
            [
                "search",
                "--query-file", str(queries),
                "--database", str(db),
                "--rescore",
                "--max-evalue", "1e-2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "E-value" in out


class TestModelCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "FabP-50" in out and "FabP-250" in out
        assert "GB/s" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "speedup_vs_cpu12" in out

    def test_crossover(self, capsys):
        assert main(["crossover"]) == 0
        out = capsys.readouterr().out
        assert "crossover at" in out

    def test_crossover_large_device(self, capsys):
        assert main(["crossover", "--device", "large"]) == 0
        out = capsys.readouterr().out
        assert "Large" in out

    def test_stats(self, capsys):
        assert main(["stats", "--query", "MFWKLE", "--reference-length", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "null score" in out
        assert "suggested threshold" in out

    def test_export_rtl(self, tmp_path, capsys):
        code = main(
            ["export-rtl", "--query", "MFW", "--out", str(tmp_path), "--loadable"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fmax" in out
        files = list(tmp_path.glob("*.v"))
        assert len(files) == 1
        assert "FDRE" in files[0].read_text()

    def test_compose(self, capsys):
        assert main(["compose", "--query", "MFW"]) == 0
        out = capsys.readouterr().out
        assert "Met (M)" in out
        assert "expected null" in out

    def test_plan(self, capsys):
        code = main(["plan", "--queries", "30x10", "250x2", "--boards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "queries/hour" in out
        assert "FabP vs GPU" in out

    def test_plan_bad_spec(self):
        with pytest.raises(SystemExit, match="LENxCOUNT"):
            main(["plan", "--queries", "banana"])


class TestLintExitCodes:
    """The documented lint contract: 0 clean, 1 findings, 2 usage error."""

    def test_clean_run_exits_zero(self, capsys):
        # Demo designs carry a known benign warning; without --strict,
        # warnings do not fail the run.
        assert main(["lint"]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_strict_promotes_warnings_to_exit_one(self, capsys):
        assert main(["lint", "--strict"]) == 1
        capsys.readouterr()

    def test_strict_clean_after_suppression_exits_zero(self, capsys):
        # Suppressing the one known warning restores a clean strict run.
        assert main(["lint", "--strict", "--ignore", "NL003"]) == 0
        capsys.readouterr()

    def test_usage_error_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--no-such-flag"])
        assert excinfo.value.code == 2

    def test_symbolic_json_carries_timing_payload(self, capsys):
        import json

        assert main(["lint", "--symbolic", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        timing = payload["timing"]
        assert "fabp_popcount_750" in timing or any(
            "750" in name for name in timing
        ), sorted(timing)
        record = next(iter(timing.values()))
        assert "fmax_mhz" in record
        assert "excluded_false_pins" in record


class TestCheckExitCodes:
    """The documented check contract: 0 clean, 1 findings, 2 usage error.

    Self-hosting (``check --strict`` over the installed tree) exiting 0 is
    the engine's acceptance gate; the exit-1 path runs over a planted dirty
    tree so the gate is demonstrably capable of failing.
    """

    def test_self_hosting_strict_exits_zero(self, capsys):
        assert main(["check", "--strict"]) == 0
        assert "0 errors, 0 warnings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "host"
        dirty.mkdir()
        (dirty / "bad.py").write_text(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert main(["check", "--root", str(dirty)]) == 1
        assert "RC006" in capsys.readouterr().out

    def test_ignore_restores_clean_exit(self, tmp_path, capsys):
        dirty = tmp_path / "host"
        dirty.mkdir()
        (dirty / "bad.py").write_text(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert main(["check", "--root", str(dirty), "--ignore", "RC006"]) == 0
        capsys.readouterr()

    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert main(["check", "--root", str(tmp_path / "nowhere")]) == 2
        capsys.readouterr()

    def test_usage_error_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--no-such-flag"])
        assert excinfo.value.code == 2

    def test_json_artifact_carries_rule_catalogue(self, tmp_path, capsys):
        import json

        out = tmp_path / "check.json"
        assert main(["check", "--strict", "--format", "json",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        ids = {entry["rule"] for entry in payload["rules"]}
        assert {"RC001", "RC008", "OB001", "OB004"} <= ids
        assert payload["summary"]["errors"] == 0


class TestProve:
    def test_proofs_hold(self, capsys):
        code = main(["prove", "--widths", "36", "--equivalence-width", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "20 amino acids verified" in out
        assert "proven equivalent (symbolic)" in out
        assert "verdict: all proofs hold" in out

    def test_self_test_refutes_seeded_mutations(self, capsys):
        code = main(
            [
                "prove",
                "--widths", "36",
                "--equivalence-width", "12",
                "--self-test",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "refuted with counterexamples" in out

    def test_json_artifact(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "proofs.json"
        code = main(
            [
                "prove",
                "--widths", "36", "72",
                "--equivalence-width", "12",
                "--format", "json",
                "--out", str(artifact),
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        assert len(payload["comparators"]) == 20
        assert [r["netlist"] for r in payload["ranges"]] == [
            "popcounter_fabp_36",
            "popcounter_fabp_72",
        ]
        assert payload["equivalence"]["proven"] is True


class TestCheckPatternsAndSarif:
    DIRTY = (
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except Exception:\n"
        "        pass\n"
    )

    def _dirty_root(self, tmp_path):
        dirty = tmp_path / "host"
        dirty.mkdir()
        (dirty / "bad.py").write_text(self.DIRTY)
        return dirty

    def test_ignore_accepts_ranges(self, tmp_path, capsys):
        root = self._dirty_root(tmp_path)
        assert main(["check", "--root", str(root),
                     "--ignore", "RC001-RC008"]) == 0
        capsys.readouterr()

    def test_ignore_accepts_globs(self, tmp_path, capsys):
        root = self._dirty_root(tmp_path)
        assert main(["check", "--root", str(root), "--ignore", "RC00*"]) == 0
        capsys.readouterr()

    def test_unmatched_ignore_pattern_warns(self, tmp_path, capsys):
        root = tmp_path / "host"
        root.mkdir()
        (root / "ok.py").write_text("x = 1\n")
        assert main(["check", "--root", str(root), "--ignore", "ZZ999"]) == 0
        assert "matches no known rule" in capsys.readouterr().err

    def test_sarif_artifact_lists_all_rule_families(self, tmp_path, capsys):
        import json

        out = tmp_path / "check.sarif"
        assert main(["check", "--strict", "--format", "sarif",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = {entry["id"] for entry in run["tool"]["driver"]["rules"]}
        assert {"RC001", "OB001", "KC001", "KC008"} <= rule_ids
        assert run["results"] == []

    def test_sarif_results_carry_findings(self, tmp_path, capsys):
        import json

        root = self._dirty_root(tmp_path)
        out = tmp_path / "dirty.sarif"
        assert main(["check", "--root", str(root), "--format", "sarif",
                     "--out", str(out)]) == 1
        capsys.readouterr()
        payload = json.loads(out.read_text())
        results = payload["runs"][0]["results"]
        assert any(r["ruleId"] == "RC006" for r in results)
        assert all(r["level"] in ("error", "warning", "note") for r in results)


class TestLintSarif:
    def test_lint_emits_valid_sarif(self, capsys):
        import json

        assert main(["lint", "--query", "MKV", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["tool"]["driver"]["name"] == "fabp-repro"


class TestProveKernel:
    def test_kernel_artifact(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "kernel_proofs.json"
        code = main(["prove", "kernel", "--format", "json",
                     "--out", str(artifact)])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "fabp-kernel-proof/v1"
        assert payload["ok"] is True
        assert payload["lane_budget"]["fits"] is True
        assert set(payload["engines"]) == {
            "bitscore", "bitscore_batch", "packed", "diagonal", "vectorized",
            "naive",
        }
        assert payload["budget_fits_all_accumulators"] is True

    def test_kernel_self_test_refutes_mutations(self, capsys):
        assert main(["prove", "kernel", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "self-test: seeded overflow + undersized budget refuted" in out
        assert "verdict: kernel contracts hold" in out

    def test_kernel_text_names_every_engine(self, capsys):
        assert main(["prove", "kernel"]) == 0
        out = capsys.readouterr().out
        assert "lane budget: popcount(750)" in out
        for engine in ("bitscore", "packed", "diagonal", "vectorized", "naive"):
            assert f"engine {engine}:" in out


class TestBench:
    def test_tiny_bench_writes_artifact(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "BENCH_scoring.json"
        code = main(
            [
                "bench",
                "--residues", "10",
                "--reference-length", "20000",
                "--scan-references", "2",
                "--scan-reference-length", "10000",
                "--workers", "1",
                "--repeats", "1",
                "--out", str(artifact),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Score-engine benchmark" in out
        payload = json.loads(artifact.read_text())
        engines = {r["engine"] for r in payload["records"]}
        assert {"naive", "vectorized", "bitscore", "parallel-scan"} <= engines
        for record in payload["records"]:
            assert {"engine", "L_q", "L_r", "n_refs", "wall_s", "positions_per_s"} <= set(record)
        assert payload["speedups"]["bitscore_vs_naive"] > 0

    def test_min_speedup_gate_failure(self, capsys):
        # An impossible bar makes the gate trip: the bench still completed,
        # so per the exit-code contract this is degradation (3), not fatal (1).
        code = main(
            [
                "bench",
                "--residues", "8",
                "--reference-length", "8000",
                "--scan-references", "2",
                "--scan-reference-length", "4000",
                "--workers", "1",
                "--repeats", "1",
                "--out", "",
                "--min-speedup", "1e12",
            ]
        )
        assert code == 3
        assert "FAIL" in capsys.readouterr().out

    def test_quick_flag(self, tmp_path, capsys):
        artifact = tmp_path / "quick.json"
        code = main(["bench", "--quick", "--out", str(artifact), "--min-speedup", "5"])
        assert code == 0
        assert artifact.exists()
        assert "speedup gate" in capsys.readouterr().out


class TestScan:
    """The scan subcommand and its exit-code contract: 0/3/4/1."""

    def scan(self, db, queries, *extra):
        return main(
            [
                "scan",
                "--query-file", str(queries),
                "--database", str(db),
                "--min-identity", "0.9",
                "--workers", "1",
                "--chunk-size", "1",
                "--backoff", "0.01",
                *extra,
            ]
        )

    def test_clean_scan_exits_zero(self, synthetic_files, capsys):
        db, queries = synthetic_files
        assert self.scan(db, queries) == 0
        out = capsys.readouterr().out
        assert "[clean]" in out
        assert "synthetic_ref_" in out

    def test_recovered_faults_still_exit_zero(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = self.scan(db, queries, "--inject-faults", "0:raise,1:corrupt")
        assert code == 0
        out = capsys.readouterr().out
        assert "[clean]" in out
        assert "retries=2" in out

    def test_degraded_scan_exits_three(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = self.scan(
            db, queries, "--inject-faults", "0:raise:always", "--retries", "1"
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "DEGRADED" in out

    def test_no_degrade_makes_exhaustion_fatal(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = self.scan(
            db, queries,
            "--inject-faults", "0:raise:always",
            "--retries", "1",
            "--no-degrade",
        )
        assert code == 1
        assert "fatal:" in capsys.readouterr().err

    def test_missing_database_is_fatal(self, synthetic_files, capsys):
        _db, queries = synthetic_files
        code = self.scan("/no/such/file.fasta", queries)
        assert code == 1
        assert "fatal:" in capsys.readouterr().err

    def test_report_json_artifact(self, synthetic_files, tmp_path, capsys):
        import json

        db, queries = synthetic_files
        artifact = tmp_path / "report.json"
        code = self.scan(
            db, queries,
            "--inject-faults", "0:corrupt",
            "--report-json", str(artifact),
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["version"] == 1
        assert payload["degraded"] is False
        assert len(payload["queries"]) == 2
        report = payload["queries"][0]["report"]
        assert report["counters"]["corrupt"] == 1
        assert report["clean"] is True

    def test_session_matches_per_query_scans(self, synthetic_files, capsys):
        """--session: same hit table as the per-query path, one warm runtime."""
        db, queries = synthetic_files
        assert self.scan(db, queries) == 0
        plain = capsys.readouterr().out
        assert self.scan(db, queries, "--session") == 0
        warm = capsys.readouterr().out
        assert "session:" in warm
        assert "engine=bitscore_batch" in warm

        def hit_rows(out):
            return [
                line.split() for line in out.splitlines()
                if line.strip().startswith("query_")
                and "hits" not in line
            ]

        assert hit_rows(warm) == hit_rows(plain)

    def test_session_rejects_fault_injection(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = self.scan(
            db, queries, "--session", "--inject-faults", "0:raise"
        )
        assert code == 1
        assert "fault injection" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, synthetic_files, tmp_path, capsys):
        db, queries = synthetic_files
        ckpt = tmp_path / "ckpt"
        assert self.scan(db, queries, "--checkpoint", str(ckpt)) == 0
        capsys.readouterr()
        # Resume under an always-crashing plan: only checkpointed chunks
        # can complete it cleanly, proving nothing was rescored.
        code = self.scan(
            db, queries,
            "--checkpoint", str(ckpt),
            "--resume",
            "--inject-faults", "0:crash:always,1:crash:always",
            "--retries", "0",
        )
        assert code == 0
        assert "2 from checkpoint" in capsys.readouterr().out

    def test_quarantined_records_are_reported(self, synthetic_files, capsys):
        import pathlib

        db, queries = synthetic_files
        dirty = pathlib.Path(str(db) + ".dirty.fasta")
        dirty.write_text(db.read_text() + ">\nACGT\n>trailing_empty\n")
        code = self.scan(dirty, queries)
        assert code == 0
        out = capsys.readouterr().out
        assert "quarantined 2 bad records" in out

    def test_on_bad_record_raise_is_fatal(self, synthetic_files, capsys):
        import pathlib

        db, queries = synthetic_files
        dirty = pathlib.Path(str(db) + ".dirty.fasta")
        dirty.write_text(db.read_text() + ">\nACGT\n")
        code = self.scan(dirty, queries, "--on-bad-record", "raise")
        assert code == 1
        assert "fatal:" in capsys.readouterr().err


class TestScanShards:
    """``--shards``: the supervised multi-shard path and its exit 4."""

    def scan(self, db, queries, *extra):
        return main(
            [
                "scan",
                "--query-file", str(queries),
                "--database", str(db),
                "--min-identity", "0.9",
                "--backoff", "0.01",
                *extra,
            ]
        )

    def test_sharded_matches_plain_scan(self, synthetic_files, capsys):
        db, queries = synthetic_files
        assert self.scan(db, queries, "--workers", "1") == 0
        plain = capsys.readouterr().out
        assert self.scan(db, queries, "--shards", "2") == 0
        sharded = capsys.readouterr().out
        assert "shards: 2 supervised runtimes" in sharded
        assert "mode=sharded" in sharded

        def hit_rows(out):
            return [
                line.split() for line in out.splitlines()
                if line.strip().startswith("query_") and "hits" not in line
            ]

        assert hit_rows(sharded) == hit_rows(plain)

    def test_dead_shard_exits_four(self, synthetic_files, tmp_path, capsys):
        import json

        db, queries = synthetic_files
        artifact = tmp_path / "report.json"
        code = self.scan(
            db, queries,
            "--shards", "2",
            "--shard-faults", "shard:0:crash:0:always",
            "--retries", "1",
            "--report-json", str(artifact),
        )
        assert code == 4
        assert "DEAD SHARD 0" in capsys.readouterr().out
        payload = json.loads(artifact.read_text())
        assert payload["dead_shards"] is True
        shards = payload["queries"][0]["report"]["shards"]
        assert shards[0]["status"] == "dead"

    def test_shards_and_session_are_exclusive(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = self.scan(db, queries, "--shards", "2", "--session")
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_shards_reject_chunk_fault_plans(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = self.scan(
            db, queries, "--shards", "2", "--inject-faults", "0:raise"
        )
        assert code == 1
        assert "--shard-faults" in capsys.readouterr().err

    def test_shard_faults_require_shards(self, synthetic_files, capsys):
        db, queries = synthetic_files
        code = self.scan(db, queries, "--shard-faults", "shard:0:crash")
        assert code == 1
        assert "requires --shards" in capsys.readouterr().err


class TestObsCli:
    """--metrics-json/--trace-json and the obs summarize subcommand."""

    def scan(self, db, queries, *extra):
        return main(
            [
                "scan",
                "--query-file", str(queries),
                "--database", str(db),
                "--min-identity", "0.9",
                "--workers", "1",
                "--chunk-size", "1",
                *extra,
            ]
        )

    def test_scan_writes_metrics_and_trace(self, synthetic_files, tmp_path, capsys):
        import json

        from repro import obs

        db, queries = synthetic_files
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        code = self.scan(
            db, queries, "--metrics-json", str(metrics), "--trace-json", str(trace)
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {metrics}" in out
        assert f"wrote {trace}" in out
        payload = json.loads(metrics.read_text())
        assert payload["schema"] == "fabp-metrics"
        names = {m["name"] for m in payload["metrics"]}
        assert "fabp_stage_seconds" in names
        doc = json.loads(trace.read_text())
        assert doc["otherData"]["generator"] == "repro.obs"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        # The CLI run must leave the layer off for the rest of the process.
        assert not obs.enabled()

    def test_scan_without_flags_leaves_obs_off(self, synthetic_files, capsys):
        from repro import obs

        db, queries = synthetic_files
        obs.reset()
        assert self.scan(db, queries) == 0
        capsys.readouterr()
        assert not obs.enabled()
        assert obs.REGISTRY.families() == []

    def test_report_json_reports_are_schema_v3(self, synthetic_files, tmp_path, capsys):
        import json

        db, queries = synthetic_files
        artifact = tmp_path / "report.json"
        assert self.scan(db, queries, "--report-json", str(artifact)) == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        report = payload["queries"][0]["report"]
        assert report["version"] == 3
        assert "execute" in report["metrics"]["stage_seconds"]
        assert report["shards"] == []  # single-shard scans carry no shard rows

    def test_bench_writes_metrics(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "bench_metrics.json"
        code = main(
            [
                "bench",
                "--residues", "8",
                "--reference-length", "8000",
                "--scan-references", "2",
                "--scan-reference-length", "4000",
                "--workers", "1",
                "--repeats", "1",
                "--out", "",
                "--metrics-json", str(metrics),
            ]
        )
        assert code == 0
        capsys.readouterr()
        names = {m["name"] for m in json.loads(metrics.read_text())["metrics"]}
        assert "fabp_bench_positions_per_s" in names
        assert "fabp_score_seconds" in names

    def test_summarize_each_artifact_kind(self, synthetic_files, tmp_path, capsys):
        db, queries = synthetic_files
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.json"
        code = self.scan(
            db, queries,
            "--metrics-json", str(metrics),
            "--trace-json", str(trace),
            "--report-json", str(report),
        )
        assert code == 0
        capsys.readouterr()

        assert main(["obs", "summarize", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "metrics artifact" in out
        assert "Stage breakdown (fabp_stage_seconds)" in out

        assert main(["obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace artifact" in out
        assert "Span breakdown (traceEvents)" in out

        assert main(["obs", "summarize", str(report)]) == 0
        out = capsys.readouterr().out
        assert "scan-report artifact" in out
        assert "attempt:ok" in out

    def test_summarize_json_format(self, synthetic_files, tmp_path, capsys):
        import json

        db, queries = synthetic_files
        metrics = tmp_path / "metrics.json"
        assert self.scan(db, queries, "--metrics-json", str(metrics)) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(metrics), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "metrics"
        assert payload["artifact"]["schema"] == "fabp-metrics"

    def test_summarize_missing_file_is_fatal(self, capsys):
        assert main(["obs", "summarize", "/no/such/artifact.json"]) == 1
        assert "fatal:" in capsys.readouterr().err

    def test_summarize_unknown_payload_is_fatal(self, tmp_path, capsys):
        alien = tmp_path / "alien.json"
        alien.write_text('{"hello": "world"}')
        assert main(["obs", "summarize", str(alien)]) == 1
        assert "fatal:" in capsys.readouterr().err

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["obs"])
        assert excinfo.value.code == 2


class TestServeContract:
    def test_database_is_required(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve"])
        assert excinfo.value.code == 2

    def test_unknown_engine_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["serve", "--database", "db.fasta", "--engine", "warp"]
            )
        assert excinfo.value.code == 2

    def test_missing_database_file_is_fatal(self, capsys):
        assert main(["serve", "--database", "/no/such/db.fasta"]) == 1
        assert "fatal:" in capsys.readouterr().err

    def test_defaults_follow_the_documented_contract(self):
        args = build_parser().parse_args(["serve", "--database", "db.fasta"])
        assert (args.host, args.port) == ("127.0.0.1", 8765)
        assert (args.max_queue, args.max_batch) == (64, 16)
        assert args.cache_entries == 256
        assert args.shards is None and args.engine is None
