"""Tests for the 6-bit instruction encoding (§III-B)."""

import numpy as np
import pytest

from repro.core import backtranslate as bt
from repro.core import encoding as enc
from repro.seq import alphabet
from repro.seq.generate import random_protein


class TestElementEncoding:
    def test_type_i_layout(self):
        # Exact 'G' (code 10): opcode 00, bits2-3 = hi,lo, config 00.
        instruction = enc.encode_element(bt.ExactElement("G"))
        assert enc.instruction_bit_string(instruction) == "001000"

    def test_type_ii_layout(self):
        # Condition A/G has code 01.
        element = bt.ConditionalElement(frozenset({"A", "G"}))
        instruction = enc.encode_element(element)
        assert enc.instruction_bit_string(instruction) == "010100"

    def test_type_iii_opcode_first_bit(self):
        for function in bt.FUNCTIONS_BY_CODE:
            instruction = enc.encode_element(bt.DependentElement(function))
            assert instruction & 1 == 1

    def test_type_iii_bit3_zero(self):
        # §III-B: "FabP sets the fourth bit to zero for Type III".
        for function in bt.FUNCTIONS_BY_CODE:
            instruction = enc.encode_element(bt.DependentElement(function))
            assert (instruction >> 3) & 1 == 0

    def test_types_i_ii_config_zero(self):
        # §III-B: config bits are 00 for Types I and II.
        for letter in alphabet.RNA_NUCLEOTIDES:
            instruction = enc.encode_element(bt.ExactElement(letter))
            assert (instruction >> 4) == 0
        for letters in bt.CONDITION_CODES:
            instruction = enc.encode_element(bt.ConditionalElement(letters))
            assert (instruction >> 4) == 0

    def test_dependent_configs_differ_by_source(self):
        stop = enc.encode_element(bt.DependentElement(bt.FUNCTION_STOP)) >> 4
        leu = enc.encode_element(bt.DependentElement(bt.FUNCTION_LEU)) >> 4
        arg = enc.encode_element(bt.DependentElement(bt.FUNCTION_ARG)) >> 4
        any_ = enc.encode_element(bt.DependentElement(bt.FUNCTION_ANY)) >> 4
        assert len({stop, leu, arg}) == 3  # three distinct mux sources
        assert any_ == 0  # D needs no dependency


class TestRoundTrip:
    @pytest.mark.parametrize("amino", alphabet.AMINO_ACIDS_WITH_STOP)
    def test_pattern_roundtrip(self, amino):
        pattern = bt.BACK_TRANSLATION_TABLE[amino]
        for element in pattern.elements:
            decoded = enc.decode_element(enc.encode_element(element))
            assert decoded == element

    def test_query_roundtrip(self, rng):
        protein = random_protein(30, rng=rng)
        encoded = enc.encode_query(protein)
        decoded = encoded.decode()
        expected = tuple(
            element
            for pattern in bt.back_translate(protein)
            for element in pattern.elements
        )
        assert decoded == expected


class TestDecodeValidation:
    def test_rejects_out_of_range(self):
        with pytest.raises(enc.EncodingError):
            enc.decode_element(64)
        with pytest.raises(enc.EncodingError):
            enc.decode_element(-1)

    def test_rejects_type_i_with_config(self):
        # Type I with nonzero config bits encodes nothing valid.
        bad = 0b010000  # bits: b0..b5 = 0,0,0,0,1,0 -> config 01 on Type I
        with pytest.raises(enc.EncodingError, match="config"):
            enc.decode_element(bad)

    def test_rejects_type_iii_with_set_bit3(self):
        # b0=1 (Type III), F=11 (D), b3=1 -> invalid.
        bad = 0b001111
        with pytest.raises(enc.EncodingError, match="b3"):
            enc.decode_element(bad)

    def test_rejects_wrong_function_config(self):
        good = enc.encode_element(bt.DependentElement(bt.FUNCTION_STOP))
        bad = good ^ (1 << 5)  # flip a config bit
        with pytest.raises(enc.EncodingError, match="config"):
            enc.decode_element(bad)

    def test_every_valid_instruction_decodes(self):
        valid = set()
        for letter in alphabet.RNA_NUCLEOTIDES:
            valid.add(enc.encode_element(bt.ExactElement(letter)))
        for letters in bt.CONDITION_CODES:
            valid.add(enc.encode_element(bt.ConditionalElement(letters)))
        for function in bt.FUNCTIONS_BY_CODE:
            valid.add(enc.encode_element(bt.DependentElement(function)))
        assert len(valid) == 12  # 4 exact + 4 conditional + 4 dependent
        for instruction in valid:
            enc.decode_element(instruction)  # must not raise


class TestEncodedQuery:
    def test_three_instructions_per_residue(self):
        encoded = enc.encode_query("MFW")
        assert len(encoded) == 9
        assert encoded.num_residues == 3

    def test_storage_bits(self):
        # §III-B: 6 bits per element.
        encoded = enc.encode_query("MFW")
        assert encoded.storage_bits() == 54

    def test_as_array_dtype(self):
        arr = enc.encode_query("MFW").as_array()
        assert arr.dtype == np.uint8
        assert arr.shape == (9,)
        assert arr.max() < 64

    def test_length_mismatch_rejected(self):
        from repro.seq.sequence import ProteinSequence

        with pytest.raises(enc.EncodingError):
            enc.EncodedQuery(ProteinSequence("MF"), (0, 0, 0))

    def test_paper_met_encoding(self):
        # Met = AUG: three Type I instructions.
        encoded = enc.encode_query("M")
        strings = [enc.instruction_bit_string(i) for i in encoded.instructions]
        # A=00, U=11, G=10 in bits 2-3 (hi, lo).
        assert strings == ["000000", "001100", "001000"]

    def test_bit_string_validates(self):
        with pytest.raises(enc.EncodingError):
            enc.instruction_bit_string(100)
