"""Per-rule tests of the instruction-stream lint passes (repro.core.instr_lint).

Same discipline as tests/rtl/test_lint.py: every defect stream is built so
that exactly one rule fires, pinning detection and isolation.
"""

import pytest

from repro.core import backtranslate as bt
from repro.core import encoding as enc
from repro.core.instr_lint import INSTRUCTION_RULES, lint_instructions, lint_query
from repro.lint import Severity

PAD = enc.pad_instruction()


def rule_ids(report):
    return sorted(set(report.by_rule()))


def encoded_codon(amino):
    """The three instruction words of one residue."""
    return list(enc.encode_query(amino).instructions)


def first_undecodable_word():
    for value in range(64):
        try:
            enc.decode_element(value)
        except enc.EncodingError:
            return value
    pytest.skip("every 6-bit word decodes; IS002 cannot be exercised")


def dependent_word(offset):
    """An encodable Type III word whose function reads ``offset`` back."""
    for pattern in bt.BACK_TRANSLATION_TABLE.values():
        element = pattern.elements[2]
        if (
            isinstance(element, bt.DependentElement)
            and element.function.source_offset == offset
        ):
            return enc.encode_element(element)
    raise AssertionError(f"no table entry depends {offset} back")


def test_registry_has_all_documented_rules():
    expected = [f"IS00{i}" for i in range(1, 8)]
    assert list(INSTRUCTION_RULES.ids()) == expected


class TestCleanStreams:
    def test_encoded_queries_are_clean(self):
        for protein in ("M", "MFSR*", "ACDEFGHIKLMNPQRSTVWY", "W" * 30):
            report = lint_query(enc.encode_query(protein))
            assert report.clean, [str(f) for f in report.findings]

    def test_padded_tail_is_clean(self):
        stream = encoded_codon("MF") + [PAD] * 6
        assert lint_instructions(stream).clean

    def test_all_pad_stream_is_clean(self):
        # A stream of only pad codons has no "last real codon" to precede.
        assert lint_instructions([PAD] * 9).clean

    def test_encoded_small_protein_fixture_is_clean(self, encoded_small_protein):
        assert lint_query(encoded_small_protein).clean

    def test_lint_query_subject_names_the_protein(self):
        from repro.seq.sequence import ProteinSequence

        report = lint_query(enc.encode_query(ProteinSequence("MF", name="demo")))
        assert report.subject == "encoded:demo"


class TestIS001Range:
    @pytest.mark.parametrize("bad", [64, -1, 1 << 10])
    def test_out_of_range_word(self, bad):
        report = lint_instructions([bad, PAD, PAD])
        assert rule_ids(report) == ["IS001"]
        assert "instr[0]" in report.findings[0].location


class TestIS002Undecodable:
    def test_illegal_encoding(self):
        word = first_undecodable_word()
        report = lint_instructions([word, PAD, PAD])
        assert rule_ids(report) == ["IS002"]

    def test_out_of_range_not_double_reported(self):
        report = lint_instructions([64, PAD, PAD])
        assert "IS002" not in report.by_rule()


class TestIS003CrossCodon:
    def test_two_back_dependency_at_position_one(self):
        word = dependent_word(2)
        report = lint_instructions([PAD, word, PAD])
        # The semantic pass (IS007) independently corroborates IS003.
        assert rule_ids(report) == ["IS003", "IS007"]
        assert "codon boundary" in report.findings[0].message

    def test_one_back_dependency_at_position_zero(self):
        word = dependent_word(1)
        report = lint_instructions([word, PAD, PAD])
        assert rule_ids(report) == ["IS003", "IS007"]

    def test_dependencies_legal_at_position_two(self):
        stream = [PAD, PAD, dependent_word(2), PAD, PAD, dependent_word(1)]
        assert lint_instructions(stream).clean

    def test_always_match_function_is_position_free(self):
        # The D (FUNCTION_ANY) element reads nothing; it pads position 0.
        assert lint_instructions([PAD, PAD, PAD]).clean


class TestIS004InteriorPad:
    def test_pad_codon_before_real_codon(self):
        stream = [PAD] * 3 + encoded_codon("M")
        report = lint_instructions(stream)
        assert rule_ids(report) == ["IS004"]
        assert report.findings[0].severity == Severity.WARNING

    def test_trailing_pad_is_fine(self):
        stream = encoded_codon("M") + [PAD] * 3
        assert lint_instructions(stream).clean


class TestIS005Roundtrip:
    def test_encoder_drift_detected(self, monkeypatch):
        stream = encoded_codon("M")
        # Simulate encoder/decoder drift: re-encoding flips a bit.
        real = enc.encode_element
        monkeypatch.setattr(
            "repro.core.instr_lint.enc.encode_element",
            lambda element: real(element) ^ 0b100000,
        )
        report = lint_instructions(stream)
        assert rule_ids(report) == ["IS005"]
        assert len(report.findings) == len(stream)

    def test_no_drift_today(self):
        for value in range(64):
            try:
                element = enc.decode_element(value)
            except enc.EncodingError:
                continue
            assert enc.encode_element(element) == value


class TestIS006Ragged:
    def test_partial_codon_tail(self):
        stream = encoded_codon("M") + [encoded_codon("M")[0]]
        report = lint_instructions(stream)
        assert rule_ids(report) == ["IS006"]
        assert "multiple of 3" in report.findings[0].message

    def test_suggests_padding(self):
        report = lint_instructions([PAD])
        assert "pad_instruction" in report.findings[0].suggested_fix


class TestIS007SemanticElement:
    """IS003 reads the *declared* source offset; IS007 re-derives the
    dependency from the golden matching semantics via the abstract
    interpreter.  On today's ISA they corroborate each other — drift
    between the declared and actual look-back would split them."""

    def test_prev1_at_codon_position_zero(self):
        stream = encoded_codon("M") + [dependent_word(1), PAD, PAD]
        report = lint_instructions(stream, rules=["IS007"])
        (finding,) = report.findings
        assert finding.severity == Severity.WARNING
        assert "codon position 0" in finding.message
        assert "prev1" in finding.message

    def test_prev2_at_codon_position_one(self):
        stream = encoded_codon("M")
        stream[1] = dependent_word(2)
        report = lint_instructions(stream, rules=["IS007"])
        (finding,) = report.findings
        assert "prev2" in finding.message

    def test_corroborates_structural_is003(self):
        stream = encoded_codon("M") + [dependent_word(1), PAD, PAD]
        assert rule_ids(lint_instructions(stream)) == ["IS003", "IS007"]

    def test_encoder_output_is_silent(self):
        stream = encoded_codon("ACDEFGHIKLMNPQRSTVWY")
        assert lint_instructions(stream, rules=["IS007"]).clean

    def test_out_of_range_left_to_is001(self):
        assert lint_instructions([64, 65, 66], rules=["IS007"]).clean

    def test_invalid_encoding_left_to_is002(self):
        word = first_undecodable_word()
        assert lint_instructions([word] * 3, rules=["IS007"]).clean


class TestSuppression:
    def test_ignore(self):
        stream = [PAD] * 3 + encoded_codon("M")
        assert lint_instructions(stream, ignore=("IS004",)).clean

    def test_rules_subset(self):
        report = lint_instructions([64], rules=["IS006"])
        assert rule_ids(report) == ["IS006"]
