"""Tests for the codon table (paper Fig. 2)."""

import pytest

from repro.core import codons
from repro.seq import alphabet


class TestTableShape:
    def test_sixty_four_codons(self):
        assert len(codons.CODON_TABLE) == 64
        assert set(codons.CODON_TABLE) == set(codons.all_codons())

    def test_three_stop_codons(self):
        assert codons.STOP_CODONS == {"UAA", "UAG", "UGA"}

    def test_every_amino_acid_covered(self):
        encoded = set(codons.CODON_TABLE.values())
        assert encoded == set(alphabet.AMINO_ACIDS_WITH_STOP)

    def test_degeneracy_totals(self):
        assert sum(codons.DEGENERACY.values()) == 64

    def test_known_degeneracies(self):
        assert codons.DEGENERACY["M"] == 1  # Met: AUG only
        assert codons.DEGENERACY["W"] == 1  # Trp: UGG only
        assert codons.DEGENERACY["L"] == 6
        assert codons.DEGENERACY["R"] == 6
        assert codons.DEGENERACY["S"] == 6
        assert codons.DEGENERACY["*"] == 3


class TestKnownCodons:
    @pytest.mark.parametrize(
        "codon,amino",
        [
            ("AUG", "M"),
            ("UGG", "W"),
            ("UUU", "F"),
            ("UUC", "F"),
            ("UUA", "L"),
            ("CUG", "L"),
            ("AUA", "I"),
            ("AGA", "R"),
            ("CGC", "R"),
            ("AGC", "S"),
            ("UCA", "S"),
            ("UAA", "*"),
            ("GGG", "G"),
        ],
    )
    def test_codon_assignment(self, codon, amino):
        assert codons.CODON_TABLE[codon] == amino

    def test_codons_for_sorted_and_consistent(self):
        for amino, codon_list in codons.CODONS_FOR.items():
            assert list(codon_list) == sorted(codon_list)
            for codon in codon_list:
                assert codons.CODON_TABLE[codon] == amino

    def test_codons_for_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown amino acid"):
            codons.codons_for("B")


class TestPaperCodonSets:
    def test_serine_reduced_to_ucn_box(self):
        # The paper's Fig. 2 discussion drops AGU/AGC for Ser.
        assert codons.paper_codons_for("S") == ("UCA", "UCC", "UCG", "UCU")

    def test_other_amino_acids_unchanged(self):
        for amino in alphabet.AMINO_ACIDS_WITH_STOP:
            if amino == "S":
                continue
            assert codons.paper_codons_for(amino) == codons.codons_for(amino)


class TestPositionLetters:
    def test_leucine_first_positions(self):
        assert codons.position_letters(codons.codons_for("L"), 0) == {"U", "C"}

    def test_stop_second_positions(self):
        assert codons.position_letters(codons.codons_for("*"), 1) == {"A", "G"}

    def test_invalid_position(self):
        with pytest.raises(ValueError):
            codons.position_letters(("AUG",), 3)
