"""Unit tests for the bit-parallel SWAR scoring engine."""

import numpy as np
import pytest

from repro.core import bitscore
from repro.core.aligner import alignment_scores, alignment_scores_naive
from repro.core.encoding import encode_query, pad_instruction
from repro.seq.generate import random_protein, random_rna
from repro.seq.packing import codes_from_text


def _codes(rng, length):
    return codes_from_text(random_rna(length, rng=rng).letters)


class TestPacking:
    def test_pack_row_is_lsb_first(self):
        bits = np.zeros(70, dtype=np.uint8)
        bits[0] = bits[65] = 1
        words = bitscore.pack_row(bits)
        assert int(words[0]) == 1
        assert int(words[1]) == 2
        assert words.size == 3  # ceil(70/64) + 1 pad word

    def test_shifted_row_crosses_word_boundaries(self):
        bits = np.zeros(130, dtype=np.uint8)
        positions = [0, 63, 64, 100, 129]
        bits[positions] = 1
        words = bitscore.pack_row(bits, pad_words=3)
        for shift in (0, 1, 63, 64, 65, 100, 129):
            out = bitscore.shifted_row(words, shift, 2)
            expected = np.zeros(128, dtype=np.uint8)
            for p in positions:
                if 0 <= p - shift < 128:
                    expected[p - shift] = 1
            got = np.unpackbits(out.view(np.uint8), bitorder="little", count=128)
            assert np.array_equal(got, expected), shift


class TestVerticalCounter:
    def test_counts_match_column_sums(self, rng):
        rows = rng.integers(0, 2, size=(13, 100)).astype(np.uint8)
        counter = bitscore.VerticalCounter(2)
        for row in rows:
            counter.add(bitscore.pack_row(row, pad_words=0)[:2])
        assert np.array_equal(counter.decode(100), rows.sum(axis=0))

    def test_add_pair_equals_two_adds(self, rng):
        rows = rng.integers(0, 2, size=(8, 64)).astype(np.uint8)
        paired = bitscore.VerticalCounter(1)
        single = bitscore.VerticalCounter(1)
        for i in range(0, 8, 2):
            paired.add_pair(
                bitscore.pack_row(rows[i], pad_words=0),
                bitscore.pack_row(rows[i + 1], pad_words=0),
            )
        for row in rows:
            single.add(bitscore.pack_row(row, pad_words=0))
        assert np.array_equal(paired.decode(64), single.decode(64))


class TestMatchBytes:
    def test_rows_cover_distinct_instructions_only(self, rng):
        encoded = encode_query("MMMM")  # heavy instruction reuse
        rows, element_rows = bitscore.match_bytes(
            encoded.as_array(), _codes(rng, 50)
        )
        assert rows.shape[0] == len(set(encoded.instructions))
        assert element_rows.shape == (12,)

    def test_rows_agree_with_comparator(self, rng):
        from repro.core import comparator as cmp

        encoded = encode_query("LRS*")
        codes = _codes(rng, 40)
        rows, element_rows = bitscore.match_bytes(encoded.as_array(), codes)
        for i, instruction in enumerate(encoded.instructions):
            for p in range(codes.size):
                prev1 = int(codes[p - 1]) if p >= 1 else 0
                prev2 = int(codes[p - 2]) if p >= 2 else 0
                expected = cmp.instruction_matches(
                    instruction, int(codes[p]), prev1, prev2
                )
                assert bool(rows[element_rows[i], p]) == expected


class TestEngines:
    @pytest.mark.parametrize("method", ["packed", "diagonal", None])
    def test_matches_naive_on_random_workloads(self, rng, method):
        for _ in range(6):
            query = random_protein(int(rng.integers(1, 10)), rng=rng)
            codes = _codes(rng, int(rng.integers(30, 300)))
            encoded = encode_query(query)
            expected = alignment_scores_naive(encoded, codes)
            got = bitscore.scores(encoded.as_array(), codes, method=method)
            assert got.dtype == np.int32
            assert np.array_equal(got, expected)

    @pytest.mark.parametrize("method", ["packed", "diagonal"])
    def test_type_iii_heavy_queries(self, rng, method):
        for letters in ("LRSLRS*", "LLLLLLLL", "RRRR", "***"):
            encoded = encode_query(letters)
            codes = _codes(rng, 250)
            assert np.array_equal(
                bitscore.scores(encoded.as_array(), codes, method=method),
                alignment_scores_naive(encoded, codes),
            )

    def test_query_longer_than_reference(self):
        encoded = encode_query("MFWMFW")
        codes = codes_from_text("ACGU")
        assert bitscore.scores(encoded.as_array(), codes).size == 0
        assert bitscore.packed_scores(encoded.as_array(), codes).size == 0
        assert bitscore.diagonal_scores(encoded.as_array(), codes).size == 0

    def test_reference_shorter_than_lookback(self):
        # 1- and 2-nt references exercise the missing-lookback edge.
        pad = np.asarray([pad_instruction()], dtype=np.uint8)
        for text in ("A", "GU"):
            codes = codes_from_text(text)
            got = bitscore.scores(pad, codes, method="packed")
            assert np.array_equal(got, np.ones(codes.size, dtype=np.int32))

    def test_empty_instruction_stream(self):
        codes = codes_from_text("ACGUA")
        empty = np.zeros(0, dtype=np.uint8)
        assert np.array_equal(
            bitscore.packed_scores(empty, codes), np.zeros(6, dtype=np.int32)
        )
        assert np.array_equal(
            bitscore.diagonal_scores(empty, codes), np.zeros(6, dtype=np.int32)
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            bitscore.scores(
                encode_query("M").as_array(), codes_from_text("ACGU"), method="simd"
            )

    def test_long_query_crosses_shift_words(self, rng):
        # > 64 elements forces multi-word shifts in the packed path.
        query = random_protein(30, rng=rng)  # 90 elements
        codes = _codes(rng, 400)
        encoded = encode_query(query)
        assert np.array_equal(
            bitscore.packed_scores(encoded.as_array(), codes),
            alignment_scores_naive(encoded, codes),
        )


class TestAlignerDispatch:
    @pytest.mark.parametrize(
        "engine", ["bitscore", "packed", "diagonal", "vectorized", "naive"]
    )
    def test_all_engines_agree(self, rng, engine):
        query = random_protein(6, rng=rng)
        reference = random_rna(200, rng=rng)
        assert np.array_equal(
            alignment_scores(query, reference, engine=engine),
            alignment_scores_naive(query, reference),
        )

    def test_unknown_engine_rejected(self, rng):
        with pytest.raises(ValueError):
            alignment_scores("MF", random_rna(30, rng=rng), engine="fpga")
