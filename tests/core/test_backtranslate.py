"""Tests for back-translation pattern derivation (§III-A/III-B).

The central faithfulness invariant: every derived pattern admits *exactly*
the paper's codon set for its amino acid — no more, no less.
"""

import pytest

from repro.core import backtranslate as bt
from repro.core import codons
from repro.seq import alphabet


class TestDerivedPatternsMatchCodonTable:
    @pytest.mark.parametrize("amino", alphabet.AMINO_ACIDS_WITH_STOP)
    def test_pattern_admits_exactly_paper_codons(self, amino):
        pattern = bt.BACK_TRANSLATION_TABLE[amino]
        assert pattern.matched_codons() == set(codons.paper_codons_for(amino))

    @pytest.mark.parametrize("amino", alphabet.AMINO_ACIDS_WITH_STOP)
    def test_extended_patterns_cover_all_codons(self, amino):
        union = set()
        for pattern in bt.EXTENDED_TABLE[amino]:
            union |= pattern.matched_codons()
        assert union == set(codons.codons_for(amino))

    def test_only_serine_needs_two_patterns(self):
        multi = [a for a, ps in bt.EXTENDED_TABLE.items() if len(ps) > 1]
        assert multi == ["S"]


class TestPaperExamples:
    """The worked examples from §III-A."""

    def test_met_is_all_type_i(self):
        pattern = bt.BACK_TRANSLATION_TABLE["M"]
        assert all(isinstance(e, bt.ExactElement) for e in pattern.elements)
        assert str(pattern) == "AUG"

    def test_phe_is_uu_uc(self):
        pattern = bt.BACK_TRANSLATION_TABLE["F"]
        first, second, third = pattern.elements
        assert isinstance(first, bt.ExactElement) and first.nucleotide == "U"
        assert isinstance(second, bt.ExactElement) and second.nucleotide == "U"
        assert isinstance(third, bt.ConditionalElement)
        assert third.letters == {"U", "C"}

    def test_ile_third_is_not_g(self):
        pattern = bt.BACK_TRANSLATION_TABLE["I"]
        third = pattern.elements[2]
        assert isinstance(third, bt.ConditionalElement)
        assert third.letters == {"A", "C", "U"}

    def test_ser_is_ucd(self):
        pattern = bt.BACK_TRANSLATION_TABLE["S"]
        third = pattern.elements[2]
        assert isinstance(third, bt.DependentElement)
        assert third.function is bt.FUNCTION_ANY

    def test_leu_uses_function_01(self):
        pattern = bt.BACK_TRANSLATION_TABLE["L"]
        first, second, third = pattern.elements
        assert isinstance(first, bt.ConditionalElement) and first.letters == {"U", "C"}
        assert isinstance(second, bt.ExactElement) and second.nucleotide == "U"
        assert isinstance(third, bt.DependentElement)
        assert third.function is bt.FUNCTION_LEU
        assert third.function.code == 0b01

    def test_arg_uses_function_10(self):
        pattern = bt.BACK_TRANSLATION_TABLE["R"]
        first, second, third = pattern.elements
        assert isinstance(first, bt.ConditionalElement) and first.letters == {"A", "C"}
        assert isinstance(second, bt.ExactElement) and second.nucleotide == "G"
        assert third.function is bt.FUNCTION_ARG

    def test_stop_uses_function_00(self):
        pattern = bt.BACK_TRANSLATION_TABLE["*"]
        first, second, third = pattern.elements
        assert isinstance(first, bt.ExactElement) and first.nucleotide == "U"
        assert isinstance(second, bt.ConditionalElement) and second.letters == {"A", "G"}
        assert third.function is bt.FUNCTION_STOP

    def test_exactly_four_functions(self):
        codes = {f.code for f in bt.FUNCTIONS_BY_CODE}
        assert codes == {0, 1, 2, 3}
        names = {f.name for f in bt.FUNCTIONS_BY_CODE}
        assert names == {"STOP", "LEU", "ARG", "ANY"}


class TestDependentFunctions:
    def test_stop_semantics(self):
        # UAA/UAG allowed after A; only UGA after G.
        assert bt.FUNCTION_STOP.admissible(prev1="A", prev2="U") == {"A", "G"}
        assert bt.FUNCTION_STOP.admissible(prev1="G", prev2="U") == {"A"}

    def test_leu_semantics(self):
        assert bt.FUNCTION_LEU.admissible(prev1="U", prev2="C") == bt.ALL_NUCLEOTIDES
        assert bt.FUNCTION_LEU.admissible(prev1="U", prev2="U") == {"A", "G"}

    def test_arg_semantics(self):
        assert bt.FUNCTION_ARG.admissible(prev1="G", prev2="C") == bt.ALL_NUCLEOTIDES
        assert bt.FUNCTION_ARG.admissible(prev1="G", prev2="A") == {"A", "G"}

    def test_any_ignores_context(self):
        for prev1 in "ACGU":
            for prev2 in "ACGU":
                assert bt.FUNCTION_ANY.admissible(prev1, prev2) == bt.ALL_NUCLEOTIDES


class TestDerivation:
    def test_derive_rejects_inexpressible_set(self):
        # A codon set needing a dependency the hardware lacks.
        with pytest.raises(bt.PatternError):
            bt.derive_pattern("X", ("AUG", "GAU"))

    def test_derive_rejects_empty(self):
        with pytest.raises(bt.PatternError):
            bt.derive_pattern("X", ())

    def test_full_serine_is_inexpressible(self):
        # The reason the paper drops AGU/AGC: six codons over two boxes.
        with pytest.raises(bt.PatternError):
            bt.derive_pattern("S", codons.codons_for("S"))

    def test_conditional_element_validates_letter_set(self):
        with pytest.raises(bt.PatternError):
            bt.ConditionalElement(frozenset({"A", "U"}))


class TestBackTranslateApi:
    def test_paper_worked_query(self):
        # Q = Met-Phe-Ser-Arg-Stop (§III-B).
        rendered = bt.pattern_string("MFSR*")
        assert rendered == "AUG-UU(C/U)-UC(D)-(A/C)G(F:10)-U(A/G)(F:00)"

    def test_back_translate_length(self):
        assert len(bt.back_translate("MFW")) == 3

    def test_unknown_residue_raises(self):
        with pytest.raises(KeyError):
            bt.back_translate_extended("M")  # valid
            bt.BACK_TRANSLATION_TABLE["B"]

    def test_matches_codon_validates_length(self):
        with pytest.raises(ValueError):
            bt.BACK_TRANSLATION_TABLE["M"].matches_codon("AU")
