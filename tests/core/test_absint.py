"""Tests for the cross-layer abstract interpreter."""

import dataclasses

from repro.core import absint
from repro.core.comparator import instruction_matches
from repro.core.encoding import encode_query, pad_instruction
from repro.rtl.comparator import build_instance_comparator
from repro.seq import alphabet


class TestGoldenMask:
    def test_mask_agrees_with_reference_semantics(self):
        mask = absint.golden_element_mask()
        for minterm in range(1 << 11):
            instruction = minterm & 0x3F
            ref_code = (minterm >> 6) & 1 | (((minterm >> 7) & 1) << 1)
            prev1_code = ((minterm >> 8) & 1) << 1
            prev2_code = (minterm >> 9) & 1 | (((minterm >> 10) & 1) << 1)
            expected = instruction_matches(
                instruction, ref_code, prev1_code, prev2_code
            )
            assert (mask >> minterm) & 1 == int(expected)


class TestElementFacts:
    def test_pad_always_matches(self):
        fact = absint.interpret_element(0, pad_instruction())
        assert fact.valid
        assert fact.always_matches
        assert fact.must_match == absint.TOP

    def test_fixed_nucleotide(self):
        encoded = encode_query("M")  # AUG: three fixed nucleotides
        facts = absint.interpret_stream(encoded.instructions)
        assert all(fact.valid for fact in facts)
        for fact in facts:
            assert bin(fact.may_match).count("1") == 1
            assert fact.may_match == fact.must_match

    def test_invalid_word_is_flagged(self):
        fact = absint.interpret_element(0, 0x01)  # illegal STOP config
        assert not fact.valid
        assert fact.error

    def test_score_bounds(self):
        facts = absint.interpret_stream(encode_query("MW").instructions)
        lo, hi = absint.score_bounds(facts)
        assert (lo, hi) == (0, 6)  # fixed elements: tight only per element


class TestCodonFacts:
    def test_methionine_exact(self):
        facts = absint.interpret_stream(encode_query("M").instructions)
        (codon,) = absint.codon_facts(facts)
        assert codon.accepted == ("AUG",)
        assert codon.exact

    def test_leucine_covers_its_box(self):
        facts = absint.interpret_stream(encode_query("L").instructions)
        (codon,) = absint.codon_facts(facts)
        assert set(codon.accepted) == {
            "UUA", "UUG", "CUU", "CUC", "CUA", "CUG",
        }


class TestFullVerification:
    def test_every_amino_acid_verifies(self):
        reports = absint.verify_all_amino_acids()
        assert set(reports) == set(alphabet.AMINO_ACIDS)
        for amino, report in reports.items():
            assert report.ok, (amino, report.to_dict())
            assert not report.divergences
            assert not report.codon_mismatches
            # Per-element score contributes exactly [0, num_elements].
            assert report.score_hi == report.num_elements

    def test_mutated_netlist_diverges_with_counterexample(self):
        encoded = encode_query("MSW")
        netlist = build_instance_comparator(len(encoded.instructions))
        lut = netlist.luts[2]  # element 1's comparison LUT
        netlist.luts[2] = dataclasses.replace(lut, init=lut.init ^ (1 << 7))
        report = absint.verify_encoded_query(encoded, netlist=netlist)
        assert not report.ok
        (divergence,) = report.divergences
        assert divergence.element == 1
        assert divergence.expected != divergence.actual
        # The counterexample is minimized: only roles the diff depends on.
        assert set(divergence.assignment) <= set(absint.ELEMENT_ROLES)
        assert divergence.assignment  # non-empty witness
        assert "element 1" in divergence.describe()

    def test_divergence_roles_decode_reference_semantics(self):
        """Re-play the counterexample through the reference model."""
        encoded = encode_query("Y")
        netlist = build_instance_comparator(3)
        lut = netlist.luts[0]
        netlist.luts[0] = dataclasses.replace(lut, init=lut.init ^ (1 << 3))
        report = absint.verify_encoded_query(encoded, netlist=netlist)
        for divergence in report.divergences:
            roles = {role: 0 for role in absint.ELEMENT_ROLES}
            roles.update(divergence.assignment)
            instruction = sum(roles[f"b{i}"] << i for i in range(6))
            ref = roles["ref_lo"] | (roles["ref_hi"] << 1)
            prev1 = roles["prev1_hi"] << 1
            prev2 = roles["prev2_lo"] | (roles["prev2_hi"] << 1)
            assert (
                int(instruction_matches(instruction, ref, prev1, prev2))
                == divergence.expected
            )


class TestStreamFindings:
    def test_clean_stream(self):
        instructions = encode_query("ACD").instructions
        assert absint.instruction_stream_findings(instructions) == []

    def test_invalid_word_reported(self):
        findings = absint.instruction_stream_findings([0x01])
        assert len(findings) == 1
        index, message = findings[0]
        assert index == 0
        assert "invalid" in message
