"""Tests for the comparator semantics and LUT INIT derivation (Fig. 5)."""

import pytest

from repro.core import backtranslate as bt
from repro.core import comparator as cmp
from repro.core import encoding as enc
from repro.core.codons import all_codons, paper_codons_for
from repro.seq import alphabet


def _code(letter: str) -> int:
    return alphabet.RNA_CODE[letter]


class TestInstructionMatches:
    def test_exact_match(self):
        instruction = enc.encode_element(bt.ExactElement("G"))
        for letter in "ACGU":
            expected = letter == "G"
            assert cmp.instruction_matches(instruction, _code(letter)) == expected

    def test_conditional_uc(self):
        element = bt.ConditionalElement(frozenset({"U", "C"}))
        instruction = enc.encode_element(element)
        results = {
            letter: cmp.instruction_matches(instruction, _code(letter))
            for letter in "ACGU"
        }
        assert results == {"A": False, "C": True, "G": False, "U": True}

    def test_conditional_not_g(self):
        element = bt.ConditionalElement(frozenset({"A", "C", "U"}))
        instruction = enc.encode_element(element)
        assert not cmp.instruction_matches(instruction, _code("G"))
        for letter in "ACU":
            assert cmp.instruction_matches(instruction, _code(letter))

    def test_dependent_stop(self):
        instruction = enc.encode_element(bt.DependentElement(bt.FUNCTION_STOP))
        # prev1 = A -> {A, G}; prev1 = G -> {A} only.
        assert cmp.instruction_matches(instruction, _code("G"), prev1_code=_code("A"))
        assert not cmp.instruction_matches(instruction, _code("G"), prev1_code=_code("G"))
        assert cmp.instruction_matches(instruction, _code("A"), prev1_code=_code("G"))

    def test_dependent_leu(self):
        instruction = enc.encode_element(bt.DependentElement(bt.FUNCTION_LEU))
        # prev2 = C -> any; prev2 = U -> {A, G}.
        assert cmp.instruction_matches(instruction, _code("C"), prev2_code=_code("C"))
        assert not cmp.instruction_matches(instruction, _code("C"), prev2_code=_code("U"))

    def test_dependent_arg(self):
        instruction = enc.encode_element(bt.DependentElement(bt.FUNCTION_ARG))
        # prev2 = C -> any; prev2 = A -> {A, G}.
        assert cmp.instruction_matches(instruction, _code("U"), prev2_code=_code("C"))
        assert not cmp.instruction_matches(instruction, _code("U"), prev2_code=_code("A"))

    def test_d_matches_everything(self):
        instruction = enc.encode_element(bt.DependentElement(bt.FUNCTION_ANY))
        for ref in range(4):
            for prev1 in range(4):
                for prev2 in range(4):
                    assert cmp.instruction_matches(instruction, ref, prev1, prev2)

    def test_validates_inputs(self):
        with pytest.raises(enc.EncodingError):
            cmp.instruction_matches(64, 0)
        with pytest.raises(ValueError):
            cmp.instruction_matches(0, 4)


class TestAgainstPatternSemantics:
    """The comparator must agree with the symbolic pattern elements."""

    @pytest.mark.parametrize("amino", alphabet.AMINO_ACIDS_WITH_STOP)
    def test_full_context_agreement(self, amino):
        pattern = bt.BACK_TRANSLATION_TABLE[amino]
        instructions = enc.encode_pattern(pattern)
        letters = alphabet.RNA_NUCLEOTIDES
        for ref in letters:
            for prev1 in letters:
                for prev2 in letters:
                    for element, instruction in zip(pattern.elements, instructions):
                        expected = element.matches(ref, prev1=prev1, prev2=prev2)
                        got = cmp.instruction_matches(
                            instruction, _code(ref), _code(prev1), _code(prev2)
                        )
                        assert got == expected, (amino, element, ref, prev1, prev2)

    @pytest.mark.parametrize("amino", alphabet.AMINO_ACIDS_WITH_STOP)
    def test_codon_level_agreement(self, amino):
        """Sliding a codon through the comparator recovers the codon set."""
        instructions = enc.encode_pattern(bt.BACK_TRANSLATION_TABLE[amino])
        admitted = set()
        for codon in all_codons():
            codes = [_code(c) for c in codon]
            ok = (
                cmp.instruction_matches(instructions[0], codes[0], 0, 0)
                and cmp.instruction_matches(instructions[1], codes[1], codes[0], 0)
                and cmp.instruction_matches(instructions[2], codes[2], codes[1], codes[0])
            )
            if ok:
                admitted.add(codon)
        assert admitted == set(paper_codons_for(amino))


class TestLutInits:
    def test_comparison_init_is_64_bit(self):
        init = cmp.comparison_lut_init()
        assert 0 < init < (1 << 64)

    def test_comparison_init_matches_function(self):
        init = cmp.comparison_lut_init()
        for address in range(64):
            b0 = address & 1
            b1 = (address >> 1) & 1
            b2 = (address >> 2) & 1
            x = (address >> 3) & 1
            hi = (address >> 4) & 1
            lo = (address >> 5) & 1
            assert ((init >> address) & 1) == cmp.comparison_lut_output(
                b0, b1, b2, x, hi, lo
            )

    def test_mux_init_selects_correctly(self):
        init = cmp.mux_lut_init()
        # config 00 -> b3; config 01 -> prev1_hi; 10 -> prev2_lo; 11 -> prev2_hi.
        for address in range(64):
            b3 = address & 1
            prev1_hi = (address >> 1) & 1
            prev2_lo = (address >> 2) & 1
            prev2_hi = (address >> 3) & 1
            config = (address >> 4) & 3
            expected = [b3, prev1_hi, prev2_lo, prev2_hi][config]
            assert ((init >> address) & 1) == expected

    def test_paper_figure_5b_type_ii_column(self):
        """Fig. 5(b): the 01-U/C column matches only C and U."""
        rows = {
            (label, ref): out
            for label, ref, out in cmp.truth_table_rows()
        }
        assert rows[("01-C/U", "A")] == 0
        assert rows[("01-C/U", "C")] == 1
        assert rows[("01-C/U", "G")] == 0
        assert rows[("01-C/U", "U")] == 1

    def test_paper_figure_5b_not_g_column(self):
        rows = {(label, ref): out for label, ref, out in cmp.truth_table_rows()}
        assert rows[("01-~G", "A")] == 1
        assert rows[("01-~G", "C")] == 1
        assert rows[("01-~G", "G")] == 0
        assert rows[("01-~G", "U")] == 1

    def test_paper_figure_5b_dependent_columns(self):
        rows = {(label, ref): out for label, ref, out in cmp.truth_table_rows()}
        # Stop (F:00): S=0 -> {A,G}; S=1 -> {A}.
        assert rows[("1-00-0", "A")] == 1 and rows[("1-00-0", "G")] == 1
        assert rows[("1-00-0", "C")] == 0 and rows[("1-00-0", "U")] == 0
        assert rows[("1-00-1", "A")] == 1 and rows[("1-00-1", "G")] == 0
        # Leu (F:01): S=0 -> all; S=1 -> {A,G}.
        assert all(rows[("1-01-0", r)] == 1 for r in "ACGU")
        assert rows[("1-01-1", "A")] == 1 and rows[("1-01-1", "C")] == 0
        # Arg (F:10): S=0 -> {A,G}; S=1 -> all.
        assert rows[("1-10-0", "G")] == 1 and rows[("1-10-0", "U")] == 0
        assert all(rows[("1-10-1", r)] == 1 for r in "ACGU")
        # D (F:11): all ones regardless of S.
        assert all(rows[("1-11-0", r)] == 1 for r in "ACGU")
        assert all(rows[("1-11-1", r)] == 1 for r in "ACGU")


class TestInstructionTables:
    def test_tables_shape(self, rng):
        from repro.core.encoding import encode_query
        from repro.seq.generate import random_protein

        encoded = encode_query(random_protein(10, rng=rng))
        tables, configs = cmp.instruction_tables(encoded.as_array())
        assert tables.shape == (30, 2, 4)
        assert configs.shape == (30,)
        assert tables.max() <= 1

    def test_tables_agree_with_matches(self):
        instruction = enc.encode_element(bt.DependentElement(bt.FUNCTION_STOP))
        tables, configs = cmp.instruction_tables([instruction])
        assert configs[0] == enc.CONFIG_PREV1_HI
        # S = hi(prev1): table row 0 is {A, G}, row 1 is {A}.
        assert list(tables[0, 0]) == [1, 0, 1, 0]
        assert list(tables[0, 1]) == [1, 0, 0, 0]
