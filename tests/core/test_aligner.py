"""Tests for the golden FabP aligner."""

import numpy as np
import pytest

from repro.core.aligner import (
    AlignmentResult,
    Hit,
    align,
    alignment_scores,
    alignment_scores_extended,
    alignment_scores_naive,
    resolve_threshold,
    search_database,
)
from repro.core.codons import CODONS_FOR
from repro.core.encoding import encode_query
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import encode_protein_as_rna


class TestVectorizedVsNaive:
    def test_randomized_agreement(self, rng):
        for _ in range(8):
            query = random_protein(int(rng.integers(2, 12)), rng=rng)
            reference = random_rna(int(rng.integers(50, 400)), rng=rng)
            fast = alignment_scores(query, reference)
            slow = alignment_scores_naive(query, reference)
            assert np.array_equal(fast, slow)

    def test_with_dependent_heavy_query(self, rng):
        # Leu/Arg/Ser/Stop exercise every Type III function.
        query = "LRSLRS*"
        reference = random_rna(300, rng=rng)
        assert np.array_equal(
            alignment_scores(query, reference),
            alignment_scores_naive(query, reference),
        )


class TestScores:
    def test_score_bounds(self, rng):
        query = random_protein(10, rng=rng)
        reference = random_rna(500, rng=rng)
        scores = alignment_scores(query, reference)
        assert scores.min() >= 0
        assert scores.max() <= 30  # 3 * residues

    def test_planted_exact_hit_scores_perfect(self, rng):
        query = random_protein(15, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        background = random_rna(400, rng=rng).letters
        reference = background[:100] + region + background[100:]
        scores = alignment_scores(query, reference)
        assert scores[100] == 45  # all 45 elements match

    def test_any_synonymous_codon_scores_perfect(self, rng):
        """Back-translation non-uniqueness: every codon choice matches."""
        query = "LVRS"
        for _ in range(10):
            region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
            scores = alignment_scores(query, region)
            assert scores[0] == 12

    def test_serine_agy_codons_missed_in_paper_mode(self):
        """The paper-mode Ser pattern does not admit AGU/AGC."""
        scores = alignment_scores("S", "AGU")
        assert scores[0] < 3
        scores_ucx = alignment_scores("S", "UCU")
        assert scores_ucx[0] == 3

    def test_extended_mode_recovers_agy_serine(self):
        scores = alignment_scores_extended("S", "AGU")
        assert scores[0] == 3

    def test_extended_mode_matches_paper_mode_without_serine(self, rng):
        query = "MFLVRW"
        reference = random_rna(200, rng=rng)
        assert np.array_equal(
            alignment_scores(query, reference),
            alignment_scores_extended(query, reference.letters),
        )

    def test_query_longer_than_reference(self):
        assert alignment_scores("MFWMFW", "ACGU").size == 0

    def test_number_of_positions(self, rng):
        query = random_protein(5, rng=rng)  # 15 elements
        reference = random_rna(100, rng=rng)
        scores = alignment_scores(query, reference)
        assert scores.size == 100 - 15 + 1  # L_r - L_q + 1 (§III-C)

    def test_accepts_code_array_reference(self, rng):
        query = random_protein(4, rng=rng)
        reference = random_rna(60, rng=rng)
        from repro.seq.packing import codes_from_text

        codes = codes_from_text(reference.letters)
        assert np.array_equal(
            alignment_scores(query, reference), alignment_scores(query, codes)
        )

    def test_dna_reference_accepted(self):
        scores_rna = alignment_scores("MF", "AUGUUU")
        scores_dna = alignment_scores("MF", "ATGTTT")
        assert np.array_equal(scores_rna, scores_dna)


class TestThreshold:
    def test_absolute_threshold(self):
        encoded = encode_query("MFW")
        assert resolve_threshold(encoded, threshold=5) == 5

    def test_identity_threshold(self):
        encoded = encode_query("MFW")  # 9 elements
        assert resolve_threshold(encoded, min_identity=0.5) == 5  # ceil(4.5)

    def test_default_is_90_percent(self):
        encoded = encode_query("MFW")
        assert resolve_threshold(encoded) == 9  # ceil(8.1)

    def test_both_specs_rejected(self):
        encoded = encode_query("MFW")
        with pytest.raises(ValueError):
            resolve_threshold(encoded, threshold=5, min_identity=0.5)

    def test_out_of_range_rejected(self):
        encoded = encode_query("MFW")
        with pytest.raises(ValueError):
            resolve_threshold(encoded, threshold=10)
        with pytest.raises(ValueError):
            resolve_threshold(encoded, min_identity=1.5)


class TestAlign:
    def test_planted_hit_found(self, rng):
        query = random_protein(12, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        background = random_rna(500, rng=rng).letters
        reference = background[:250] + region + background[250:]
        result = align(query, reference, min_identity=0.95)
        assert any(h.position == 250 for h in result.hits)

    def test_hits_sorted_by_position(self, rng):
        query = random_protein(3, rng=rng)
        reference = random_rna(400, rng=rng)
        result = align(query, reference, threshold=3)
        positions = [h.position for h in result.hits]
        assert positions == sorted(positions)

    def test_keep_scores(self, rng):
        query = random_protein(4, rng=rng)
        reference = random_rna(100, rng=rng)
        with_scores = align(query, reference, threshold=6, keep_scores=True)
        without = align(query, reference, threshold=6)
        assert with_scores.scores is not None
        assert without.scores is None
        assert with_scores.hits == without.hits

    def test_result_properties(self, rng):
        query = random_protein(4, rng=rng)
        reference = random_rna(100, rng=rng)
        result = align(query, reference, threshold=0, keep_scores=True)
        assert result.perfect_score == 12
        assert result.max_score == int(result.scores.max())
        assert result.best_hit is not None
        assert result.best_hit.score == result.max_score

    def test_empty_result(self):
        result = align("MFWMFW", "ACGU", threshold=0)
        assert result.hits == ()
        assert result.max_score == 0
        assert result.best_hit is None

    def test_search_database(self, rng):
        query = random_protein(5, rng=rng)
        references = [random_rna(200, rng=rng) for _ in range(3)]
        results = search_database(query, references, threshold=5)
        assert len(results) == 3
        assert all(isinstance(r, AlignmentResult) for r in results)

    def test_search_database_keep_scores(self, rng):
        query = random_protein(5, rng=rng)
        references = [random_rna(200, rng=rng) for _ in range(2)]
        results = search_database(query, references, threshold=5, keep_scores=True)
        assert all(r.scores is not None and r.scores.size == 200 - 15 + 1 for r in results)

    def test_search_database_prepacked_codes(self, rng):
        from repro.seq.packing import codes_from_text

        query = random_protein(5, rng=rng)
        references = [random_rna(200, rng=rng) for _ in range(2)]
        codes = [codes_from_text(r.letters) for r in references]
        from_text = search_database(query, references, threshold=5)
        from_codes = search_database(query, codes, threshold=5)
        assert [r.hits for r in from_text] == [r.hits for r in from_codes]

    def test_align_engine_escape_hatch(self, rng):
        query = random_protein(5, rng=rng)
        reference = random_rna(300, rng=rng)
        default = align(query, reference, threshold=5)
        for engine in ("vectorized", "naive", "packed", "diagonal"):
            assert align(query, reference, threshold=5, engine=engine).hits == default.hits

    def test_str_representations(self, rng):
        result = align("MFW", random_rna(50, rng=rng), threshold=0)
        assert "hits" in str(result)
        assert str(Hit(3, 5)) == "pos=3 score=5"


class TestResidueTableCache:
    def test_cache_is_bounded(self):
        from repro.core.aligner import _extended_residue_tables

        assert _extended_residue_tables.cache_info().maxsize == 32

    def test_repeat_residues_hit_the_cache(self):
        from repro.core.aligner import _extended_residue_tables

        _extended_residue_tables.cache_clear()
        alignment_scores_extended("SS", "AGUAGU")
        info = _extended_residue_tables.cache_info()
        assert info.misses >= 1
        assert info.hits >= 1
        assert info.currsize <= 32
