"""Property tests: the symbolic engine agrees with the batched simulator.

The soundness anchor for every proof built on :mod:`repro.rtl.symbolic`:
over random small netlists (random wiring, random INITs, shared nets,
constants), the per-output symbolic truth table and exhaustive batched
simulation agree on *all* input vectors (widths kept <= 12 so exhaustion
is cheap).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl.netlist import GND, VCC, Netlist
from repro.rtl.simulator import Simulator
from repro.rtl.symbolic import SymbolicEvaluator, false_fanin_positions, ternary_outputs


@st.composite
def random_netlists(draw):
    """A random acyclic LUT netlist with <= 12 primary inputs."""
    width = draw(st.integers(1, 12))
    netlist = Netlist("random")
    nets = list(netlist.add_input_bus("v", width))
    pool = nets + [GND, VCC]
    num_luts = draw(st.integers(1, 8))
    for index in range(num_luts):
        arity = draw(st.integers(1, 4))
        inputs = tuple(
            pool[draw(st.integers(0, len(pool) - 1))] for _ in range(arity)
        )
        init = draw(st.integers(0, (1 << (1 << arity)) - 1))
        pool.append(netlist.add_lut(inputs, init, name=f"l{index}"))
    outputs = draw(
        st.lists(
            st.integers(len(nets), len(pool) - 1), min_size=1, max_size=3, unique=True
        )
    )
    for k, pool_index in enumerate(outputs):
        netlist.set_output(f"y[{k}]", pool[pool_index])
    return netlist


def _exhaustive_inputs(netlist):
    names = sorted(netlist.inputs)
    total = 1 << len(names)
    indices = np.arange(total, dtype=np.int64)
    return names, {
        name: ((indices >> column) & 1).astype(np.uint8)
        for column, name in enumerate(names)
    }, indices


class TestSymbolicMatchesSimulator:
    @given(netlist=random_netlists())
    @settings(max_examples=60, deadline=None)
    def test_agreement_on_all_vectors(self, netlist):
        names, batched, indices = _exhaustive_inputs(netlist)
        simulated = Simulator(netlist, batch=indices.size).settle(batched)
        evaluator = SymbolicEvaluator(netlist)
        for out_name, net in netlist.outputs.items():
            function = evaluator.function(net)
            for vector in indices:
                assignment = {
                    name: (int(vector) >> column) & 1
                    for column, name in enumerate(names)
                }
                assert function.value_at(assignment) == int(
                    simulated[out_name][vector]
                ), (out_name, assignment)

    @given(netlist=random_netlists())
    @settings(max_examples=30, deadline=None)
    def test_ternary_constants_are_sound(self, netlist):
        """Any output ternary-settled to 0/1 is that constant on every
        concrete vector."""
        constants = {
            name: value
            for name, value in ternary_outputs(netlist).items()
            if value in (0, 1)
        }
        if not constants:
            return
        names, batched, indices = _exhaustive_inputs(netlist)
        simulated = Simulator(netlist, batch=indices.size).settle(batched)
        for name, value in constants.items():
            assert np.all(simulated[name] == value), name

    @given(netlist=random_netlists())
    @settings(max_examples=30, deadline=None)
    def test_false_pins_never_flip_outputs(self, netlist):
        """No output function depends on a net that only feeds false pins."""
        false = false_fanin_positions(netlist)
        if not false:
            return
        evaluator = SymbolicEvaluator(netlist)
        primary = set(netlist.inputs.values())
        for (kind, index), positions in false.items():
            lut = netlist.luts[index]
            if not set(lut.inputs) <= primary | {GND, VCC}:
                # A dead net may still reach the LUT through another live
                # pin's cone; only first-level LUTs give an exact claim.
                continue
            dead_nets = {lut.inputs[p] for p in positions}
            live_nets = {
                lut.inputs[p]
                for p in range(len(lut.inputs))
                if p not in positions
            }
            function = evaluator.function(lut.output)
            for net in dead_nets - live_nets:
                source = evaluator._source_names.get(net)
                if source is not None and source in function.space:
                    assert not function.depends_on(source)
