"""Property tests: the SWAR engine is bit-identical to every other engine.

The acceptance bar for the bit-parallel fast path is exact equivalence with
the straight-line Python oracle on arbitrary inputs — including the edges
the hardware cares about: queries longer than the reference, all-Type-III
instruction streams (Leu/Arg/Ser/Stop), and references shorter than the
3-nt look-back window.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitscore
from repro.core.aligner import (
    alignment_scores,
    alignment_scores_naive,
    search_database,
)
from repro.core.encoding import encode_query
from repro.seq import alphabet
from repro.seq.packing import codes_from_text

proteins = st.text(
    alphabet=sorted(alphabet.AMINO_ACIDS_WITH_STOP), min_size=1, max_size=12
)
#: Queries drawn only from residues whose patterns carry Type III elements
#: (dependent look-back matches): Leu, Arg, Ser, Stop.
type_iii_proteins = st.text(alphabet=sorted("LRS*"), min_size=1, max_size=10)
rna_strings = st.text(
    alphabet=sorted(alphabet.RNA_NUCLEOTIDES), min_size=1, max_size=300
)
#: References shorter than the 3-nt look-back window (the boundary reads
#: nucleotide A, matching the hardware stream-buffer reset).
tiny_rna = st.text(alphabet=sorted(alphabet.RNA_NUCLEOTIDES), min_size=1, max_size=2)


def _assert_all_engines_agree(protein, reference):
    encoded = encode_query(protein)
    codes = codes_from_text(reference)
    oracle = alignment_scores_naive(encoded, codes)
    packed = bitscore.packed_scores(encoded.as_array(), codes)
    diagonal = bitscore.diagonal_scores(encoded.as_array(), codes)
    vectorized = alignment_scores(encoded, codes, engine="vectorized")
    auto = alignment_scores(encoded, codes)  # default = bitscore
    assert np.array_equal(packed, oracle)
    assert np.array_equal(diagonal, oracle)
    assert np.array_equal(vectorized, oracle)
    assert np.array_equal(auto, oracle)


class TestEngineEquivalence:
    @given(protein=proteins, reference=rna_strings)
    @settings(max_examples=40, deadline=None)
    def test_random_queries_and_references(self, protein, reference):
        _assert_all_engines_agree(protein, reference)

    @given(protein=type_iii_proteins, reference=rna_strings)
    @settings(max_examples=40, deadline=None)
    def test_all_type_iii_queries(self, protein, reference):
        """Leu/Arg/Ser/Stop-only queries: every element exercises the mux."""
        _assert_all_engines_agree(protein, reference)

    @given(protein=proteins, reference=tiny_rna)
    @settings(max_examples=30, deadline=None)
    def test_reference_shorter_than_lookback(self, protein, reference):
        """L_r < 3 exercises the missing look-back edge; usually L_q > L_r."""
        _assert_all_engines_agree(protein, reference)

    @given(
        protein=st.text(
            alphabet=sorted(alphabet.AMINO_ACIDS_WITH_STOP), min_size=4, max_size=12
        ),
        reference=st.text(
            alphabet=sorted(alphabet.RNA_NUCLEOTIDES), min_size=1, max_size=11
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_query_longer_than_reference(self, protein, reference):
        """L_q (elements) >= 12 > L_r: all engines return the empty array."""
        encoded = encode_query(protein)
        codes = codes_from_text(reference)
        assert alignment_scores_naive(encoded, codes).size == 0
        assert bitscore.packed_scores(encoded.as_array(), codes).size == 0
        assert bitscore.diagonal_scores(encoded.as_array(), codes).size == 0
        assert alignment_scores(encoded, codes).size == 0

    @given(protein=proteins, reference=rna_strings)
    @settings(max_examples=20, deadline=None)
    def test_search_database_engine_consistency(self, protein, reference):
        """Hits are identical whichever engine the search routes through."""
        default = search_database(protein, [reference], min_identity=0.3)
        naive = search_database(
            protein, [reference], min_identity=0.3, engine="naive"
        )
        assert [r.hits for r in default] == [r.hits for r in naive]


class TestBatchEquivalence:
    """One shared sweep over k queries == k independent sweeps, bit for bit."""

    @given(
        batch=st.lists(proteins, min_size=1, max_size=6),
        reference=rna_strings,
    )
    @settings(max_examples=30, deadline=None)
    def test_ragged_batch_matches_per_query_sweeps(self, batch, reference):
        from repro.core.aligner import scores_batch_from_codes, scores_from_codes

        arrays = [encode_query(p).as_array() for p in batch]
        codes = codes_from_text(reference)
        solo = [scores_from_codes(a, codes, "bitscore") for a in arrays]
        for engine in ("bitscore_batch", "bitscore", "vectorized"):
            shared = scores_batch_from_codes(arrays, codes, engine)
            assert len(shared) == len(solo)
            for got, want in zip(shared, solo):
                assert got.dtype == want.dtype
                assert np.array_equal(got, want), engine

    @given(protein=type_iii_proteins, reference=rna_strings)
    @settings(max_examples=25, deadline=None)
    def test_batch_of_one_is_the_plain_sweep(self, protein, reference):
        from repro.core.aligner import scores_batch_from_codes, scores_from_codes

        array = encode_query(protein).as_array()
        codes = codes_from_text(reference)
        want = scores_from_codes(array, codes, "bitscore")
        (got,) = scores_batch_from_codes([array], codes, "bitscore_batch")
        assert np.array_equal(got, want)

    @given(
        protein=proteins,
        reference=rna_strings,
        copies=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_duplicate_queries_score_identically(self, protein, reference, copies):
        """The shared planes must not cross-talk between identical lanes."""
        from repro.core.aligner import scores_batch_from_codes

        arrays = [encode_query(protein).as_array() for _ in range(copies)]
        codes = codes_from_text(reference)
        shared = scores_batch_from_codes(arrays, codes, "bitscore_batch")
        for got in shared[1:]:
            assert np.array_equal(got, shared[0])
