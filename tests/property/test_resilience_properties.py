"""Property tests: fault injection never changes scan results.

The supervised runtime's core guarantee is that retries, corrupt-result
rejection and checkpoint reuse are invisible in the output — any seeded
FaultPlan made of recoverable faults must yield results bit-identical to a
fault-free serial scan.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import encode_query
from repro.host.faults import FaultKind, FaultPlan, FaultSpec
from repro.host.resilience import RetryPolicy, supervised_scan
from repro.host.scan import PackedDatabase, scan_database

#: Serial-mode recoverable kinds (crash/hang are process-level faults that
#: the serial path records as failures / sleeps on; raise and corrupt
#: exercise the full retry + sanity-check machinery in-process, fast).
SERIAL_KINDS = (FaultKind.RAISE, FaultKind.CORRUPT)

_RNG = np.random.default_rng(0xFAB9)
_REFS = [
    _RNG.integers(0, 4, size=int(n), dtype=np.uint8)
    for n in _RNG.integers(120, 600, size=9)
]
_DATABASE = PackedDatabase.from_references(_REFS)
_QUERY = encode_query("MKV")
_THRESHOLD = 4
_BASELINE = scan_database(_QUERY, _DATABASE, threshold=_THRESHOLD, workers=1)

#: Zero-delay policy: property tests sweep many plans, backoff would stall.
_POLICY = RetryPolicy(
    max_retries=3, timeout=None, backoff=0.0, backoff_max=0.0, jitter=0.0, seed=0
)


@st.composite
def fault_plans(draw):
    num_chunks = 5  # ceil(9 refs / chunk_size 2)
    chunks = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_chunks - 1),
            unique=True,
            max_size=num_chunks,
        )
    )
    specs = tuple(
        FaultSpec(
            chunk,
            draw(st.sampled_from(SERIAL_KINDS)),
            attempts=draw(st.integers(min_value=1, max_value=3)),
        )
        for chunk in chunks
    )
    return FaultPlan(specs=specs)


@settings(max_examples=40, deadline=None)
@given(plan=fault_plans())
def test_recoverable_faults_are_invisible(plan):
    out = supervised_scan(
        _QUERY, _DATABASE, threshold=_THRESHOLD, engine="bitscore",
        workers=1, chunk_size=2, policy=_POLICY, faults=plan,
    )
    assert out.report.clean
    # Every injected faulty attempt costs exactly one retry, no more.
    assert out.report.retries == sum(s.attempts for s in plan.specs)
    assert len(out.results) == len(_BASELINE)
    for ours, expected in zip(out.results, _BASELINE):
        assert ours.reference_name == expected.reference_name
        assert ours.hits == expected.hits


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_seeded_plans_are_reproducible_and_recoverable(seed):
    plan = FaultPlan.from_seed(
        seed, 5, rate=0.4, kinds=SERIAL_KINDS, max_attempts=2
    )
    assert plan.specs == FaultPlan.from_seed(
        seed, 5, rate=0.4, kinds=SERIAL_KINDS, max_attempts=2
    ).specs
    out = supervised_scan(
        _QUERY, _DATABASE, threshold=_THRESHOLD, engine="bitscore",
        workers=1, chunk_size=2, policy=_POLICY, faults=plan,
    )
    assert out.report.clean
    for ours, expected in zip(out.results, _BASELINE):
        assert ours.hits == expected.hits
