"""Property tests: enabling observability never changes scan results.

The observability layer's core guarantee — instrumented runs are
bit-identical to uninstrumented ones — is checked over random workloads,
engines and thresholds.  A second property pins the no-op contract: with
the layer disabled (the default), nothing is ever recorded.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.encoding import encode_query
from repro.host.resilience import RetryPolicy, supervised_scan
from repro.host.scan import PackedDatabase, scan_database

_RNG = np.random.default_rng(0x0B5)
_REFS = [
    _RNG.integers(0, 4, size=int(n), dtype=np.uint8)
    for n in _RNG.integers(150, 500, size=7)
]
_DATABASE = PackedDatabase.from_references(_REFS)

_POLICY = RetryPolicy(
    max_retries=2, timeout=None, backoff=0.0, backoff_max=0.0, jitter=0.0, seed=0
)

AMINO = "ACDEFGHIKLMNPQRSTVWY"


def hits_of(results):
    return [(r.reference_name, tuple(r.hits)) for r in results]


@settings(max_examples=25, deadline=None)
@given(
    query=st.text(alphabet=AMINO, min_size=2, max_size=8),
    engine=st.sampled_from(["naive", "vectorized", "bitscore"]),
    threshold=st.integers(min_value=1, max_value=8),
)
def test_observability_never_changes_scan_results(query, engine, threshold):
    encoded = encode_query(query)
    threshold = min(threshold, len(encoded))
    obs.disable()
    obs.reset()
    baseline = scan_database(
        encoded, _DATABASE, threshold=threshold, engine=engine, workers=1
    )
    obs.reset()
    obs.enable()
    try:
        instrumented = scan_database(
            encoded, _DATABASE, threshold=threshold, engine=engine, workers=1
        )
    finally:
        obs.disable()
    assert hits_of(instrumented) == hits_of(baseline)
    obs.reset()


@settings(max_examples=10, deadline=None)
@given(
    query=st.text(alphabet=AMINO, min_size=2, max_size=6),
    threshold=st.integers(min_value=1, max_value=6),
)
def test_observability_never_changes_supervised_results(query, threshold):
    encoded = encode_query(query)
    obs.disable()
    obs.reset()
    baseline = supervised_scan(
        encoded, _DATABASE, threshold=threshold, engine="bitscore",
        workers=1, chunk_size=2, policy=_POLICY,
    )
    obs.reset()
    obs.enable()
    try:
        instrumented = supervised_scan(
            encoded, _DATABASE, threshold=threshold, engine="bitscore",
            workers=1, chunk_size=2, policy=_POLICY,
        )
        # The instrumented run actually recorded something...
        assert {f.name for f in obs.REGISTRY.families()} >= {
            "fabp_stage_seconds",
            "fabp_scan_chunk_attempts_total",
            "fabp_scan_retries_total",
        }
    finally:
        obs.disable()
    # ...and it changed nothing.
    assert hits_of(instrumented.results) == hits_of(baseline.results)
    assert instrumented.report.clean == baseline.report.clean
    obs.reset()


@settings(max_examples=15, deadline=None)
@given(
    query=st.text(alphabet=AMINO, min_size=2, max_size=6),
    threshold=st.integers(min_value=1, max_value=6),
)
def test_disabled_layer_records_nothing(query, threshold):
    obs.disable()
    obs.reset()
    supervised_scan(
        encode_query(query), _DATABASE, threshold=threshold, engine="bitscore",
        workers=1, chunk_size=3, policy=_POLICY,
    )
    assert obs.REGISTRY.families() == []
    assert len(obs.RECORDER) == 0
