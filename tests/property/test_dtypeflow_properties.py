"""Property test: the dtype-flow verdict agrees with numpy's real promotion.

Random expression trees over a pool of array dtypes and python scalars are
evaluated twice — abstractly by :func:`repro.statics.abstract_eval` and
concretely by numpy on one-element arrays — and the abstract result dtype
must equal the dtype numpy actually produced (NEP-50 weak-scalar rules
included).
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.statics import AbstractValue, abstract_eval

DTYPES = (
    "uint8",
    "uint16",
    "uint64",
    "int16",
    "int32",
    "int64",
    "float32",
    "float64",
)

array_leaf = st.sampled_from(DTYPES).map(lambda d: ("array", d))
scalar_leaf = st.integers(min_value=0, max_value=100).map(lambda v: ("scalar", v))

expression_trees = st.recursive(
    st.one_of(array_leaf, scalar_leaf),
    lambda children: st.tuples(st.sampled_from(("+", "-", "*")), children, children),
    max_leaves=6,
)


def realize(tree, env, values):
    """Render a tree to source, seeding abstract env + concrete arrays."""
    if tree[0] == "array":
        name = f"a{len(env)}"
        env[name] = AbstractValue(tree[1], 1, 1)
        values[name] = np.ones(1, dtype=tree[1])
        return name
    if tree[0] == "scalar":
        return str(tree[1])
    op, left, right = tree
    return f"({realize(left, env, values)} {op} {realize(right, env, values)})"


class TestAbstractPromotionMatchesNumpy:
    @given(tree=expression_trees)
    @settings(max_examples=200, deadline=None)
    def test_abstract_dtype_equals_concrete_dtype(self, tree):
        env = {}
        values = {}
        source = realize(tree, env, values)
        assume(env)  # an all-scalar tree never fixes a concrete dtype

        abstract = abstract_eval(source, env)
        try:
            with np.errstate(all="ignore"):
                concrete = eval(source, dict(values))  # noqa: S307
        except OverflowError:
            # NEP 50 refuses a negative python scalar against an unsigned
            # array — no concrete dtype exists to compare against.
            assume(False)
        assert abstract.dtype == concrete.dtype.name, (
            f"{source}: abstract {abstract} vs numpy {concrete.dtype}"
        )

    @given(tree=expression_trees)
    @settings(max_examples=100, deadline=None)
    def test_abstract_interval_respects_dtype_bounds(self, tree):
        env = {}
        values = {}
        source = realize(tree, env, values)
        assume(env)

        abstract = abstract_eval(source, env)
        if abstract.dtype is None or np.dtype(abstract.dtype).kind not in "iu":
            return
        info = np.iinfo(np.dtype(abstract.dtype))
        if abstract.lo is not None:
            assert abstract.lo >= info.min
        if abstract.hi is not None:
            assert abstract.hi <= info.max
