"""Property-based tests (hypothesis) for the lint passes.

The central soundness property: anything the shipped generators/encoder
produce is lint-clean — the rules only ever fire on genuinely corrupted
inputs, never on valid ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import encode_query, pad_instruction
from repro.core.instr_lint import lint_instructions, lint_query
from repro.rtl.comparator import build_instance_comparator
from repro.rtl.lint import lint_netlist
from repro.rtl.popcount import build_popcounter
from repro.seq import alphabet

proteins_with_stop = st.text(
    alphabet=sorted(alphabet.AMINO_ACIDS_WITH_STOP), min_size=1, max_size=16
)


class TestEncoderOutputIsAlwaysClean:
    @given(protein=proteins_with_stop)
    @settings(max_examples=100, deadline=None)
    def test_encoded_query_has_zero_findings(self, protein):
        report = lint_query(encode_query(protein))
        assert report.clean, [str(f) for f in report.findings]

    @given(protein=proteins_with_stop, pad_codons=st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_tail_padded_stream_has_zero_findings(self, protein, pad_codons):
        stream = list(encode_query(protein).instructions)
        stream += [pad_instruction()] * (3 * pad_codons)
        assert lint_instructions(stream).clean


class TestGeneratedNetlistsAreAlwaysClean:
    @given(chunks=st.integers(1, 4), style=st.sampled_from(["fabp", "tree"]))
    @settings(max_examples=10, deadline=None)
    def test_pop36_multiple_widths_have_zero_findings(self, chunks, style):
        block = build_popcounter(36 * chunks, style=style)
        report = lint_netlist(block.netlist)
        assert report.clean, [str(f) for f in report.findings]

    @given(
        width=st.integers(1, 120),
        style=st.sampled_from(["fabp", "tree"]),
        pipelined=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_width_popcounter_has_zero_findings(self, width, style, pipelined):
        # The builders fold provably-zero count bits to GND, so even ragged
        # tails and degenerate widths carry no dead or constant logic.
        block = build_popcounter(width, style=style, pipelined=pipelined)
        report = lint_netlist(block.netlist)
        assert report.clean, [str(f) for f in report.findings]

    @given(elements=st.integers(2, 8))
    @settings(max_examples=7, deadline=None)
    def test_instance_comparators_have_zero_findings(self, elements):
        report = lint_netlist(build_instance_comparator(elements))
        assert report.clean, [str(f) for f in report.findings]

    def test_single_element_instance_has_only_the_known_artifact(self):
        # At n=1 the look-back slot ref1's lo bit has no consumer (it is the
        # standalone element comparator's prev1[0] artifact in instance
        # clothing); NL003 must flag exactly that bit and nothing else.
        report = lint_netlist(build_instance_comparator(1))
        assert [f.rule_id for f in report.findings] == ["NL003"]
        assert "ref1[0]" in report.findings[0].location
