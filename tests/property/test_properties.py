"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import backtranslate as bt
from repro.core import comparator as cmp
from repro.core.aligner import alignment_scores, alignment_scores_naive, align
from repro.core.codons import CODON_TABLE, paper_codons_for
from repro.core.encoding import encode_query
from repro.seq import alphabet
from repro.seq.mutate import apply_indels, substitute
from repro.seq.packing import codes_from_text, pack, unpack

proteins = st.text(alphabet=sorted(alphabet.AMINO_ACIDS), min_size=1, max_size=12)
proteins_with_stop = st.text(
    alphabet=sorted(alphabet.AMINO_ACIDS_WITH_STOP), min_size=1, max_size=12
)
rna_strings = st.text(alphabet=sorted(alphabet.RNA_NUCLEOTIDES), min_size=1, max_size=400)
codons = st.text(alphabet=sorted(alphabet.RNA_NUCLEOTIDES), min_size=3, max_size=3)


class TestBackTranslationProperties:
    @given(codon=codons)
    @settings(max_examples=200, deadline=None)
    def test_pattern_admits_codon_iff_it_encodes_the_amino(self, codon):
        """For every codon c and amino a: pattern(a) admits c <=> c encodes a
        (modulo the paper's Ser reduction)."""
        amino = CODON_TABLE[codon]
        for candidate in alphabet.AMINO_ACIDS_WITH_STOP:
            pattern = bt.BACK_TRANSLATION_TABLE[candidate]
            admitted = pattern.matches_codon(codon)
            encodes = codon in paper_codons_for(candidate)
            assert admitted == encodes

    @given(protein=proteins_with_stop)
    @settings(max_examples=100, deadline=None)
    def test_encoding_roundtrip(self, protein):
        encoded = encode_query(protein)
        assert len(encoded) == 3 * len(protein)
        decoded = encoded.decode()
        expected = tuple(
            element
            for pattern in bt.back_translate(protein)
            for element in pattern.elements
        )
        assert decoded == expected

    @given(protein=proteins_with_stop)
    @settings(max_examples=50, deadline=None)
    def test_instructions_are_six_bit(self, protein):
        encoded = encode_query(protein)
        assert all(0 <= i < 64 for i in encoded.instructions)


class TestAlignerProperties:
    @given(protein=proteins, reference=rna_strings)
    @settings(max_examples=40, deadline=None)
    def test_vectorized_equals_naive(self, protein, reference):
        fast = alignment_scores(protein, reference)
        slow = alignment_scores_naive(protein, reference)
        assert np.array_equal(fast, slow)

    @given(protein=proteins, reference=rna_strings)
    @settings(max_examples=40, deadline=None)
    def test_score_bounds_and_position_count(self, protein, reference):
        scores = alignment_scores(protein, reference)
        elements = 3 * len(protein)
        expected_positions = max(0, len(reference) - elements + 1)
        assert scores.size == expected_positions
        if scores.size:
            assert scores.min() >= 0
            assert scores.max() <= elements

    @given(protein=proteins)
    @settings(max_examples=50, deadline=None)
    def test_self_alignment_of_any_synonymous_coding_is_perfect(self, protein):
        """Every synonymous coding (from the paper codon sets) scores full."""
        rng = np.random.default_rng(len(protein))
        rna = "".join(
            paper_codons_for(aa)[rng.integers(len(paper_codons_for(aa)))]
            for aa in protein
        )
        scores = alignment_scores(protein, rna)
        assert scores[0] == 3 * len(protein)

    @given(protein=proteins, reference=rna_strings, threshold=st.integers(0, 36))
    @settings(max_examples=40, deadline=None)
    def test_hits_are_exactly_scores_above_threshold(self, protein, reference, threshold):
        elements = 3 * len(protein)
        threshold = min(threshold, elements)
        result = align(protein, reference, threshold=threshold, keep_scores=True)
        if result.scores is None or result.scores.size == 0:
            assert result.hits == ()
            return
        expected = {
            (int(i), int(s))
            for i, s in enumerate(result.scores)
            if s >= threshold
        }
        assert {(h.position, h.score) for h in result.hits} == expected


class TestComparatorProperties:
    @given(
        instruction=st.integers(0, 63),
        ref=st.integers(0, 3),
        prev1=st.integers(0, 3),
        prev2=st.integers(0, 3),
    )
    @settings(max_examples=300, deadline=None)
    def test_lut_init_agrees_with_semantics(self, instruction, ref, prev1, prev2):
        """The derived INIT vectors compute instruction_matches for every
        instruction, including invalid encodings (hardware doesn't trap)."""
        init = cmp.comparison_lut_init()
        x = cmp.mux_output(instruction, prev1, prev2)
        address = (
            (instruction & 0b111)
            | (x << 3)
            | (((ref >> 1) & 1) << 4)
            | ((ref & 1) << 5)
        )
        assert ((init >> address) & 1) == int(
            cmp.instruction_matches(instruction, ref, prev1, prev2)
        )


class TestSequenceProperties:
    @given(rna=rna_strings)
    @settings(max_examples=100, deadline=None)
    def test_pack_roundtrip(self, rna):
        codes = codes_from_text(rna)
        assert np.array_equal(unpack(pack(codes), codes.size), codes)

    @given(rna=rna_strings, rate=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_substitution_preserves_length_and_alphabet(self, rna, rate):
        result = substitute(rna, rate, alphabet.RNA_NUCLEOTIDES, seed=1)
        assert len(result.letters) == len(rna)
        assert set(result.letters) <= set(alphabet.RNA_NUCLEOTIDES)

    @given(rna=rna_strings, events=st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_indel_count_recorded(self, rna, events):
        result = apply_indels(rna, events, alphabet.RNA_NUCLEOTIDES, seed=2)
        assert result.num_indels == events
