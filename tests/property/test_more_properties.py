"""Additional hypothesis property tests: baselines, statistics, RTL blocks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.evalue import default_protein_params
from repro.baselines.scoring import NucleotideScoring, ProteinScoring
from repro.baselines.smith_waterman import smith_waterman, sw_score
from repro.seq import alphabet

proteins = st.text(alphabet=sorted(alphabet.AMINO_ACIDS), min_size=1, max_size=18)
rna_strings = st.text(alphabet=sorted(alphabet.RNA_NUCLEOTIDES), min_size=1, max_size=40)


class TestSmithWatermanProperties:
    @given(a=proteins, b=proteins)
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, a, b):
        """BLOSUM62 is symmetric, so local alignment is too.

        Scoring is pinned explicitly: short strings over {A,C,G,T,U} are
        ambiguous between residues and nucleotides, and the auto-detection
        heuristic may classify `a` and `b` differently.
        """
        scoring = ProteinScoring()
        assert sw_score(a, b, scoring) == sw_score(b, a, scoring)

    @given(a=proteins)
    @settings(max_examples=30, deadline=None)
    def test_self_alignment_is_identity_sum(self, a):
        scoring = ProteinScoring()
        expected = sum(scoring.score(c, c) for c in a)
        assert sw_score(a, a, scoring) == expected

    @given(a=proteins, b=proteins, c=proteins)
    @settings(max_examples=30, deadline=None)
    def test_concatenation_monotone(self, a, b, c):
        """Appending subject sequence can only help a local alignment."""
        scoring = ProteinScoring()
        assert sw_score(a, b + c, scoring) >= sw_score(a, b, scoring)

    @given(a=rna_strings, b=rna_strings)
    @settings(max_examples=30, deadline=None)
    def test_score_nonnegative_and_bounded(self, a, b):
        scoring = NucleotideScoring(match=2, mismatch=-3)
        score = sw_score(a, b, scoring)
        assert 0 <= score <= 2 * min(len(a), len(b))

    @given(a=proteins, b=proteins)
    @settings(max_examples=20, deadline=None)
    def test_traceback_ranges_within_inputs(self, a, b):
        result = smith_waterman(a, b)
        assert 0 <= result.a_start <= result.a_end <= len(a)
        assert 0 <= result.b_start <= result.b_end <= len(b)
        assert result.aligned_a.replace("-", "") == a[result.a_start : result.a_end]
        assert result.aligned_b.replace("-", "") == b[result.b_start : result.b_end]


class TestEvalueProperties:
    @given(
        score=st.integers(1, 200),
        extra=st.integers(1, 50),
        m=st.integers(10, 1000),
        n=st.integers(1000, 10**7),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotonicity(self, score, extra, m, n):
        params = default_protein_params()
        assert params.evalue(score + extra, m, n) < params.evalue(score, m, n)
        assert params.bit_score(score + extra) > params.bit_score(score)
        assert 0.0 <= params.pvalue(score, m, n) <= 1.0


class TestNullModelProperties:
    @given(protein=proteins)
    @settings(max_examples=25, deadline=None)
    def test_pmf_is_distribution_with_matching_moments(self, protein):
        from repro.analysis.statistics import null_score_model

        model = null_score_model(protein)
        assert model.pmf.sum() == np.float64(1.0) or abs(model.pmf.sum() - 1) < 1e-9
        support = np.arange(model.pmf.size)
        assert abs((support * model.pmf).sum() - model.mean) < 1e-9
        assert 0 <= model.mean <= 3 * len(protein)

    @given(protein=proteins, rate=st.floats(0.0, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_detection_dominates_null(self, protein, rate):
        """A homolog at any divergence scores at least as well as noise, in
        distribution (stochastic dominance of the survival functions)."""
        from repro.analysis.sensitivity import detection_model
        from repro.analysis.statistics import null_score_model

        signal = detection_model(protein, rate)
        noise = null_score_model(protein)
        for threshold in range(0, 3 * len(protein) + 1, max(1, len(protein))):
            assert (
                signal.detection_probability(threshold)
                >= noise.survival(threshold) - 1e-9
            )


class TestRtlBlockProperties:
    @given(values=st.lists(st.integers(0, 1), min_size=1, max_size=36))
    @settings(max_examples=30, deadline=None)
    def test_pop36_counts_anything(self, values):
        from repro.rtl.netlist import Netlist
        from repro.rtl.popcount import add_pop36
        from repro.rtl.simulator import Simulator

        netlist = Netlist()
        bits = netlist.add_input_bus("bits", len(values))
        netlist.set_output_bus("count", add_pop36(netlist, bits))
        sim = Simulator(netlist)
        inputs = {f"bits[{i}]": v for i, v in enumerate(values)}
        sim.settle(inputs)
        assert sim.output_bus("count")[0] == sum(values)

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=50, deadline=None)
    def test_ripple_adder_adds(self, a, b):
        from repro.rtl.netlist import Netlist
        from repro.rtl.popcount import add_ripple_adder
        from repro.rtl.simulator import Simulator

        netlist = Netlist()
        a_bits = netlist.add_input_bus("a", 8)
        b_bits = netlist.add_input_bus("b", 8)
        netlist.set_output_bus("s", add_ripple_adder(netlist, a_bits, b_bits))
        sim = Simulator(netlist)
        inputs = {}
        inputs.update(sim.set_input_bus("a", a))
        inputs.update(sim.set_input_bus("b", b))
        sim.settle(inputs)
        assert sim.output_bus("s")[0] == a + b
