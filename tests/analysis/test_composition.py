"""Tests for pattern-composition analytics."""

import math

import pytest

from repro.analysis.composition import (
    all_residue_profiles,
    background_match_probability,
    format_composition_table,
    query_composition,
    residue_profile,
)
from repro.core.codons import paper_codons_for
from repro.seq import alphabet


class TestResidueProfiles:
    def test_match_probability_equals_codon_fraction(self):
        for amino in alphabet.AMINO_ACIDS_WITH_STOP:
            profile = residue_profile(amino)
            assert profile.codons_admitted == len(paper_codons_for(amino))
            assert profile.match_probability == profile.codons_admitted / 64

    def test_met_trp_most_informative(self):
        profiles = all_residue_profiles()
        assert profiles["M"].information_bits == 6.0
        assert profiles["W"].information_bits == 6.0
        for amino, profile in profiles.items():
            assert profile.information_bits <= 6.0

    def test_leucine_least_informative(self):
        profiles = all_residue_profiles()
        # Six codons -> the most permissive pattern.
        most_permissive = max(profiles.values(), key=lambda p: p.match_probability)
        assert most_permissive.codons_admitted == 6
        assert most_permissive.amino in ("L", "R")

    def test_element_probability_product_bounds_codon_probability(self):
        """Independent elements: product = codon fraction; dependent ones
        make the product an upper bound."""
        for amino in alphabet.AMINO_ACIDS_WITH_STOP:
            profile = residue_profile(amino)
            product = math.prod(profile.element_probabilities)
            assert profile.match_probability <= product + 1e-12


class TestQueryComposition:
    def test_aggregates(self):
        composition = query_composition("MW")
        assert composition.residues == 2
        assert composition.max_score == 6
        assert composition.total_information_bits == 12.0
        assert composition.expected_null_score == pytest.approx(6 * 0.25)

    def test_margin_positive(self, rng):
        from repro.seq.generate import random_protein

        composition = query_composition(random_protein(30, rng=rng))
        assert composition.discrimination_margin > 0

    def test_permissive_queries_have_higher_null(self):
        strict = query_composition("MWMW")
        loose = query_composition("LLLL")
        assert loose.expected_null_score > strict.expected_null_score
        assert loose.total_information_bits < strict.total_information_bits

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            query_composition("")


class TestBackground:
    def test_background_probability_low(self):
        """FabP's encoding stays discriminative on realistic composition."""
        p = background_match_probability()
        assert 0.03 < p < 0.10

    def test_uniform_background(self):
        uniform = {aa: 1.0 for aa in alphabet.AMINO_ACIDS}
        p = background_match_probability(uniform)
        expected = sum(
            len(paper_codons_for(aa)) / 64 for aa in alphabet.AMINO_ACIDS
        ) / 20
        assert p == pytest.approx(expected)

    def test_table_renders(self):
        text = format_composition_table()
        assert "Met (M)" in text
        assert len(text.splitlines()) == 21 + 3
