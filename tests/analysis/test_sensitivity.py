"""Tests for the analytic detection/sensitivity model."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    detection_model,
    element_survival_probabilities,
    operating_curve,
)
from repro.core.aligner import alignment_scores
from repro.seq.generate import random_protein, random_rna
from repro.seq.mutate import substitute
from repro.seq import alphabet
from repro.workloads.builder import encode_protein_as_rna


class TestSurvivalProbabilities:
    def test_zero_rate_all_one(self, rng):
        probabilities = element_survival_probabilities(
            random_protein(10, rng=rng), 0.0
        )
        assert np.allclose(probabilities, 1.0)

    def test_d_elements_immune(self):
        # Gly = GGD: the third position survives any substitution.
        probabilities = element_survival_probabilities("G", 0.5)
        assert probabilities[2] == pytest.approx(1.0)

    def test_exact_elements_most_fragile(self):
        # Met = AUG, all exact: survival = 1 - p.
        probabilities = element_survival_probabilities("M", 0.3)
        assert np.allclose(probabilities, 0.7)

    def test_conditional_absorbs_some_substitutions(self):
        # Phe third position (U/C): a U substituted lands on {A,C,G}
        # uniformly; C still matches -> survive 1-p + p/3.
        probabilities = element_survival_probabilities("F", 0.3)
        assert probabilities[2] == pytest.approx(0.7 + 0.3 / 3)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            element_survival_probabilities("M", 1.5)


class TestDetectionModel:
    def test_expected_score_decreases_with_rate(self, rng):
        query = random_protein(20, rng=rng)
        expectations = [
            detection_model(query, rate).expected_score
            for rate in (0.0, 0.05, 0.1, 0.2)
        ]
        assert expectations == sorted(expectations, reverse=True)

    def test_zero_rate_certain_detection(self, rng):
        query = random_protein(10, rng=rng)
        model = detection_model(query, 0.0)
        assert model.detection_probability(30) == pytest.approx(1.0)

    def test_matches_monte_carlo(self, rng):
        """Analytic detection probability vs simulated mutated homologs."""
        query = random_protein(25, rng=rng)
        rate = 0.06
        model = detection_model(query, rate)
        threshold = int(0.8 * 75)
        trials = 400
        detected = 0
        for _ in range(trials):
            region = encode_protein_as_rna(
                query, rng=rng, codon_usage="paper"
            ).letters
            mutated = substitute(region, rate, alphabet.RNA_NUCLEOTIDES, rng=rng)
            score = alignment_scores(query, mutated.letters)[0]
            if score >= threshold:
                detected += 1
        predicted = model.detection_probability(threshold)
        assert detected / trials == pytest.approx(predicted, abs=0.07)

    def test_max_threshold_for_recall(self, rng):
        query = random_protein(15, rng=rng)
        model = detection_model(query, 0.05)
        threshold = model.max_threshold_for_recall(0.95)
        assert model.detection_probability(threshold) >= 0.95
        assert model.detection_probability(threshold + 1) < 0.95

    def test_recall_validated(self, rng):
        model = detection_model(random_protein(5, rng=rng), 0.1)
        with pytest.raises(ValueError):
            model.max_threshold_for_recall(0.0)


class TestOperatingCurve:
    def test_tradeoff_shape(self, rng):
        query = random_protein(30, rng=rng)
        curve = operating_curve(
            query, substitution_rate=0.05, reference_length=1_000_000
        )
        detections = [p.detection_probability for p in curve]
        false_hits = [p.expected_false_hits for p in curve]
        assert detections == sorted(detections, reverse=True)
        assert false_hits == sorted(false_hits, reverse=True)

    def test_usable_operating_point_exists(self, rng):
        """For a 30-aa query at 5% divergence there is a threshold with
        high recall AND almost no random hits — the regime the paper's
        'high similarity' use case lives in."""
        query = random_protein(30, rng=rng)
        curve = operating_curve(
            query, substitution_rate=0.05, reference_length=4_000_000_000
        )
        good = [
            p
            for p in curve
            if p.detection_probability > 0.9 and p.expected_false_hits < 10
        ]
        assert good

    def test_custom_thresholds(self, rng):
        query = random_protein(10, rng=rng)
        curve = operating_curve(
            query,
            substitution_rate=0.02,
            reference_length=1000,
            thresholds=[10, 20, 30],
        )
        assert [p.threshold for p in curve] == [10, 20, 30]
