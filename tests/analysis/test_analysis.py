"""Tests for the §IV-A studies and report helpers."""

import numpy as np
import pytest

from repro.analysis.accuracy import (
    AccuracyRow,
    format_accuracy_table,
    run_accuracy_study,
)
from repro.analysis.indels import run_indel_study
from repro.analysis.report import (
    markdown_table,
    paper_vs_measured,
    ratio_summary,
    text_table,
)


class TestAccuracyStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_accuracy_study(
            substitution_rates=(0.0, 0.05),
            indel_event_counts=(0, 1),
            cases_per_point=5,
            query_length=30,
            reference_length=3000,
            seed=7,
        )

    def test_row_count(self, rows):
        assert len(rows) == 4

    def test_clean_cases_fully_recovered(self, rows):
        clean = [r for r in rows if r.substitution_rate == 0 and r.indel_events == 0]
        assert clean[0].fabp_recall == 1.0
        assert clean[0].tblastn_recall == 1.0

    def test_substitutions_tolerated(self, rows):
        """The paper's design premise: substitutions only lower the score."""
        subbed = [r for r in rows if r.substitution_rate > 0 and r.indel_events == 0]
        assert subbed[0].fabp_recall >= 0.8

    def test_extended_at_least_paper_mode(self, rows):
        for row in rows:
            assert row.fabp_extended_recall >= row.fabp_recall - 1e-9

    def test_drop_metric(self):
        row = AccuracyRow(0.0, 1, 10, fabp_recall=0.8, fabp_extended_recall=0.8,
                          tblastn_recall=0.9)
        assert row.fabp_drop_vs_tblastn == pytest.approx(0.1)

    def test_table_rendering(self, rows):
        text = format_accuracy_table(rows)
        assert "FabP" in text
        assert len(text.splitlines()) == len(rows) + 1


class TestIndelStudy:
    def test_reproducible(self):
        a = run_indel_study(num_queries=2000, seed=3)
        b = run_indel_study(num_queries=2000, seed=3)
        assert a == b

    def test_fraction_small(self):
        result = run_indel_study(num_queries=5000, query_residues=150, seed=1)
        # The cited distribution implies a small but nonzero rate.
        assert 0.0 < result.fraction_with_indels < 0.10

    def test_affected_subset_of_with_indels(self):
        result = run_indel_study(num_queries=5000, seed=2)
        assert result.queries_alignment_affected <= result.queries_with_indels

    def test_longer_queries_more_exposed(self):
        short = run_indel_study(num_queries=5000, query_residues=50, seed=4)
        long_ = run_indel_study(num_queries=5000, query_residues=250, seed=4)
        assert long_.fraction_with_indels >= short.fraction_with_indels

    def test_mean_rate_tracks_input(self):
        result = run_indel_study(num_queries=20000, query_residues=333, seed=5)
        assert result.mean_events_per_kb == pytest.approx(0.09, abs=0.04)

    def test_str(self):
        assert "IndelStudy" in str(run_indel_study(num_queries=100, seed=0))


class TestReportHelpers:
    def test_text_table_alignment(self):
        table = text_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # rectangular

    def test_text_table_title(self):
        assert text_table(["x"], [[1]], title="T").startswith("T\n")

    def test_markdown_table(self):
        md = markdown_table(["a", "b"], [[1, 2]])
        assert md.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in md

    def test_paper_vs_measured(self):
        out = paper_vs_measured({"speedup": ("24.8x", "23.8x")})
        assert "24.8x" in out and "23.8x" in out

    def test_ratio_summary(self):
        line = ratio_summary("speedup", 24.8, 23.79)
        assert "paper=24.8" in line
        assert "-4.1%" in line
