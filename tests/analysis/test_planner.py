"""Tests for the deployment planner."""

import pytest

from repro.accel.device import KINTEX7, LARGE_FPGA
from repro.analysis.planner import (
    PlatformPlan,
    WorkloadMix,
    compare_deployments,
    format_deployment_table,
    plan_cpu,
    plan_fabp,
    plan_gpu,
)


@pytest.fixture
def mix():
    """100 mixed-length queries against a 1-GB (4 Gnt) database."""
    return WorkloadMix(
        database_nucleotides=4_000_000_000,
        query_counts={50: 60, 150: 30, 250: 10},
    )


class TestWorkloadMix:
    def test_totals(self, mix):
        assert mix.total_queries == 100
        assert len(mix.workloads()) == 3


class TestPlans:
    def test_fabp_fastest_and_most_efficient(self, mix):
        plans = compare_deployments(mix)
        fabp, gpu, cpu12, cpu1 = plans
        assert fabp.batch_seconds < cpu12.batch_seconds
        assert fabp.joules_per_query < gpu.joules_per_query
        assert fabp.joules_per_query < cpu12.joules_per_query

    def test_fabric_sharing_helps_short_queries(self):
        # Two 50-aa arrays don't fit a Kintex-7 (57 % each); 30-aa ones do.
        short_mix = WorkloadMix(4_000_000_000, {30: 40, 250: 10})
        shared = plan_fabp(short_mix, share_fabric=True)
        unshared = plan_fabp(short_mix, share_fabric=False)
        assert shared.batch_seconds < unshared.batch_seconds

    def test_fabric_sharing_neutral_when_nothing_fits(self, mix):
        # 50-aa and longer queries cannot co-reside on the Kintex-7.
        shared = plan_fabp(mix, share_fabric=True)
        unshared = plan_fabp(mix, share_fabric=False)
        assert shared.batch_seconds == pytest.approx(unshared.batch_seconds)

    def test_boards_scale_time_down_energy_flatish(self, mix):
        one = plan_fabp(mix, boards=1)
        four = plan_fabp(mix, boards=4)
        assert four.batch_seconds == pytest.approx(one.batch_seconds / 4, rel=0.05)
        assert four.batch_joules == pytest.approx(one.batch_joules, rel=0.05)

    def test_larger_device_not_slower(self, mix):
        small = plan_fabp(mix, device=KINTEX7)
        large = plan_fabp(mix, device=LARGE_FPGA)
        assert large.batch_seconds <= small.batch_seconds

    def test_queries_per_hour(self, mix):
        plan = plan_fabp(mix)
        assert plan.queries_per_hour == pytest.approx(
            3600 * 100 / plan.batch_seconds
        )

    def test_cpu_thread_options(self, mix):
        fast = plan_cpu(mix, threads=12)
        slow = plan_cpu(mix, threads=1)
        assert fast.batch_seconds < slow.batch_seconds

    def test_validation(self, mix):
        with pytest.raises(ValueError):
            plan_fabp(mix, boards=0)

    def test_table_rendering(self, mix):
        table = format_deployment_table(compare_deployments(mix))
        assert "queries/hour" in table
        assert "FabP" in table
        assert len(table.splitlines()) == 4 + 3

    def test_consistency_with_fig6_headlines(self, mix):
        """Single-length mixes reduce to the Fig. 6 ratios."""
        single = WorkloadMix(4_000_000_000, {250: 1})
        fabp = plan_fabp(single, share_fabric=False)
        cpu12 = plan_cpu(single, threads=12)
        ratio = cpu12.batch_seconds / fabp.batch_seconds
        assert 20 <= ratio <= 40  # paper's 24.8x regime
