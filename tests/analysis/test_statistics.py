"""Tests for the FabP null-score model and threshold selection."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    element_match_probabilities,
    empirical_null,
    null_score_model,
)
from repro.seq.generate import random_protein


class TestMatchProbabilities:
    def test_type_i_quarter(self):
        # Met = AUG, all Type I: each position matches 1 of 4 nucleotides.
        probabilities = element_match_probabilities("M")
        assert list(probabilities) == [0.25, 0.25, 0.25]

    def test_conditional_half(self):
        # Phe third position is U/C: probability 1/2.
        probabilities = element_match_probabilities("F")
        assert probabilities[2] == 0.5

    def test_d_matches_always(self):
        # Gly = GGD: third position always matches.
        probabilities = element_match_probabilities("G")
        assert probabilities[2] == 1.0

    def test_ile_three_quarters(self):
        probabilities = element_match_probabilities("I")
        assert probabilities[2] == 0.75

    def test_dependent_context_average(self):
        # Stop third position: {A,G} after A (p=1/2), {A} after G (p=1/4),
        # averaged over the S coin -> 3/8.
        probabilities = element_match_probabilities("*")
        assert probabilities[2] == pytest.approx(0.375)


class TestNullModel:
    def test_pmf_is_distribution(self, rng):
        model = null_score_model(random_protein(10, rng=rng))
        assert model.pmf.sum() == pytest.approx(1.0)
        assert (model.pmf >= 0).all()
        assert model.pmf.size == 31

    def test_mean_variance_formulas(self, rng):
        model = null_score_model(random_protein(8, rng=rng))
        support = np.arange(model.pmf.size)
        assert model.mean == pytest.approx((support * model.pmf).sum())
        second = (support**2 * model.pmf).sum()
        assert model.variance == pytest.approx(second - model.mean**2)

    def test_survival_monotone(self, rng):
        model = null_score_model(random_protein(6, rng=rng))
        values = [model.survival(t) for t in range(20)]
        assert values == sorted(values, reverse=True)
        assert model.survival(0) == 1.0
        assert model.survival(100) == 0.0

    def test_matches_monte_carlo(self, rng):
        query = random_protein(6, rng=rng)
        model = null_score_model(query)
        scores = empirical_null(query, samples=150_000, rng=rng)
        assert scores.mean() == pytest.approx(model.mean, abs=0.05)
        threshold = int(model.mean + 3 * model.variance**0.5)
        empirical_tail = (scores >= threshold).mean()
        assert empirical_tail == pytest.approx(model.survival(threshold), rel=0.5, abs=2e-4)

    def test_expected_hits_scales(self, rng):
        model = null_score_model(random_protein(5, rng=rng))
        e1 = model.expected_hits(10, 10_000)
        e2 = model.expected_hits(10, 20_000)
        assert e2 > e1

    def test_threshold_for_fpr(self, rng):
        model = null_score_model(random_protein(10, rng=rng))
        threshold = model.threshold_for_fpr(1.0, 1_000_000)
        assert model.expected_hits(threshold, 1_000_000) <= 1.0
        assert model.expected_hits(threshold - 1, 1_000_000) > 1.0

    def test_threshold_validation(self, rng):
        model = null_score_model(random_protein(4, rng=rng))
        with pytest.raises(ValueError):
            model.threshold_for_fpr(0.0, 100)

    def test_zscore(self, rng):
        model = null_score_model(random_protein(10, rng=rng))
        perfect = 30
        assert model.zscore(perfect) > 5
        assert model.zscore(int(model.mean)) == pytest.approx(0.0, abs=0.6)
