"""Tests for ROC threshold analysis."""

import pytest

from repro.analysis.roc import RocCurve, RocPoint, format_roc, roc_curve


@pytest.fixture(scope="module")
def curve():
    return roc_curve(
        cases=6,
        query_length=25,
        reference_length=3000,
        substitution_rate=0.05,
        seed=11,
    )


class TestRocCurve:
    def test_tpr_monotone_nonincreasing(self, curve):
        tprs = [p.true_positive_rate for p in curve.points]
        assert all(a >= b for a, b in zip(tprs, tprs[1:]))

    def test_fp_monotone_nonincreasing(self, curve):
        fps = [p.false_positives_per_mb for p in curve.points]
        assert all(a >= b for a, b in zip(fps, fps[1:]))

    def test_low_threshold_perfect_recall(self, curve):
        assert curve.points[0].true_positive_rate == 1.0

    def test_high_threshold_clean_background(self, curve):
        assert curve.points[-1].false_positives_per_mb == 0.0

    def test_best_threshold_constrained(self, curve):
        best = curve.best_threshold(max_fp_per_mb=1.0)
        assert best is not None
        assert best.false_positives_per_mb <= 1.0
        # It is the most sensitive viable point.
        viable = [p for p in curve.points if p.false_positives_per_mb <= 1.0]
        assert best.true_positive_rate == max(p.true_positive_rate for p in viable)

    def test_auc_like_bounds(self, curve):
        assert 0.0 < curve.auc_like() <= 1.0

    def test_indels_hurt_high_identity_operating_points(self):
        clean = roc_curve(
            cases=6, query_length=25, reference_length=3000,
            substitution_rate=0.0, indel_events=0, seed=4,
        )
        indel = roc_curve(
            cases=6, query_length=25, reference_length=3000,
            substitution_rate=0.0, indel_events=1, seed=4,
        )
        assert indel.points[-1].true_positive_rate <= clean.points[-1].true_positive_rate

    def test_format(self, curve):
        text = format_roc(curve)
        assert "TPR" in text
        assert len(text.splitlines()) == len(curve.points) + 3

    def test_custom_thresholds(self):
        curve = roc_curve(
            cases=3, query_length=20, reference_length=2000,
            thresholds=[30, 45, 60], seed=2,
        )
        assert [p.threshold for p in curve.points] == [30, 45, 60]
