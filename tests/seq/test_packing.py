"""Tests for 2-bit packing and AXI beat accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq import packing
from repro.seq.sequence import DnaSequence, RnaSequence


class TestCodeConversion:
    def test_codes_from_text(self):
        assert list(packing.codes_from_text("ACGU")) == [0, 1, 2, 3]

    def test_codes_accept_dna(self):
        assert list(packing.codes_from_text("ACGT")) == [0, 1, 2, 3]

    def test_codes_reject_invalid(self):
        with pytest.raises(ValueError, match="non-nucleotide"):
            packing.codes_from_text("ACGX")

    def test_text_from_codes_renders_rna(self):
        assert packing.text_from_codes(np.array([0, 1, 2, 3])) == "ACGU"

    def test_roundtrip(self):
        text = "ACGUUGCAACGU"
        assert packing.text_from_codes(packing.codes_from_text(text)) == text

    def test_empty(self):
        assert packing.codes_from_text("").size == 0


class TestPacking:
    def test_four_codes_per_byte(self):
        packed = packing.pack(np.array([0, 1, 2, 3], dtype=np.uint8))
        assert packed.size == 1
        # LSB-first: 0 | 1<<2 | 2<<4 | 3<<6 = 0b11100100.
        assert packed[0] == 0b11100100

    def test_pack_pads_with_zero(self):
        packed = packing.pack(np.array([3], dtype=np.uint8))
        assert packed.size == 1
        assert packed[0] == 3

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            packing.pack(np.array([4], dtype=np.uint8))

    def test_unpack_inverse(self):
        codes = np.array([0, 3, 1, 2, 2, 1], dtype=np.uint8)
        packed = packing.pack(codes)
        assert np.array_equal(packing.unpack(packed, 6), codes)

    def test_unpack_rejects_overrun(self):
        with pytest.raises(ValueError):
            packing.unpack(np.zeros(1, dtype=np.uint8), 5)

    @given(st.lists(st.integers(0, 3), min_size=0, max_size=600))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_roundtrip_property(self, values):
        codes = np.array(values, dtype=np.uint8)
        packed = packing.pack(codes)
        assert np.array_equal(packing.unpack(packed, codes.size), codes)
        assert packed.size == -(-max(codes.size, 0) // 4) if codes.size else packed.size == 0

    def test_pack_sequence_from_types(self):
        rna = RnaSequence("ACGU")
        dna = DnaSequence("ACGT")
        assert np.array_equal(packing.pack_sequence(rna), packing.pack_sequence(dna))
        assert np.array_equal(packing.pack_sequence("ACGU"), packing.pack_sequence(rna))


class TestBeatAccounting:
    def test_beats_exact(self):
        assert packing.beats_required(256) == 1
        assert packing.beats_required(512) == 2

    def test_beats_round_up(self):
        assert packing.beats_required(1) == 1
        assert packing.beats_required(257) == 2

    def test_beats_zero(self):
        assert packing.beats_required(0) == 0

    def test_beats_negative_rejected(self):
        with pytest.raises(ValueError):
            packing.beats_required(-1)

    def test_packed_size(self):
        assert packing.packed_size_bytes(4) == 1
        assert packing.packed_size_bytes(5) == 2
        # 1 GByte of reference = 4 Gnt, the paper's workload.
        assert packing.packed_size_bytes(4_000_000_000) == 1_000_000_000

    def test_nucleotides_per_beat_matches_paper(self):
        # §III-C: 512-bit AXI reads 256 2-bit elements per beat.
        assert packing.NUCLEOTIDES_PER_BEAT == 256
        assert packing.BYTES_PER_BEAT == 64
