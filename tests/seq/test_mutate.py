"""Tests for the mutation models."""

import numpy as np
import pytest

from repro.seq import alphabet
from repro.seq.generate import random_protein, random_rna
from repro.seq.mutate import (
    apply_indels,
    mutate_protein,
    mutate_rna,
    sample_indel_events,
    substitute,
)


class TestSubstitute:
    def test_rate_zero_is_identity(self, rng):
        seq = random_rna(500, rng=rng)
        result = substitute(seq.letters, 0.0, alphabet.RNA_NUCLEOTIDES, rng=rng)
        assert result.letters == seq.letters
        assert result.mutations == ()

    def test_rate_one_changes_everything(self, rng):
        seq = random_rna(200, rng=rng)
        result = substitute(seq.letters, 1.0, alphabet.RNA_NUCLEOTIDES, rng=rng)
        assert all(a != b for a, b in zip(seq.letters, result.letters))
        assert result.num_substitutions == 200

    def test_substitution_never_self(self, rng):
        seq = random_rna(300, rng=rng)
        result = substitute(seq.letters, 0.5, alphabet.RNA_NUCLEOTIDES, rng=rng)
        for record in result.mutations:
            assert record.payload != seq.letters[record.position]

    def test_length_preserved(self, rng):
        seq = random_rna(100, rng=rng)
        result = substitute(seq.letters, 0.3, alphabet.RNA_NUCLEOTIDES, rng=rng)
        assert len(result.letters) == 100

    def test_rate_validated(self, rng):
        with pytest.raises(ValueError):
            substitute("ACGU", 1.5, alphabet.RNA_NUCLEOTIDES, rng=rng)

    def test_records_report_positions(self, rng):
        seq = random_rna(100, rng=rng)
        result = substitute(seq.letters, 0.2, alphabet.RNA_NUCLEOTIDES, rng=rng)
        rebuilt = list(seq.letters)
        for record in result.mutations:
            rebuilt[record.position] = record.payload
        assert "".join(rebuilt) == result.letters


class TestIndels:
    def test_zero_events_identity(self, rng):
        seq = random_rna(100, rng=rng)
        result = apply_indels(seq.letters, 0, alphabet.RNA_NUCLEOTIDES, rng=rng)
        assert result.letters == seq.letters

    def test_event_count_recorded(self, rng):
        seq = random_rna(500, rng=rng)
        result = apply_indels(seq.letters, 5, alphabet.RNA_NUCLEOTIDES, rng=rng)
        assert result.num_indels == 5

    def test_indels_change_length_or_content(self, rng):
        seq = random_rna(300, rng=rng)
        result = apply_indels(seq.letters, 3, alphabet.RNA_NUCLEOTIDES, rng=rng)
        assert result.letters != seq.letters

    def test_negative_events_rejected(self, rng):
        with pytest.raises(ValueError):
            apply_indels("ACGU", -1, alphabet.RNA_NUCLEOTIDES, rng=rng)

    def test_alphabet_respected(self, rng):
        seq = random_rna(200, rng=rng)
        result = apply_indels(seq.letters, 10, alphabet.RNA_NUCLEOTIDES, rng=rng)
        assert set(result.letters) <= set(alphabet.RNA_NUCLEOTIDES)

    def test_frame_preserving_blocks_multiple_of_three(self, rng):
        seq = random_rna(600, rng=rng)
        result = apply_indels(
            seq.letters, 12, alphabet.RNA_NUCLEOTIDES, rng=rng, frame_preserving=True
        )
        for record in result.mutations:
            assert len(record.payload) % 3 == 0

    def test_frame_preserving_keeps_length_mod_three(self, rng):
        seq = random_rna(300, rng=rng)
        result = apply_indels(
            seq.letters, 6, alphabet.RNA_NUCLEOTIDES, rng=rng, frame_preserving=True
        )
        assert len(result.letters) % 3 == len(seq.letters) % 3


class TestConvenienceWrappers:
    def test_mutate_rna_combines(self, rng):
        seq = random_rna(400, rng=rng)
        result = mutate_rna(seq, substitution_rate=0.1, indel_events=2, rng=rng)
        assert result.num_indels == 2
        assert result.num_substitutions > 0

    def test_mutate_protein_alphabet(self, rng):
        seq = random_protein(100, rng=rng)
        result = mutate_protein(seq, substitution_rate=0.2, indel_events=1, rng=rng)
        assert set(result.letters) <= set(alphabet.AMINO_ACIDS)

    def test_seeded_reproducibility(self):
        seq = random_rna(200, seed=5)
        a = mutate_rna(seq, substitution_rate=0.1, indel_events=1, seed=9)
        b = mutate_rna(seq, substitution_rate=0.1, indel_events=1, seed=9)
        assert a == b


class TestIndelDistribution:
    """The zero-inflated empirical model behind the §IV-A statistic."""

    def test_median_is_zero(self, rng):
        samples = [sample_indel_events(750, rng=rng) for _ in range(2000)]
        assert sorted(samples)[len(samples) // 2] == 0

    def test_mean_rate_near_cited_value(self, rng):
        # Neininger et al.: mean 0.09 indels/kb.
        n = 30_000
        length = 1000
        total = sum(sample_indel_events(length, rng=rng) for _ in range(n))
        mean_per_kb = total / n
        assert 0.06 < mean_per_kb < 0.12

    def test_zero_mean_yields_zero(self, rng):
        assert sample_indel_events(1000, mean_per_kb=0.0, rng=rng) == 0

    def test_short_regions_rarely_hit(self, rng):
        hits = sum(sample_indel_events(150, rng=rng) > 0 for _ in range(5000))
        assert hits / 5000 < 0.05
