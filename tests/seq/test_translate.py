"""Tests for forward translation (the TBLASTN substrate)."""

import pytest

from repro.seq.sequence import RnaSequence
from repro.seq.translate import (
    frame_to_nucleotide,
    open_reading_frames,
    translate,
    translate_frames,
    translate_six_frames,
)


class TestTranslate:
    def test_basic(self):
        assert translate("AUGUUUUGG").letters == "MFW"

    def test_dna_input_transcribed(self):
        assert translate("ATGTTTTGG").letters == "MFW"

    def test_stop_rendering(self):
        assert translate("AUGUAA").letters == "M*"

    def test_to_stop_truncates(self):
        assert translate("AUGUAAUUU", to_stop=True).letters == "M"

    def test_partial_codon_dropped(self):
        assert translate("AUGUU").letters == "M"

    def test_empty(self):
        assert translate("").letters == ""

    def test_paper_example(self):
        # The paper's worked query: Met-Phe-Ser-Arg-Stop.
        assert translate("AUGUUUUCGCGAUGA").letters == "MFSR*"


class TestFrames:
    def test_three_forward_frames(self):
        frames = translate_frames("AAUGUUU")
        assert [f for f, _ in frames] == [0, 1, 2]
        assert frames[1][1].letters == "MF"  # AUG UUU starting at offset 1

    def test_six_frames_count(self):
        frames = translate_six_frames("AUGGCUUAA")
        assert [f for f, _ in frames] == [0, 1, 2, 3, 4, 5]

    def test_reverse_frames_use_reverse_complement(self):
        rna = RnaSequence("AUGUUU")
        frames = dict(translate_six_frames(rna))
        # revcomp(AUGUUU) = AAACAU -> frame 3 translates AAA CAU = KH.
        assert frames[3].letters == "KH"

    def test_frame_to_nucleotide_forward(self):
        assert frame_to_nucleotide(0, 0, 30) == 0
        assert frame_to_nucleotide(1, 2, 30) == 7
        assert frame_to_nucleotide(2, 0, 30) == 2

    def test_frame_to_nucleotide_reverse(self):
        # Reverse frame 3, protein position 0: last codon of forward strand.
        assert frame_to_nucleotide(3, 0, 30) == 27

    def test_frame_to_nucleotide_validates(self):
        with pytest.raises(ValueError):
            frame_to_nucleotide(6, 0, 30)

    def test_forward_frame_mapping_consistent_with_translation(self):
        rna = "CCAUGUUUUAG"
        for frame, protein in translate_frames(rna):
            for pos, aa in enumerate(protein.letters):
                nt = frame_to_nucleotide(frame, pos, len(rna))
                codon = rna[nt : nt + 3]
                assert translate(codon).letters == aa


class TestOrfs:
    def test_finds_planted_orf(self):
        orf_rna = "AUG" + "UUU" * 12 + "UAA"
        background = "CC" + orf_rna + "GGGG"
        orfs = open_reading_frames(background, min_codons=10)
        assert len(orfs) == 1
        start, end, protein = orfs[0]
        assert start == 2
        assert end == 2 + len(orf_rna)
        assert protein.letters == "M" + "F" * 12 + "*"

    def test_min_codons_filters(self):
        short = "CCAUGUUUUAAGG"
        assert open_reading_frames(short, min_codons=10) == []
        assert len(open_reading_frames(short, min_codons=2)) == 1

    def test_no_orfs_in_stop_free_sequence(self):
        assert open_reading_frames("AUGUUUUUC", min_codons=1) == []
