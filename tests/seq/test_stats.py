"""Tests for sequence composition statistics."""

import pytest

from repro.seq.generate import random_rna
from repro.seq.stats import (
    codon_counts,
    composition_chi2,
    gc_content,
    kmer_spectrum,
    nucleotide_composition,
    shannon_entropy,
)


class TestComposition:
    def test_fractions_sum_to_one(self, rng):
        composition = nucleotide_composition(random_rna(400, rng=rng))
        assert sum(composition.values()) == pytest.approx(1.0)

    def test_known_sequence(self):
        composition = nucleotide_composition("AACG")
        assert composition == {"A": 0.5, "C": 0.25, "G": 0.25, "U": 0.0}

    def test_empty(self):
        assert sum(nucleotide_composition("").values()) == 0.0
        assert shannon_entropy("") == 0.0

    def test_gc_content(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AAUU") == 0.0
        assert gc_content("ACGU") == 0.5

    def test_gc_matches_generator_bias(self, rng):
        sequence = random_rna(30_000, rng=rng, gc_content=0.7)
        assert gc_content(sequence) == pytest.approx(0.7, abs=0.02)

    def test_dna_input_accepted(self):
        assert gc_content("GGCCAATT") == 0.5


class TestCodonsAndKmers:
    def test_codon_counts_frames(self):
        counts0 = codon_counts("AUGUUU")
        assert counts0 == {"AUG": 1, "UUU": 1}
        counts1 = codon_counts("AAUGUUU", frame=1)
        assert counts1 == {"AUG": 1, "UUU": 1}

    def test_codon_counts_frame_validated(self):
        with pytest.raises(ValueError):
            codon_counts("AUG", frame=3)

    def test_kmer_spectrum_total(self, rng):
        sequence = random_rna(200, rng=rng)
        spectrum = kmer_spectrum(sequence, k=4)
        assert sum(spectrum.values()) == 200 - 4 + 1

    def test_kmer_validated(self):
        with pytest.raises(ValueError):
            kmer_spectrum("ACGU", k=0)

    def test_kmer_known(self):
        assert kmer_spectrum("AAAA", k=2) == {"AA": 3}


class TestScalars:
    def test_chi2_small_for_uniform_generator(self, rng):
        sequence = random_rna(40_000, rng=rng)
        # 3 degrees of freedom: chi2 above ~16 would be p < 0.001.
        assert composition_chi2(sequence) < 16.0

    def test_chi2_large_for_biased_sequence(self):
        assert composition_chi2("G" * 1000) > 100

    def test_chi2_against_matching_target(self, rng):
        sequence = random_rna(40_000, rng=rng, gc_content=0.7)
        target = {"A": 0.15, "C": 0.35, "G": 0.35, "U": 0.15}
        assert composition_chi2(sequence, target) < 16.0

    def test_entropy_bounds(self, rng):
        assert shannon_entropy("AAAA") == 0.0
        assert shannon_entropy("ACGU") == pytest.approx(2.0)
        assert 1.9 < shannon_entropy(random_rna(20_000, rng=rng)) <= 2.0
