"""Tests for the validated sequence types."""

import pytest

from repro.seq import DnaSequence, ProteinSequence, RnaSequence, SequenceError
from repro.seq.sequence import as_protein, as_rna


class TestValidation:
    def test_rna_accepts_valid(self):
        assert RnaSequence("ACGU").letters == "ACGU"

    def test_rna_rejects_thymine(self):
        with pytest.raises(SequenceError):
            RnaSequence("ACGT")

    def test_dna_rejects_uracil(self):
        with pytest.raises(SequenceError):
            DnaSequence("ACGU")

    def test_protein_accepts_stop(self):
        assert ProteinSequence("MFW*").letters == "MFW*"

    def test_protein_rejects_invalid_letter(self):
        with pytest.raises(SequenceError):
            ProteinSequence("MFB")

    def test_error_names_offending_letters(self):
        with pytest.raises(SequenceError, match="X"):
            ProteinSequence("MXW")

    def test_empty_sequences_allowed(self):
        assert len(RnaSequence("")) == 0
        assert len(ProteinSequence("")) == 0


class TestBehaviour:
    def test_len_iter_index(self):
        seq = RnaSequence("ACGU")
        assert len(seq) == 4
        assert list(seq) == ["A", "C", "G", "U"]
        assert seq[1] == "C"

    def test_slice_preserves_type_and_name(self):
        seq = RnaSequence("ACGUACGU", name="r1")
        piece = seq[2:6]
        assert isinstance(piece, RnaSequence)
        assert piece.letters == "GUAC"
        assert piece.name == "r1"

    def test_equality_ignores_name(self):
        assert RnaSequence("ACG", name="a") == RnaSequence("ACG", name="b")

    def test_repr_truncates_long_sequences(self):
        seq = RnaSequence("A" * 100)
        assert "..." in repr(seq)
        assert "len=100" in repr(seq)

    def test_str_is_letters(self):
        assert str(ProteinSequence("MFW")) == "MFW"

    def test_hashable(self):
        assert {RnaSequence("ACG")} == {RnaSequence("ACG")}


class TestConversions:
    def test_dna_to_rna(self):
        assert DnaSequence("ACGT").to_rna() == RnaSequence("ACGU")

    def test_rna_to_dna(self):
        assert RnaSequence("ACGU").to_dna() == DnaSequence("ACGT")

    def test_reverse_complement_rna(self):
        assert RnaSequence("AACG").reverse_complement() == RnaSequence("CGUU")

    def test_reverse_complement_dna(self):
        assert DnaSequence("AACG").reverse_complement() == DnaSequence("CGTT")

    def test_codes(self):
        assert RnaSequence("ACGU").codes() == [0, 1, 2, 3]

    def test_three_letter_rendering(self):
        assert ProteinSequence("MF*").three_letter() == "Met-Phe-Stop"


class TestCoercions:
    def test_as_rna_passthrough(self):
        seq = RnaSequence("ACGU")
        assert as_rna(seq) is seq

    def test_as_rna_from_dna(self):
        assert as_rna(DnaSequence("ACGT")).letters == "ACGU"

    def test_as_rna_from_string_rna(self):
        assert as_rna("ACGU").letters == "ACGU"

    def test_as_rna_from_string_dna(self):
        assert as_rna("ACGT").letters == "ACGU"

    def test_as_rna_ambiguous_prefers_rna(self):
        assert isinstance(as_rna("ACCA"), RnaSequence)

    def test_as_rna_rejects_garbage(self):
        with pytest.raises(SequenceError):
            as_rna("HELLO WORLD")

    def test_as_rna_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            as_rna(42)

    def test_as_protein_from_string(self):
        assert as_protein("MFW").letters == "MFW"

    def test_as_protein_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            as_protein(3.14)
