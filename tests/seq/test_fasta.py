"""Tests for FASTA parsing/formatting."""

import pytest

from repro.seq import fasta


SAMPLE = """>seq1 first record
ACGU
ACGU
>seq2
GGGG

>seq3 empty
"""


class TestParsing:
    def test_parse_records(self):
        records = list(fasta.parse_fasta(SAMPLE))
        assert records == [
            ("seq1 first record", "ACGUACGU"),
            ("seq2", "GGGG"),
            ("seq3 empty", ""),
        ]

    def test_parse_uppercases(self):
        records = list(fasta.parse_fasta(">x\nacgu\n"))
        assert records == [("x", "ACGU")]

    def test_parse_requires_header(self):
        with pytest.raises(ValueError, match="header"):
            list(fasta.parse_fasta("ACGU\n"))

    def test_parse_empty_input(self):
        assert list(fasta.parse_fasta("")) == []

    def test_blank_lines_ignored(self):
        records = list(fasta.parse_fasta(">a\n\nAC\n\nGU\n"))
        assert records == [("a", "ACGU")]


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "db.fasta"
        records = [("r1", "ACGU" * 30), ("r2", "GG")]
        count = fasta.write_fasta(path, records)
        assert count == 2
        assert fasta.read_fasta(path) == records

    def test_wrapping(self):
        text = fasta.format_fasta([("x", "A" * 150)], width=70)
        lines = text.splitlines()
        assert lines[0] == ">x"
        assert len(lines[1]) == 70
        assert len(lines[2]) == 70
        assert len(lines[3]) == 10

    def test_no_wrapping(self):
        text = fasta.format_fasta([("x", "A" * 150)], width=0)
        assert text.splitlines()[1] == "A" * 150

    def test_read_proteins(self, tmp_path):
        path = tmp_path / "q.fasta"
        fasta.write_fasta(path, [("q1", "MFW"), ("q2", "ACDE")])
        proteins = fasta.read_proteins(path)
        assert [p.letters for p in proteins] == ["MFW", "ACDE"]
        assert proteins[0].name == "q1"

    def test_read_rna_transcribes_dna(self, tmp_path):
        path = tmp_path / "r.fasta"
        fasta.write_fasta(path, [("d", "ACGT"), ("r", "ACGU")])
        sequences = fasta.read_rna(path)
        assert [s.letters for s in sequences] == ["ACGU", "ACGU"]
