"""Tests for FASTA parsing/formatting."""

import pytest

from repro.seq import fasta


SAMPLE = """>seq1 first record
ACGU
ACGU
>seq2
GGGG

>seq3 empty
"""


class TestParsing:
    def test_parse_records(self):
        records = list(fasta.parse_fasta(SAMPLE))
        assert records == [
            ("seq1 first record", "ACGUACGU"),
            ("seq2", "GGGG"),
            ("seq3 empty", ""),
        ]

    def test_parse_uppercases(self):
        records = list(fasta.parse_fasta(">x\nacgu\n"))
        assert records == [("x", "ACGU")]

    def test_parse_requires_header(self):
        with pytest.raises(ValueError, match="header"):
            list(fasta.parse_fasta("ACGU\n"))

    def test_parse_empty_input(self):
        assert list(fasta.parse_fasta("")) == []

    def test_blank_lines_ignored(self):
        records = list(fasta.parse_fasta(">a\n\nAC\n\nGU\n"))
        assert records == [("a", "ACGU")]


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "db.fasta"
        records = [("r1", "ACGU" * 30), ("r2", "GG")]
        count = fasta.write_fasta(path, records)
        assert count == 2
        assert fasta.read_fasta(path) == records

    def test_wrapping(self):
        text = fasta.format_fasta([("x", "A" * 150)], width=70)
        lines = text.splitlines()
        assert lines[0] == ">x"
        assert len(lines[1]) == 70
        assert len(lines[2]) == 70
        assert len(lines[3]) == 10

    def test_no_wrapping(self):
        text = fasta.format_fasta([("x", "A" * 150)], width=0)
        assert text.splitlines()[1] == "A" * 150

    def test_read_proteins(self, tmp_path):
        path = tmp_path / "q.fasta"
        fasta.write_fasta(path, [("q1", "MFW"), ("q2", "ACDE")])
        proteins = fasta.read_proteins(path)
        assert [p.letters for p in proteins] == ["MFW", "ACDE"]
        assert proteins[0].name == "q1"

    def test_read_rna_transcribes_dna(self, tmp_path):
        path = tmp_path / "r.fasta"
        fasta.write_fasta(path, [("d", "ACGT"), ("r", "ACGU")])
        sequences = fasta.read_rna(path)
        assert [s.letters for s in sequences] == ["ACGU", "ACGU"]


DIRTY = """>good
ACGU
>
CCCC
>dup
GGGG
>dup
AAAA
>empty
>good2
UUUU
"""


class TestErrorHandling:
    """The ``on_error`` contract: None permissive, "raise" typed, "skip" quarantines."""

    def test_default_stays_permissive(self):
        # Historical behaviour: empties and duplicates pass through untouched.
        records = list(fasta.parse_fasta(DIRTY))
        assert len(records) == 6
        assert ("empty", "") in records

    def test_raise_mode_is_typed(self):
        with pytest.raises(fasta.FastaError) as excinfo:
            list(fasta.parse_fasta(DIRTY, on_error="raise"))
        assert excinfo.value.reason == "empty-header"
        assert excinfo.value.line == 3

    def test_raise_mode_duplicate_name(self):
        text = ">a\nAC\n>a\nGU\n"
        with pytest.raises(fasta.FastaError) as excinfo:
            list(fasta.parse_fasta(text, on_error="raise"))
        assert excinfo.value.reason == "duplicate-name"
        assert excinfo.value.header == "a"

    def test_raise_mode_empty_sequence(self):
        with pytest.raises(fasta.FastaError) as excinfo:
            list(fasta.parse_fasta(">a\n>b\nAC\n", on_error="raise"))
        assert excinfo.value.reason == "empty-sequence"

    def test_no_header_error_is_fasta_error(self):
        # The legacy ValueError contract still holds: FastaError subclasses it.
        with pytest.raises(fasta.FastaError) as excinfo:
            list(fasta.parse_fasta("ACGU\n", on_error="raise"))
        assert excinfo.value.reason == "no-header"
        assert isinstance(excinfo.value, ValueError)

    def test_skip_mode_quarantines_and_reports(self):
        skipped = []
        records = list(fasta.parse_fasta(DIRTY, on_error="skip", skipped=skipped))
        assert [h for h, _ in records] == ["good", "dup", "good2"]
        reasons = {(s.header, s.reason) for s in skipped}
        assert ("", "empty-header") in reasons
        assert ("dup", "duplicate-name") in reasons
        assert ("empty", "empty-sequence") in reasons
        # Every skipped record localizes the offender.
        assert all(s.line is not None for s in skipped)

    def test_skip_mode_handles_headerless_prefix(self):
        skipped = []
        records = list(
            fasta.parse_fasta("ACGU\n>ok\nGGGG\n", on_error="skip", skipped=skipped)
        )
        assert records == [("ok", "GGGG")]
        assert skipped[0].reason == "no-header"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            list(fasta.parse_fasta(">a\nAC\n", on_error="explode"))

    def test_read_rna_skip_quarantines_bad_letters(self, tmp_path):
        path = tmp_path / "dirty.fasta"
        path.write_text(">ok\nACGU\n>bad\nACGX\n>ok2\nGGGG\n")
        skipped = []
        sequences = fasta.read_rna(path, on_error="skip", skipped=skipped)
        assert [s.name for s in sequences] == ["ok", "ok2"]
        assert [(s.header, s.reason) for s in skipped] == [("bad", "bad-letters")]

    def test_read_rna_raise_wraps_alphabet_errors(self, tmp_path):
        path = tmp_path / "dirty.fasta"
        path.write_text(">bad\nACGX\n")
        with pytest.raises(fasta.FastaError) as excinfo:
            fasta.read_rna(path, on_error="raise")
        assert excinfo.value.reason == "bad-letters"
        assert excinfo.value.header == "bad"

    def test_read_proteins_skip(self, tmp_path):
        path = tmp_path / "q.fasta"
        path.write_text(">q1\nMFW\n>q2\nMF1\n")
        skipped = []
        proteins = fasta.read_proteins(path, on_error="skip", skipped=skipped)
        assert [p.letters for p in proteins] == ["MFW"]
        assert skipped[0].header == "q2"

    def test_skipped_record_str(self):
        record = fasta.SkippedRecord("acc123", "empty-sequence", 42)
        assert "acc123" in str(record)
        assert "42" in str(record)
