"""Tests for organism codon-usage tables and biased sampling."""

import numpy as np
import pytest

from repro.core.codons import CODON_TABLE, CODONS_FOR
from repro.seq.codon_usage import (
    ECOLI_USAGE_PER_THOUSAND,
    HUMAN_USAGE_PER_THOUSAND,
    CodonSampler,
    sampler,
    serine_agy_fraction,
)


class TestTables:
    @pytest.mark.parametrize("table", [HUMAN_USAGE_PER_THOUSAND, ECOLI_USAGE_PER_THOUSAND])
    def test_covers_all_codons(self, table):
        assert set(table) == set(CODON_TABLE)

    @pytest.mark.parametrize("table", [HUMAN_USAGE_PER_THOUSAND, ECOLI_USAGE_PER_THOUSAND])
    def test_totals_near_thousand(self, table):
        assert sum(table.values()) == pytest.approx(1000, rel=0.03)

    def test_known_biases(self):
        # CUG is the dominant Leu codon in both organisms.
        assert HUMAN_USAGE_PER_THOUSAND["CUG"] > HUMAN_USAGE_PER_THOUSAND["CUA"]
        assert ECOLI_USAGE_PER_THOUSAND["CUG"] > ECOLI_USAGE_PER_THOUSAND["CUA"]
        # E. coli strongly avoids AGG arginine; humans do not.
        assert ECOLI_USAGE_PER_THOUSAND["AGG"] < 2
        assert HUMAN_USAGE_PER_THOUSAND["AGG"] > 10


class TestSampler:
    def test_samples_only_synonymous_codons(self, rng):
        s = sampler("human")
        for amino in "LSRAG":
            for _ in range(20):
                codon = s.sample(amino, rng)
                assert CODON_TABLE[codon] == amino

    def test_relative_usage_normalized(self):
        s = sampler("human")
        for amino, codons in CODONS_FOR.items():
            usage = s.relative_usage(amino)
            assert set(usage) == set(codons)
            assert sum(usage.values()) == pytest.approx(1.0)

    def test_bias_observable(self, rng):
        s = sampler("ecoli")
        draws = [s.sample("L", rng) for _ in range(3000)]
        cug = draws.count("CUG") / len(draws)
        expected = s.relative_usage("L")["CUG"]
        assert cug == pytest.approx(expected, abs=0.05)
        assert cug > 0.3  # E. coli's CUG dominance

    def test_unknown_organism(self):
        with pytest.raises(KeyError, match="unknown organism"):
            sampler("yeti")

    def test_incomplete_table_rejected(self):
        with pytest.raises(ValueError, match="missing codons"):
            CodonSampler({"AUG": 1.0})


class TestSerineExposure:
    def test_agy_fraction_substantial(self):
        """The paper's dropped AGU/AGC box carries a real share of Ser."""
        human = serine_agy_fraction("human")
        ecoli = serine_agy_fraction("ecoli")
        assert 0.25 < human < 0.55
        assert 0.25 < ecoli < 0.55

    def test_builder_supports_organism_usage(self, rng):
        from repro.seq.translate import translate
        from repro.workloads.builder import encode_protein_as_rna

        rna = encode_protein_as_rna("MLSRAG", rng=rng, codon_usage="human")
        assert translate(rna).letters == "MLSRAG"
