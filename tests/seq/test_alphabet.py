"""Tests for repro.seq.alphabet — the normative encoding tables."""

import pytest

from repro.seq import alphabet


class TestEncoding:
    def test_rna_codes_match_paper(self):
        # §III-B: A=00, C=01, G=10, U=11.
        assert alphabet.RNA_CODE == {"A": 0, "C": 1, "G": 2, "U": 3}

    def test_dna_codes_mirror_rna(self):
        assert alphabet.DNA_CODE["T"] == alphabet.RNA_CODE["U"]
        for letter in "ACG":
            assert alphabet.DNA_CODE[letter] == alphabet.RNA_CODE[letter]

    def test_encode_decode_roundtrip(self):
        text = "ACGUUGCA"
        assert alphabet.decode_rna(alphabet.encode_rna(text)) == text

    def test_encode_rejects_bad_letters(self):
        with pytest.raises(KeyError):
            list(alphabet.encode_rna("ACGT"))  # T is not RNA

    def test_nucleotide_bits(self):
        assert alphabet.nucleotide_bits("A") == (0, 0)
        assert alphabet.nucleotide_bits("C") == (0, 1)
        assert alphabet.nucleotide_bits("G") == (1, 0)
        assert alphabet.nucleotide_bits("U") == (1, 1)

    def test_bits_reconstruct_code(self):
        for letter, code in alphabet.RNA_CODE.items():
            hi, lo = alphabet.nucleotide_bits(letter)
            assert (hi << 1) | lo == code


class TestAlphabets:
    def test_twenty_amino_acids(self):
        assert len(alphabet.AMINO_ACIDS) == 20
        assert len(set(alphabet.AMINO_ACIDS)) == 20

    def test_stop_in_extended_alphabet(self):
        assert alphabet.STOP_SYMBOL in alphabet.AMINO_ACIDS_WITH_STOP
        assert len(alphabet.AMINO_ACIDS_WITH_STOP) == 21

    def test_three_letter_names_cover_alphabet(self):
        for aa in alphabet.AMINO_ACIDS_WITH_STOP:
            assert aa in alphabet.THREE_LETTER
        assert alphabet.THREE_LETTER["F"] == "Phe"
        assert alphabet.THREE_LETTER["*"] == "Stop"

    def test_one_letter_inverse(self):
        for one, three in alphabet.THREE_LETTER.items():
            assert alphabet.ONE_LETTER[three] == one

    def test_is_rna_dna_protein(self):
        assert alphabet.is_rna("ACGU")
        assert not alphabet.is_rna("ACGT")
        assert alphabet.is_dna("ACGT")
        assert not alphabet.is_dna("ACGU")
        assert alphabet.is_protein("MFW*")
        assert not alphabet.is_protein("MFB")

    def test_empty_strings_are_valid(self):
        assert alphabet.is_rna("")
        assert alphabet.is_dna("")
        assert alphabet.is_protein("")


class TestTranscription:
    def test_dna_to_rna(self):
        assert alphabet.dna_to_rna("ACGT") == "ACGU"

    def test_rna_to_dna(self):
        assert alphabet.rna_to_dna("ACGU") == "ACGT"

    def test_roundtrip(self):
        assert alphabet.rna_to_dna(alphabet.dna_to_rna("GATTACA")) == "GATTACA"

    def test_complement_dna(self):
        assert alphabet.complement_dna("ACGT") == "TGCA"

    def test_reverse_complement_dna(self):
        assert alphabet.reverse_complement_dna("AACG") == "CGTT"

    def test_reverse_complement_rna(self):
        assert alphabet.reverse_complement_rna("AACG") == "CGUU"

    def test_reverse_complement_involution(self):
        seq = "ACGTTGCAAT"
        assert alphabet.reverse_complement_dna(alphabet.reverse_complement_dna(seq)) == seq
