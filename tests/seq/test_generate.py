"""Tests for seeded random sequence generation."""

import numpy as np
import pytest

from repro.core.codons import CODON_TABLE, STOP_CODONS
from repro.seq import alphabet
from repro.seq.generate import (
    UNIPROT_AA_FREQUENCIES,
    random_coding_rna,
    random_dna,
    random_protein,
    random_rna,
)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        assert random_rna(100, seed=7).letters == random_rna(100, seed=7).letters
        assert random_protein(50, seed=7).letters == random_protein(50, seed=7).letters

    def test_different_seeds_differ(self):
        assert random_rna(100, seed=1).letters != random_rna(100, seed=2).letters

    def test_rng_object_advances(self, rng):
        a = random_rna(50, rng=rng)
        b = random_rna(50, rng=rng)
        assert a.letters != b.letters


class TestRna:
    def test_length(self):
        assert len(random_rna(123, seed=0)) == 123

    def test_alphabet(self):
        letters = set(random_rna(500, seed=0).letters)
        assert letters <= set(alphabet.RNA_NUCLEOTIDES)

    def test_zero_length(self):
        assert len(random_rna(0, seed=0)) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            random_rna(-1, seed=0)

    def test_gc_content_bias(self):
        seq = random_rna(20_000, seed=0, gc_content=0.8).letters
        gc = (seq.count("G") + seq.count("C")) / len(seq)
        assert 0.77 < gc < 0.83

    def test_gc_content_validated(self):
        with pytest.raises(ValueError):
            random_rna(10, seed=0, gc_content=1.5)

    def test_dna_variant(self):
        seq = random_dna(200, seed=0)
        assert set(seq.letters) <= set(alphabet.DNA_NUCLEOTIDES)


class TestProtein:
    def test_length_and_alphabet(self):
        seq = random_protein(200, seed=0)
        assert len(seq) == 200
        assert set(seq.letters) <= set(alphabet.AMINO_ACIDS)

    def test_include_stop(self):
        seq = random_protein(10, seed=0, include_stop=True)
        assert len(seq) == 10
        assert seq.letters.endswith("*")
        assert "*" not in seq.letters[:-1]

    def test_uniprot_composition_biases_leucine(self):
        # Leu is the most common residue (~9.7 %); Trp the rarest (~1.1 %).
        seq = random_protein(50_000, seed=0, composition="uniprot").letters
        assert seq.count("L") / len(seq) > 0.07
        assert seq.count("W") / len(seq) < 0.03

    def test_uniform_composition(self):
        seq = random_protein(50_000, seed=0, composition="uniform").letters
        freq_l = seq.count("L") / len(seq)
        assert 0.03 < freq_l < 0.07  # ~1/20

    def test_unknown_composition_rejected(self):
        with pytest.raises(ValueError, match="composition"):
            random_protein(10, seed=0, composition="martian")

    def test_frequencies_sum_to_one(self):
        assert abs(sum(UNIPROT_AA_FREQUENCIES.values()) - 1.0) < 0.01


class TestCodingRna:
    def test_structure(self):
        seq = random_coding_rna(10, seed=0)
        assert len(seq) == 30
        assert seq.letters[:3] == "AUG"
        assert seq.letters[-3:] in STOP_CODONS

    def test_no_internal_stops(self):
        seq = random_coding_rna(50, seed=1).letters
        internal = [seq[i : i + 3] for i in range(3, len(seq) - 3, 3)]
        assert all(codon not in STOP_CODONS for codon in internal)
        assert all(codon in CODON_TABLE for codon in internal)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            random_coding_rna(1, seed=0)
