"""Tests for synthetic workload builders."""

import numpy as np
import pytest

from repro.core.aligner import align
from repro.core.codons import CODON_TABLE, CODONS_FOR
from repro.seq.translate import translate
from repro.workloads.builder import (
    build_database,
    encode_protein_as_rna,
    plant_homolog,
    sample_queries,
)


class TestEncodeProteinAsRna:
    def test_translates_back_to_protein(self, rng):
        queries = sample_queries(5, length=30, rng=rng)
        for query in queries:
            rna = encode_protein_as_rna(query, rng=rng)
            assert translate(rna).letters == query.letters

    def test_first_mode_deterministic(self):
        a = encode_protein_as_rna("MFW", codon_usage="first")
        b = encode_protein_as_rna("MFW", codon_usage="first")
        assert a == b
        assert a.letters == CODONS_FOR["M"][0] + CODONS_FOR["F"][0] + CODONS_FOR["W"][0]

    def test_uniform_mode_varies_codons(self, rng):
        rnas = {encode_protein_as_rna("LLLLLLLL", rng=rng).letters for _ in range(20)}
        assert len(rnas) > 1  # Leu has six codons; variety expected

    def test_paper_mode_avoids_agy_serine(self, rng):
        for _ in range(30):
            rna = encode_protein_as_rna("SSSS", rng=rng, codon_usage="paper").letters
            for start in range(0, 12, 3):
                assert rna[start : start + 3].startswith("UC")

    def test_paper_mode_regions_score_perfectly(self, rng):
        query = sample_queries(1, length=20, rng=rng)[0]
        rna = encode_protein_as_rna(query, rng=rng, codon_usage="paper")
        result = align(query, rna, threshold=60)
        assert len(result.hits) == 1


class TestPlantHomolog:
    def test_overwrite_semantics(self):
        assert plant_homolog("AAAAAAAA", "GGG", 2) == "AAGGGAAA"

    def test_length_preserved(self):
        assert len(plant_homolog("A" * 100, "G" * 10, 50)) == 100

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            plant_homolog("AAAA", "GGG", 3)
        with pytest.raises(ValueError):
            plant_homolog("AAAA", "GGG", -1)


class TestBuildDatabase:
    def test_ledger_matches_references(self, rng):
        queries = sample_queries(4, length=20, rng=rng)
        database = build_database(
            queries, num_references=2, reference_length=2000, rng=rng
        )
        assert len(database.planted) == 4
        for planting in database.planted:
            reference = database.references[planting.reference_index]
            region = reference.letters[
                planting.position : planting.position + len(planting.region)
            ]
            assert region == planting.region

    def test_clean_plantings_align_perfectly(self, rng):
        queries = sample_queries(3, length=15, rng=rng)
        database = build_database(
            queries,
            num_references=3,
            reference_length=2000,
            codon_usage="paper",
            rng=rng,
        )
        for query, planting in zip(queries, database.planted):
            result = align(query, database.references[planting.reference_index],
                           min_identity=0.99)
            assert any(h.position == planting.position for h in result.hits)

    def test_mutation_counters(self, rng):
        queries = sample_queries(2, length=30, rng=rng)
        database = build_database(
            queries,
            reference_length=3000,
            substitution_rate=0.2,
            indel_events=2,
            rng=rng,
        )
        for planting in database.planted:
            assert planting.indels == 2
            assert planting.has_indel
            assert planting.substitutions > 0

    def test_plants_per_query(self, rng):
        queries = sample_queries(2, length=10, rng=rng)
        database = build_database(
            queries, plants_per_query=3, reference_length=2000, rng=rng
        )
        assert len(database.planted) == 6

    def test_reference_too_short_rejected(self, rng):
        queries = sample_queries(1, length=100, rng=rng)
        with pytest.raises(ValueError, match="too short"):
            build_database(queries, reference_length=200, rng=rng)

    def test_planted_in_lookup(self, rng):
        queries = sample_queries(4, length=10, rng=rng)
        database = build_database(queries, num_references=2, reference_length=1500, rng=rng)
        by_ref = [database.planted_in(i) for i in range(2)]
        assert sum(len(p) for p in by_ref) == 4

    def test_total_nucleotides(self, rng):
        queries = sample_queries(1, length=10, rng=rng)
        database = build_database(
            queries, num_references=3, reference_length=1000, rng=rng
        )
        assert database.total_nucleotides == 3000


class TestSampleQueries:
    def test_count_and_length(self, rng):
        queries = sample_queries(5, length=25, rng=rng)
        assert len(queries) == 5
        assert all(len(q) == 25 for q in queries)

    def test_jitter(self, rng):
        queries = sample_queries(20, length=25, length_jitter=5, rng=rng)
        lengths = {len(q) for q in queries}
        assert len(lengths) > 1
        assert all(20 <= n <= 30 for n in lengths)

    def test_names_assigned(self, rng):
        queries = sample_queries(3, length=10, rng=rng)
        assert [q.name for q in queries] == ["query_0", "query_1", "query_2"]
