"""Tests for the gene-rich reference builder."""

import numpy as np
import pytest

from repro.core.codons import STOP_CODONS
from repro.seq.sequence import RnaSequence
from repro.seq.translate import translate
from repro.workloads.genomic import (
    GenomicReference,
    build_genomic_reference,
    plant_query_gene,
)


@pytest.fixture
def genome(rng):
    return build_genomic_reference(
        20_000, coding_fraction=0.5, organism="human", rng=rng
    )


class TestBuilder:
    def test_length_exact(self, genome):
        assert len(genome.sequence) == 20_000

    def test_coding_fraction_near_target(self, genome):
        assert 0.3 <= genome.coding_fraction <= 0.75

    def test_genes_annotated_correctly(self, genome):
        """Every + strand gene starts AUG and ends at a stop codon; every
        - strand gene does after reverse complementing."""
        text = genome.sequence.letters
        for gene in genome.genes:
            segment = text[gene.start : gene.end]
            assert len(segment) % 3 == 0
            if gene.strand == "-":
                segment = RnaSequence(segment).reverse_complement().letters
            assert segment.startswith("AUG")
            assert segment[-3:] in STOP_CODONS
            protein = translate(segment)
            assert len(protein) == gene.protein_length + 2  # start + stop

    def test_no_internal_stops_in_genes(self, genome):
        text = genome.sequence.letters
        for gene in genome.genes[:20]:
            segment = text[gene.start : gene.end]
            if gene.strand == "-":
                segment = RnaSequence(segment).reverse_complement().letters
            body = translate(segment).letters[:-1]
            assert "*" not in body

    def test_both_strands_used(self, genome):
        strands = {g.strand for g in genome.genes}
        assert strands == {"+", "-"}

    def test_deterministic(self):
        a = build_genomic_reference(5000, seed=9)
        b = build_genomic_reference(5000, seed=9)
        assert a.sequence == b.sequence
        assert a.genes == b.genes

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            build_genomic_reference(50, rng=rng)
        with pytest.raises(ValueError):
            build_genomic_reference(1000, coding_fraction=1.0, rng=rng)
        with pytest.raises(ValueError):
            build_genomic_reference(1000, antisense_fraction=2.0, rng=rng)

    def test_zero_coding(self, rng):
        genome = build_genomic_reference(3000, coding_fraction=0.0, rng=rng)
        assert genome.genes == ()


class TestPlanting:
    def test_planted_gene_recovered(self, genome, rng):
        from repro.core.aligner import align
        from repro.seq.generate import random_protein

        query = random_protein(30, rng=rng)
        planted, position = plant_query_gene(genome, query, rng=rng)
        result = align(query, planted.sequence, min_identity=0.85)
        assert any(abs(h.position - position) <= 2 for h in result.hits)

    def test_reference_too_short(self, rng):
        tiny = build_genomic_reference(150, coding_fraction=0.0, rng=rng)
        from repro.seq.generate import random_protein

        with pytest.raises(ValueError, match="too short"):
            plant_query_gene(tiny, random_protein(100, rng=rng), rng=rng)
