"""No /dev/shm segment survives a supervised scan killed mid-chunk.

A parallel supervised scan (workers > 1, so the packed image really is
published as a shared-memory segment) is started in a subprocess with a
permanent injected hang, SIGTERMed while the hung chunk is in flight, and
audited afterwards:

* the scan process dies *by* SIGTERM (the sweep re-raises, so the exit
  status is honest), and
* every segment its shmsan event log says was created is both unlinked in
  the log and absent from ``/dev/shm`` — the lazy SIGTERM sweep in
  :mod:`repro.host.scan` retired it on the way down.

``atexit`` does not run on signal death; without the sweep this test fails
with the segment stranded on disk.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"

SHM_DIR = Path("/dev/shm")


def run_cli(args, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    base = tmp_path_factory.mktemp("shm_survival")
    db = base / "db.fasta"
    queries = base / "q.fasta"
    generated = run_cli(
        [
            "generate",
            "--queries", "1",
            "--length", "20",
            "--references", "6",
            "--reference-length", "3000",
            "--seed", "23",
            "--out-db", str(db),
            "--out-queries", str(queries),
        ]
    )
    assert generated.returncode == 0, generated.stderr
    return base, db, queries


def wait_for(predicate, deadline_s, victim, what):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        if victim.poll() is not None:
            pytest.fail(f"scan exited early ({victim.returncode}) before {what}")
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {what}")


def _scan_pids(marker: str):
    """PIDs of live processes whose command line mentions ``marker``."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes()
        except OSError:
            continue
        if marker.encode() in cmdline:
            pids.append(int(entry.name))
    return pids


@pytest.mark.skipif(not SHM_DIR.is_dir(), reason="no /dev/shm on this platform")
def test_sigterm_mid_chunk_leaves_no_segment(workload):
    base, db, queries = workload
    log = base / "shmsan_events.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["FABP_SHMSAN"] = "1"
    env["FABP_SHMSAN_LOG"] = str(log)

    # Chunk 0 hangs on every attempt, so the scan is guaranteed to be
    # mid-chunk (never finished, never degraded-and-done) when the signal
    # lands; the generous timeout keeps the supervisor patiently waiting.
    victim = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "scan",
            "--query-file", str(queries),
            "--database", str(db),
            "--min-identity", "0.9",
            "--workers", "2",
            "--chunk-size", "1",
            "--backoff", "0.01",
            "--inject-faults", "0:hang:always",
            "--fault-hang-seconds", "45",
            "--chunk-timeout", "45",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    try:
        def segment_created():
            if not log.exists():
                return False
            return any(
                json.loads(line)["event"] == "create"
                for line in log.read_text().splitlines()
                if line.strip()
            )

        wait_for(segment_created, 60, victim, "the published segment")
        # Let the workers attach and the hung chunk get dispatched.
        time.sleep(0.5)
        victim.send_signal(signal.SIGTERM)
        victim.wait(timeout=30)
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30)

    # Honest exit status: the sweep re-raises SIGTERM after cleaning up.
    assert victim.returncode == -signal.SIGTERM, victim.returncode

    scan_pid = victim.pid
    events = [
        json.loads(line)
        for line in log.read_text().splitlines()
        if line.strip()
    ]
    created = {
        e["name"] for e in events
        if e["event"] == "create" and e["pid"] == scan_pid
    }
    unlinked = {
        e["name"] for e in events
        if e["event"] == "unlink" and e["pid"] == scan_pid
    }
    assert created, "scan never published a segment (test is vacuous)"
    # shmsan-verified: the dying process itself logged the unlink...
    assert created <= unlinked, (
        f"segments created but never unlinked: {created - unlinked}"
    )
    # ...and the kernel agrees: nothing survived in /dev/shm.
    survivors = [name for name in created if (SHM_DIR / name).exists()]
    assert not survivors, f"segments left in /dev/shm: {survivors}"

    # The workers must not outlive their supervisor either.  Forked
    # workers inherit sibling pipe ends, so parent death never surfaces
    # as EOF on their task pipes — the orphan watchdog in the worker
    # recv loop (and inside the injected hang) is what gets them out.
    # The idle worker notices within one poll period; the hung worker
    # within one sleep slice.
    deadline = time.monotonic() + 15.0
    marker = str(db)
    while time.monotonic() < deadline and _scan_pids(marker):
        time.sleep(0.2)
    orphans = _scan_pids(marker)
    for pid in orphans:  # don't pollute the box for later tests
        os.kill(pid, signal.SIGKILL)
    assert not orphans, f"worker processes outlived the scan: {orphans}"
