"""Integration: the full deployment stack in one scenario.

A multi-board cluster holds a sharded synthetic database with homologs
planted on both strands at realistic (human) codon usage and mild
divergence; short queries share fabric passes; raw FabP hits are verified
and E-value-ranked by the host rescoring pipeline.  Everything a
production user would chain together, in one test.
"""

import numpy as np
import pytest

from repro.accel.multi_query import MultiQueryScheduler
from repro.host import FabPCluster, FabPHost
from repro.seq.generate import random_protein, random_rna
from repro.seq.sequence import RnaSequence
from repro.workloads.builder import encode_protein_as_rna, sample_queries


@pytest.fixture
def deployment(rng):
    """3 references, 3 queries; one planting per query (one on - strand)."""
    queries = sample_queries(3, length=30, rng=rng)
    references = {}
    plantings = {}
    for index, query in enumerate(queries):
        region = encode_protein_as_rna(query, rng=rng, codon_usage="human").letters
        background = random_rna(6000, rng=rng).letters
        position = int(rng.integers(500, 5000))
        if index == 2:  # plant the third on the reverse strand
            region = RnaSequence(region).reverse_complement().letters
        text = background[:position] + region + background[position + len(region) :]
        name = f"chr{index}"
        references[name] = text
        plantings[query.name] = (name, position, "-" if index == 2 else "+")
    return queries, references, plantings


class TestFullDeployment:
    def test_cluster_search_with_rescoring(self, deployment):
        queries, references, plantings = deployment
        cluster = FabPCluster(2)
        for name, text in references.items():
            cluster.add_reference(text, name)

        for query in queries:
            name, position, strand = plantings[query.name]
            # Human codon usage can put Ser in the AGY box -> allow slack.
            merged = cluster.search(query, min_identity=0.85, both_strands=True)
            assert merged.hits, f"no hits for {query.name}"
            raw = [
                h
                for h in merged.hits
                if h.reference == name
                and abs(h.position - position) <= 2
                and h.strand == strand
            ]
            assert raw, f"planting missed for {query.name}"

            from repro.host.rescore import rescore_hits

            verified = rescore_hits(query, merged.hits, references, max_evalue=1e-4)
            assert verified.best is not None
            assert verified.best.hit.reference == name
            assert verified.best.alignment.identity > 0.9

    def test_multiquery_passes_cover_batch(self, deployment):
        queries, references, plantings = deployment
        scheduler = MultiQueryScheduler()
        reference = RnaSequence("".join(references.values()))
        passes, summary = scheduler.search_all(
            queries, reference, min_identity=0.85
        )
        assert summary["queries"] == 3.0
        assert summary["passes"] <= 2  # 30-aa queries co-reside
        assert summary["speedup"] > 1.4

    def test_host_pipeline_timing_composition(self, deployment, rng):
        from repro.host.session import batch_seconds

        queries, references, _ = deployment
        host = FabPHost()
        for name, text in references.items():
            host.add_reference(text, name)
        results = host.search_many(queries, min_identity=0.85)
        pipelined = batch_seconds(results, pipelined=True)
        serial = batch_seconds(results, pipelined=False)
        assert 0 < pipelined <= serial
