"""Graceful-drain integration test for ``fabp-repro serve`` (end to end).

A real daemon subprocess is booted under ``FABP_SHMSAN=1``, a scan is
submitted and read back over HTTP, then SIGTERM is sent.  The daemon must
finish queued work, report a drained summary, exit with the worst job
outcome (0 here), and leave nothing behind: no orphaned worker processes
and no leaked ``/dev/shm`` segments.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"

SHM_DIR = Path("/dev/shm")


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["FABP_SHMSAN"] = "1"
    return env


def run_cli(args, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=cli_env(),
    )


def child_pids(parent_pid):
    """PIDs whose direct parent is ``parent_pid`` (via /proc)."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        ppid = int(stat.rsplit(")", 1)[1].split()[1])
        if ppid == parent_pid:
            pids.append(int(entry.name))
    return pids


def pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def shm_entries():
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.iterdir()}


def http_json(url, body=None, timeout=30):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    base = tmp_path_factory.mktemp("service_drain")
    db = base / "db.fasta"
    queries = base / "q.fasta"
    generated = run_cli(
        [
            "generate",
            "--queries", "2",
            "--length", "16",
            "--references", "4",
            "--reference-length", "2000",
            "--seed", "17",
            "--out-db", str(db),
            "--out-queries", str(queries),
        ]
    )
    assert generated.returncode == 0, generated.stderr
    sequences = [
        line.strip()
        for line in queries.read_text().splitlines()
        if line and not line.startswith(">")
    ]
    return base, db, sequences


def test_serve_drains_cleanly_on_sigterm(workload):
    base, db, sequences = workload
    ready = base / "ready.txt"
    metrics_json = base / "metrics.json"
    shm_before = shm_entries()
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli",
            "serve",
            "--database", str(db),
            "--port", "0",
            "--workers", "1",
            "--ready-file", str(ready),
            "--metrics-json", str(metrics_json),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=cli_env(),
    )
    observed = set()
    try:
        deadline = time.monotonic() + 60
        while not ready.exists():
            assert time.monotonic() < deadline, "ready file never appeared"
            assert daemon.poll() is None, daemon.communicate()[1]
            time.sleep(0.05)
        host, port = ready.read_text().split()
        root = f"http://{host}:{port}"

        code, body = http_json(
            f"{root}/scan", {"query": sequences[0], "min_identity": 0.9}
        )
        assert code == 202
        job_id = body["id"]
        deadline = time.monotonic() + 60
        while True:
            observed.update(child_pids(daemon.pid))
            code, result = http_json(f"{root}/results/{job_id}")
            if code == 200:
                break
            assert code == 202, result
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.05)
        assert result["exit_code"] == 0 and result["results"]

        # Queue a second job and SIGTERM immediately after: the drain must
        # still answer it before the listener goes down.
        code, body = http_json(f"{root}/scan", {"query": sequences[1]})
        assert code == 202
        observed.update(child_pids(daemon.pid))
        daemon.send_signal(signal.SIGTERM)
        out, err = daemon.communicate(timeout=120)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=30)

    assert daemon.returncode == 0, (out, err)
    assert "drained:" in out
    assert "2 done, 0 failed" in out

    # The second job completed during the drain (visible in the summary
    # above) and the metrics snapshot survived to disk.
    payload = json.loads(metrics_json.read_text())
    families = {m["name"] for m in payload["metrics"]}
    assert "fabp_service_jobs_total" in families
    assert "fabp_service_requests_total" in families

    # Nothing survives: no orphaned pool workers, no /dev/shm leaks.
    for pid in observed:
        assert not pid_alive(pid), f"worker {pid} outlived the daemon"
    assert shm_entries() <= shm_before
