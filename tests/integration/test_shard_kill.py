"""Kill-one-shard-runtime integration test (shard supervision, end to end).

A sharded CLI scan is started in a subprocess with a hang injected into
shard 1's second chunk, so the shard durably checkpoints chunk 0 and then
stalls.  Once shard 0's runner has finished and only the hung runner is
left, that runner is SIGKILLed from outside — the supervisor must notice
the death, respawn the shard with ``resume=True``, replay only the
unfinished chunk, and finish with output bit-identical to an uninterrupted
sharded scan.  Afterwards nothing may survive: no orphaned runner
processes and no leaked ``/dev/shm`` segments (the CLI runs under
``FABP_SHMSAN=1``).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"

SHM_DIR = Path("/dev/shm")


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["FABP_SHMSAN"] = "1"
    return env


def run_cli(args, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=cli_env(),
    )


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    # 6 references x 20000 nt split into 2 shards: each shard holds 60000
    # positions = two session chunks, so a mid-shard kill leaves exactly
    # one durable checkpoint behind.
    base = tmp_path_factory.mktemp("shard_kill")
    db = base / "db.fasta"
    queries = base / "q.fasta"
    generated = run_cli(
        [
            "generate",
            "--queries", "1",
            "--length", "20",
            "--references", "6",
            "--reference-length", "20000",
            "--seed", "11",
            "--out-db", str(db),
            "--out-queries", str(queries),
        ]
    )
    assert generated.returncode == 0, generated.stderr
    return base, db, queries


def scan_args(db, queries, *extra):
    return [
        "scan",
        "--query-file", str(queries),
        "--database", str(db),
        "--min-identity", "0.9",
        "--shards", "2",
        "--backoff", "0.01",
        *extra,
    ]


def hits_from(report_path):
    payload = json.loads(Path(report_path).read_text())
    return [
        (q["query"], q["num_hits"], q["report"]["clean"])
        for q in payload["queries"]
    ]


def child_pids(parent_pid):
    """PIDs whose direct parent is ``parent_pid`` (via /proc)."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        # field 4 (after the parenthesized comm, which may contain spaces)
        ppid = int(stat.rsplit(")", 1)[1].split()[1])
        if ppid == parent_pid:
            pids.append(int(entry.name))
    return pids


def pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def shm_entries():
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.iterdir()}


def test_killed_shard_runtime_resumes_to_identical_results(workload):
    base, db, queries = workload
    clean_report = base / "clean.json"
    clean = run_cli(
        scan_args(db, queries, "--report-json", str(clean_report))
    )
    assert clean.returncode == 0, clean.stderr

    # Shard 1 checkpoints chunk 0, then hangs on chunk 1 of attempt 0
    # (--chunk-timeout 0 disables the shard deadline, so only an external
    # SIGKILL can end the stall).  The fault covers one attempt: the
    # respawned runner is fault-free.
    ckpt = base / "ckpt"
    resumed_report = base / "resumed.json"
    shm_before = shm_entries()
    victim = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli",
            *scan_args(
                db, queries,
                "--checkpoint", str(ckpt),
                "--shard-faults", "shard:1:hang:1",
                "--fault-hang-seconds", "600",
                "--chunk-timeout", "0",
                "--report-json", str(resumed_report),
            ),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=cli_env(),
    )
    observed = set()
    try:
        # Wait until shard 1's checkpoint is durable and shard 0's runner
        # has exited — the lone surviving child *is* the hung shard runtime.
        deadline = time.monotonic() + 90
        marker = ckpt / "shard_01" / "chunk_000000.npz"
        runner = None
        while time.monotonic() < deadline:
            children = child_pids(victim.pid)
            observed.update(children)
            if marker.exists() and len(children) == 1:
                runner = children[0]
                break
            if victim.poll() is not None:
                pytest.fail(f"scan exited early with {victim.returncode}")
            time.sleep(0.05)
        else:
            pytest.fail("hung shard runner never isolated")
        os.kill(runner, signal.SIGKILL)
        victim.wait(timeout=120)
    finally:
        if victim.poll() is None:
            victim.kill()
        victim.wait(timeout=30)

    # The supervisor must have respawned the shard and finished cleanly.
    assert victim.returncode == 0
    assert hits_from(resumed_report) == hits_from(clean_report)

    payload = json.loads(resumed_report.read_text())
    report = payload["queries"][0]["report"]
    assert report["version"] == 3
    shards = {s["shard"]: s for s in report["shards"]}
    assert shards[0]["status"] == "ok" and shards[0]["attempts"] == 1
    assert shards[1]["status"] == "ok" and shards[1]["attempts"] == 2
    # The respawn restored chunk 0 from the checkpoint and replayed only
    # the chunk its predecessor never finished.
    assert shards[1]["resumed_chunks"] >= 1
    outcomes = [
        a["outcome"] for a in report["chunk_attempts"] if a["chunk"] == 1
    ]
    assert "crash" in outcomes and outcomes[-1] == "ok"

    # Nothing survives the scan: every runner we ever observed is gone...
    for pid in observed:
        assert not pid_alive(pid), f"shard runner {pid} outlived the scan"
    # ...and no shared-memory segment leaked past the sanitized CLI run.
    assert shm_entries() <= shm_before


def test_dead_shard_degrades_to_partial_results(workload):
    base, db, queries = workload
    report_path = base / "dead.json"
    result = run_cli(
        scan_args(
            db, queries,
            "--retries", "1",
            "--shard-faults", "shard:0:crash:0:always",
            "--report-json", str(report_path),
        )
    )
    # Exit 4: complete, but with dead shards and partial results.
    assert result.returncode == 4, result.stderr
    assert "DEAD SHARD 0" in result.stdout
    payload = json.loads(report_path.read_text())
    assert payload["dead_shards"] is True
    report = payload["queries"][0]["report"]
    shards = {s["shard"]: s for s in report["shards"]}
    assert shards[0]["status"] == "dead"
    assert "health budget exhausted" in shards[0]["detail"]
    assert shards[1]["status"] == "ok"
