"""Kill-and-resume integration test (ISSUE acceptance criterion #2).

A checkpointed scan is started in a subprocess with an injected hang so it
deterministically stalls partway through, SIGKILLed once the completed
chunks are on disk, then resumed without faults.  The resumed run must
finish cleanly from the checkpoint and produce output identical to an
uninterrupted scan.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"


def run_cli(args, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    base = tmp_path_factory.mktemp("kill_resume")
    db = base / "db.fasta"
    queries = base / "q.fasta"
    generated = run_cli(
        [
            "generate",
            "--queries", "1",
            "--length", "20",
            "--references", "4",
            "--reference-length", "3000",
            "--seed", "11",
            "--out-db", str(db),
            "--out-queries", str(queries),
        ]
    )
    assert generated.returncode == 0, generated.stderr
    return base, db, queries


def scan_args(db, queries, *extra):
    return [
        "scan",
        "--query-file", str(queries),
        "--database", str(db),
        "--min-identity", "0.9",
        "--workers", "1",
        "--chunk-size", "1",
        "--backoff", "0.01",
        *extra,
    ]


def hits_from(report_path):
    payload = json.loads(Path(report_path).read_text())
    return [
        (q["query"], q["num_hits"], q["report"]["clean"])
        for q in payload["queries"]
    ]


def test_killed_scan_resumes_to_identical_results(workload):
    base, db, queries = workload
    clean_report = base / "clean.json"
    clean = run_cli(
        scan_args(db, queries, "--report-json", str(clean_report))
    )
    assert clean.returncode == 0, clean.stderr

    # Start a checkpointed scan that hangs on chunk 2 (serial-mode hangs
    # genuinely sleep), so chunks 0 and 1 are durably checkpointed before
    # the process stalls — then kill it dead.
    ckpt = base / "ckpt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    victim = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli",
            *scan_args(
                db, queries,
                "--checkpoint", str(ckpt),
                "--inject-faults", "2:hang",
                "--fault-hang-seconds", "600",
                "--chunk-timeout", "0",
            ),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    try:
        deadline = time.monotonic() + 60
        expected = {"chunk_000000.npz", "chunk_000001.npz"}
        while time.monotonic() < deadline:
            written = {p.name for p in ckpt.glob("chunk_*.npz")}
            if expected <= written:
                break
            if victim.poll() is not None:
                pytest.fail(f"scan exited early with {victim.returncode}")
            time.sleep(0.05)
        else:
            pytest.fail(f"checkpoint never materialized; saw {written}")
        victim.send_signal(signal.SIGKILL)
    finally:
        if victim.poll() is None:
            victim.kill()
        victim.wait(timeout=30)

    # The stalled chunk must not have been checkpointed.
    assert not (ckpt / "chunk_000002.npz").exists()

    resumed_report = base / "resumed.json"
    resumed = run_cli(
        scan_args(
            db, queries,
            "--checkpoint", str(ckpt),
            "--resume",
            "--report-json", str(resumed_report),
        )
    )
    assert resumed.returncode == 0, resumed.stderr
    assert hits_from(resumed_report) == hits_from(clean_report)

    payload = json.loads(resumed_report.read_text())
    report = payload["queries"][0]["report"]
    assert report["resumed"] is True
    assert report["clean"] is True
    # Chunks 0 and 1 came from the checkpoint, untouched; only the
    # interrupted tail was scanned.
    assert report["chunks"]["from_checkpoint"] >= 2
    rescored = {a["chunk"] for a in report["chunk_attempts"]}
    assert rescored <= {2, 3}


def test_resume_refuses_foreign_checkpoint(workload):
    base, db, queries = workload
    ckpt = base / "ckpt_mismatch"
    first = run_cli(scan_args(db, queries, "--checkpoint", str(ckpt)))
    assert first.returncode == 0, first.stderr
    # Same checkpoint, different scan parameters: must die loudly, not mix.
    second = run_cli(
        scan_args(
            db, queries,
            "--min-identity", "0.8",
            "--checkpoint", str(ckpt),
            "--resume",
        )
    )
    assert second.returncode == 1
    assert "fatal" in second.stderr
