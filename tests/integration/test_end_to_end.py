"""Integration tests: the full pipeline across module boundaries."""

import numpy as np
import pytest

from repro import align, encode_query, search_database
from repro.accel.kernel import FabPKernel
from repro.accel.rtl_kernel import RtlKernel
from repro.baselines.tblastn import Tblastn
from repro.core.aligner import alignment_scores
from repro.seq import fasta
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import build_database, sample_queries


class TestDatabaseSearchFlow:
    """FASTA -> queries/references -> FabP search -> hits, like a real user."""

    def test_fasta_roundtrip_search(self, tmp_path, rng):
        queries = sample_queries(2, length=25, rng=rng)
        database = build_database(
            queries,
            num_references=3,
            reference_length=4000,
            codon_usage="paper",
            rng=rng,
        )
        db_path = tmp_path / "refs.fasta"
        fasta.write_fasta(
            db_path, [(r.name, r.letters) for r in database.references]
        )
        references = fasta.read_rna(db_path)
        for query, planting in zip(queries, database.planted):
            results = search_database(query, references, min_identity=0.95)
            hits = [
                (i, h.position)
                for i, result in enumerate(results)
                for h in result.hits
            ]
            assert (planting.reference_index, planting.position) in hits

    def test_three_implementations_agree(self, rng):
        """Golden aligner, streaming kernel, and LUT-level RTL all agree."""
        query = random_protein(5, rng=rng)
        reference = random_rna(400, rng=rng)
        threshold = 9
        golden = align(query, reference, threshold=threshold)
        kernel = FabPKernel(query, threshold=threshold)
        streamed = kernel.run(reference)
        rtl = RtlKernel(query, instances=2, threshold=threshold)
        rtl_scores, rtl_hits = rtl.run(reference)
        assert streamed.hits == golden.hits
        assert tuple(rtl_hits) == golden.hits
        assert np.array_equal(rtl_scores, alignment_scores(query, reference))


class TestFabPVsTblastn:
    """Cross-tool agreement on planted homologs (the paper's accuracy story)."""

    def test_both_find_clean_homolog(self, rng):
        queries = sample_queries(3, length=35, rng=rng)
        database = build_database(
            queries,
            num_references=3,
            reference_length=5000,
            codon_usage="paper",
            rng=rng,
        )
        for query, planting in zip(queries, database.planted):
            reference = database.references[planting.reference_index]
            fabp = align(query, reference, min_identity=0.9)
            assert any(h.position == planting.position for h in fabp.hits)
            tbl = Tblastn(query).search(reference)
            assert any(
                abs(h.nucleotide_start - planting.position) <= 3 for h in tbl.hsps
            )

    def test_fabp_finds_what_substitutions_leave(self, rng):
        queries = sample_queries(3, length=40, rng=rng)
        database = build_database(
            queries,
            num_references=3,
            reference_length=5000,
            substitution_rate=0.03,
            codon_usage="paper",
            rng=rng,
        )
        found = 0
        for query, planting in zip(queries, database.planted):
            reference = database.references[planting.reference_index]
            result = align(query, reference, min_identity=0.8)
            if any(abs(h.position - planting.position) <= 2 for h in result.hits):
                found += 1
        assert found == len(queries)


class TestThresholdSemantics:
    def test_kernel_threshold_equals_golden_threshold(self, rng):
        query = random_protein(10, rng=rng)
        kernel = FabPKernel(query, min_identity=0.7)
        from repro.core.aligner import resolve_threshold

        assert kernel.threshold == resolve_threshold(encode_query(query), None, 0.7)

    def test_stricter_threshold_subset(self, rng):
        query = random_protein(6, rng=rng)
        reference = random_rna(2000, rng=rng)
        loose = align(query, reference, threshold=10)
        strict = align(query, reference, threshold=14)
        loose_set = {(h.position, h.score) for h in loose.hits}
        assert {(h.position, h.score) for h in strict.hits} <= loose_set
