"""The documentation stays consistent: nav complete, links resolve.

Runs ``tools/check_docs.py`` (the dependency-free checker CI pairs with
the mkdocs build) inside the regular suite, so a broken intra-repo link
or an orphaned docs page fails ``pytest`` locally — not just in CI.
"""

import importlib.util
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_docs.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_are_clean():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_nav_covers_every_docs_page():
    checker = _load_checker()
    nav = checker.nav_pages(REPO / "mkdocs.yml")
    pages = {p.name for p in (REPO / "docs").glob("*.md")}
    assert pages == set(nav) & pages  # no orphans
    assert set(nav) <= pages  # no dangling nav entries


def test_checker_flags_broken_link(tmp_path):
    checker = _load_checker()
    page = tmp_path / "page.md"
    page.write_text("see [missing](nope.md) and [bad](index.md#no-such)\n")
    (tmp_path / "index.md").write_text("# Title\n")
    errors = []
    checker.check_links(page, errors)
    assert len(errors) == 2
    assert "nope.md" in errors[0]
    assert "no-such" in errors[1]


def test_anchor_slugs_match_github_style():
    checker = _load_checker()
    robustness = REPO / "docs" / "robustness.md"
    anchors = checker.heading_anchors(robustness)
    # The exit-code contract anchor is load-bearing: index.md links to it.
    assert "exit-code-contract" in anchors


def test_rule_registry_and_static_analysis_page_agree():
    checker = _load_checker()
    errors = []
    checker.check_rule_anchors(errors)
    assert errors == []


def test_rule_anchor_check_catches_drift():
    """The anchor check is demonstrably capable of failing, both directions."""
    checker = _load_checker()
    registered = checker.registered_static_rules()
    assert {"RC001", "RC008", "OB001", "OB004"} <= registered
    page = REPO / "docs" / "static_analysis.md"
    documented = {
        match.group(1).upper()
        for anchor in checker.heading_anchors(page)
        for match in [checker.RULE_ANCHOR_RE.match(anchor)]
        if match
    }
    assert documented == registered


def test_code_fences_are_not_scanned(tmp_path):
    checker = _load_checker()
    page = tmp_path / "fenced.md"
    page.write_text("```\n[fake](missing.md)\n```\n")
    errors = []
    checker.check_links(page, errors)
    assert errors == []


def test_cli_surface_and_docs_agree():
    checker = _load_checker()
    errors = []
    checker.check_cli_surface(errors)
    assert errors == []


def test_cli_subcommand_scrape_sees_the_real_parser():
    checker = _load_checker()
    registered = checker.cli_subcommands()
    assert {"scan", "serve", "bench", "encode", "prove"} <= registered
    # Nested subcommands (obs summarize) are not top-level surface...
    assert "summarize" not in registered
    # ...but `obs` itself is.
    assert "obs" in registered


def test_cli_mention_scrape_reads_code_fences(tmp_path):
    checker = _load_checker()
    page = tmp_path / "walkthrough.md"
    page.write_text("```bash\nfabp-repro serve --port 0\n```\n")
    mentions = checker.documented_subcommands([page])
    assert "serve" in mentions


def test_cli_surface_check_catches_drift():
    """Both directions of the subcommand check can actually fail."""
    checker = _load_checker()
    registered = checker.cli_subcommands()
    pages = sorted((REPO / "docs").glob("*.md"))
    pages += [REPO / name for name in checker.EXTRA_FILES
              if (REPO / name).exists()]
    mentions = checker.documented_subcommands(pages)
    # every registered subcommand is documented, and no mention dangles
    assert registered <= set(mentions)
    assert set(mentions) <= registered
