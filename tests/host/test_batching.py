"""Tests for pipelined batch timing and E-value-ranked TBLASTN results."""

import numpy as np
import pytest

from repro.host.session import FabPHost, batch_seconds
from repro.seq.generate import random_protein, random_rna


class TestBatchSeconds:
    @pytest.fixture
    def results(self, rng):
        host = FabPHost()
        host.add_references([random_rna(256 * 20, rng=rng) for _ in range(2)])
        queries = [random_protein(10, rng=rng) for _ in range(4)]
        return host.search_many(queries, min_identity=0.9)

    def test_pipelined_not_slower(self, results):
        assert batch_seconds(results, pipelined=True) <= batch_seconds(
            results, pipelined=False
        )

    def test_serial_is_sum(self, results):
        expected = sum(r.total_seconds for r in results)
        assert batch_seconds(results, pipelined=False) == pytest.approx(expected)

    def test_pipelined_bounded_below_by_compute(self, results):
        kernel_total = sum(r.kernel_seconds for r in results)
        assert batch_seconds(results, pipelined=True) >= kernel_total

    def test_empty_batch(self):
        assert batch_seconds([]) == 0.0


class TestTblastnEvalueRanking:
    def test_planted_hit_most_significant(self, rng):
        from repro.baselines.tblastn import Tblastn
        from repro.workloads.builder import encode_protein_as_rna

        query = random_protein(40, rng=rng)
        region = encode_protein_as_rna(query, rng=rng).letters
        background = random_rna(5000, rng=rng).letters
        reference = background[:2500] + region + background[2500:]
        result = Tblastn(query).search(reference)
        ranked = result.ranked_by_evalue(len(query), len(reference))
        assert ranked
        top_hsp, top_evalue = ranked[0]
        assert abs(top_hsp.nucleotide_start - 2500) <= 3
        assert top_evalue < 1e-10
        evalues = [e for _, e in ranked]
        assert evalues == sorted(evalues)

    def test_empty_result_ranks_empty(self, rng):
        from repro.baselines.tblastn import Tblastn

        query = random_protein(30, rng=rng)
        result = Tblastn(query).search(random_rna(1500, rng=rng))
        ranked = result.ranked_by_evalue(len(query), 1500)
        assert len(ranked) == len(result.hsps)


class TestGzipFasta:
    def test_roundtrip(self, tmp_path, rng):
        from repro.seq import fasta

        path = tmp_path / "db.fasta.gz"
        records = [("r1", random_rna(500, rng=rng).letters), ("r2", "ACGU")]
        fasta.write_fasta(path, records)
        assert fasta.read_fasta(path) == records
        # It really is gzip on disk.
        import gzip

        with gzip.open(path, "rt") as handle:
            assert handle.read(3) == ">r1"

    def test_host_loads_gzip(self, tmp_path, rng):
        from repro.seq import fasta

        path = tmp_path / "db.fasta.gz"
        fasta.write_fasta(path, [("r", random_rna(400, rng=rng).letters)])
        host = FabPHost()
        assert host.load_fasta(path) == 1
