"""Tests for the host runtime (database management, multi-channel search)."""

import numpy as np
import pytest

from repro.accel.device import KINTEX7, LARGE_FPGA
from repro.core.aligner import align
from repro.host.session import FabPHost
from repro.seq import fasta
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import build_database, sample_queries


class TestDatabaseManagement:
    def test_add_reference_from_types(self, rng):
        host = FabPHost()
        host.add_reference(random_rna(500, rng=rng, name="r0"))
        host.add_reference("ACGU" * 100)
        host.add_reference(np.zeros(256, dtype=np.uint8), name="zeros")
        assert host.num_references == 3
        assert host.database_nucleotides == 500 + 400 + 256

    def test_names_default_and_explicit(self, rng):
        host = FabPHost()
        entry1 = host.add_reference(random_rna(100, rng=rng))
        entry2 = host.add_reference(random_rna(100, rng=rng, name="named"))
        assert entry1.name == "ref_0"
        assert entry2.name == "named"

    def test_load_fasta(self, tmp_path, rng):
        path = tmp_path / "db.fasta"
        fasta.write_fasta(
            path,
            [("a", random_rna(300, rng=rng).letters), ("b", "ACGT" * 50)],
        )
        host = FabPHost()
        assert host.load_fasta(path) == 2
        assert host.num_references == 2

    def test_channel_striping_balances_bytes(self, rng):
        host = FabPHost(LARGE_FPGA)  # 4 channels
        for _ in range(8):
            host.add_reference(random_rna(1000, rng=rng))
        channels = [e.channel for e in host.entries]
        assert set(channels) == {0, 1, 2, 3}

    def test_entries_accessor_is_read_only_view(self, rng):
        host = FabPHost()
        added = [
            host.add_reference(random_rna(200, rng=rng, name=f"r{i}"))
            for i in range(3)
        ]
        assert isinstance(host.entries, tuple)
        assert list(host.entries) == added
        assert [e.name for e in host.entries] == ["r0", "r1", "r2"]

    def test_upload_time_positive(self, rng):
        host = FabPHost()
        host.add_reference(random_rna(4000, rng=rng))
        assert host.database_upload_seconds() > 0

    def test_empty_database_rejected(self, rng):
        host = FabPHost()
        with pytest.raises(ValueError, match="empty"):
            host.search(random_protein(5, rng=rng))


class TestSearch:
    def test_hits_match_golden_aligner(self, rng):
        host = FabPHost()
        references = [random_rna(800, rng=rng, name=f"r{i}") for i in range(3)]
        host.add_references(references)
        query = random_protein(6, rng=rng)
        result = host.search(query, threshold=12)
        expected = set()
        for reference in references:
            for hit in align(query, reference, threshold=12).hits:
                expected.add((reference.name, hit.position, hit.score))
        got = {(h.reference, h.position, h.score) for h in result.hits}
        assert got == expected

    def test_hits_sorted_by_score(self, rng):
        host = FabPHost()
        host.add_references([random_rna(2000, rng=rng, name="r")])
        result = host.search(random_protein(4, rng=rng), threshold=6)
        scores = [h.score for h in result.hits]
        assert scores == sorted(scores, reverse=True)

    def test_planted_workload_end_to_end(self, rng):
        queries = sample_queries(2, length=25, rng=rng)
        database = build_database(
            queries,
            num_references=2,
            reference_length=4000,
            codon_usage="paper",
            rng=rng,
        )
        host = FabPHost()
        host.add_references(list(database.references))
        for query, planting in zip(queries, database.planted):
            result = host.search(query, min_identity=0.95)
            names = {
                (h.reference, h.position)
                for h in result.hits
            }
            expected_name = database.references[planting.reference_index].name
            assert (expected_name, planting.position) in names

    def test_multichannel_faster_than_single(self, rng):
        references = [random_rna(256 * 30, rng=rng, name=f"r{i}") for i in range(4)]
        query = random_protein(10, rng=rng)
        single = FabPHost(KINTEX7)
        single.add_references(references)
        multi = FabPHost(LARGE_FPGA)
        multi.add_references(references)
        t_single = single.search(query, min_identity=0.9).kernel_seconds
        t_multi = multi.search(query, min_identity=0.9).kernel_seconds
        assert t_multi < t_single

    def test_channel_cycles_accounting(self, rng):
        host = FabPHost(LARGE_FPGA)
        host.add_references([random_rna(2000, rng=rng) for _ in range(4)])
        result = host.search(random_protein(8, rng=rng), min_identity=0.9)
        assert len(result.channel_cycles) == 4
        assert sum(result.channel_cycles) == result.total_cycles

    def test_search_many(self, rng):
        host = FabPHost()
        host.add_references([random_rna(600, rng=rng)])
        queries = [random_protein(5, rng=rng) for _ in range(3)]
        results = host.search_many(queries, threshold=10)
        assert len(results) == 3

    def test_transfer_time_in_total(self, rng):
        host = FabPHost()
        host.add_references([random_rna(600, rng=rng)])
        result = host.search(random_protein(5, rng=rng), threshold=10)
        assert result.total_seconds >= result.kernel_seconds
        assert result.transfer_seconds > 0

    def test_best_hit_and_str(self, rng):
        host = FabPHost()
        host.add_references([random_rna(600, rng=rng, name="r")])
        result = host.search(random_protein(4, rng=rng), threshold=4)
        assert result.best_hit is not None
        assert result.best_hit.score == max(h.score for h in result.hits)
        assert "HostSearchResult" in str(result)
        assert "r:" in str(result.best_hit)
