"""Tests for the supervised fault-tolerant scan runtime.

The acceptance bar (ISSUE): a scan running under a seeded FaultPlan with
crashes, hangs and corrupt results must produce bit-identical output to a
fault-free serial scan, and a checkpointed scan must resume to identical
results without rescoring completed chunks.
"""

import numpy as np
import pytest

from repro.core.encoding import encode_query
from repro.host import scan as scan_mod
from repro.host.errors import (
    CheckpointMismatchError,
    ChunkFailedError,
    ScanError,
)
from repro.host.faults import ALWAYS, FaultKind, FaultPlan, FaultSpec
from repro.host.resilience import (
    RetryPolicy,
    ScanReport,
    check_chunk_payload,
    corrupt_payload,
    supervised_scan,
)
from repro.host.scan import PackedDatabase, scan_database

THRESHOLD = 4

#: A policy tuned for tests: fast backoff, short timeouts.
FAST = RetryPolicy(max_retries=3, timeout=2.0, backoff=0.01, backoff_max=0.05, seed=1)


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(0xFAB9)
    refs = [
        rng.integers(0, 4, size=n, dtype=np.uint8)
        for n in (300, 500, 420, 380, 610, 290, 350, 470)
    ]
    return PackedDatabase.from_references(refs)


@pytest.fixture(scope="module")
def query():
    return encode_query("MKV")


@pytest.fixture(scope="module")
def baseline(query, database):
    """Fault-free serial results: the bit-identity oracle."""
    return scan_database(query, database, threshold=THRESHOLD, workers=1)


def assert_identical(results, baseline):
    assert len(results) == len(baseline)
    for ours, expected in zip(results, baseline):
        assert ours.reference_name == expected.reference_name
        assert ours.reference_length == expected.reference_length
        assert ours.hits == expected.hits


class TestSerialSupervised:
    def test_bit_identical_without_faults(self, query, database, baseline):
        out = supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=2, policy=FAST,
        )
        assert_identical(out.results, baseline)
        assert out.report.mode == "serial"
        assert out.report.clean
        assert out.report.exit_code() == 0
        assert out.report.chunks_completed == out.report.chunks_total == 4

    def test_recovers_from_raise_and_corrupt(self, query, database, baseline):
        plan = FaultPlan.parse("0:raise,2:corrupt")
        out = supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=2, policy=FAST, faults=plan,
        )
        assert_identical(out.results, baseline)
        assert out.report.clean
        assert out.report.raised == 1
        assert out.report.corrupt == 1
        assert out.report.retries == 2

    def test_keep_scores_round_trip(self, query, database):
        expected = scan_database(
            query, database, threshold=THRESHOLD, workers=1, keep_scores=True
        )
        out = supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=3, policy=FAST, keep_scores=True,
            faults=FaultPlan.parse("1:corrupt"),
        )
        assert_identical(out.results, expected)
        for ours, reference in zip(out.results, expected):
            np.testing.assert_array_equal(ours.scores, reference.scores)


class TestParallelFaults:
    """One test per injected fault kind, against real worker processes."""

    def run(self, query, database, plan, policy=FAST, workers=3):
        return supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=workers, chunk_size=2, policy=policy, faults=plan,
        )

    def test_crash_is_retried(self, query, database, baseline):
        out = self.run(query, database, FaultPlan.parse("1:crash"))
        assert_identical(out.results, baseline)
        assert out.report.mode == "parallel"
        assert out.report.clean
        assert out.report.crashes == 1
        assert out.report.respawns >= 1

    def test_hang_is_killed_and_retried(self, query, database, baseline):
        policy = RetryPolicy(
            max_retries=3, timeout=0.5, backoff=0.01, backoff_max=0.05, seed=1
        )
        out = self.run(query, database, FaultPlan.parse("2:hang"), policy=policy)
        assert_identical(out.results, baseline)
        assert out.report.clean
        assert out.report.timeouts == 1

    def test_raise_is_retried(self, query, database, baseline):
        out = self.run(query, database, FaultPlan.parse("3:raise"))
        assert_identical(out.results, baseline)
        assert out.report.clean
        assert out.report.raised == 1

    def test_corrupt_is_detected_and_retried(self, query, database, baseline):
        out = self.run(query, database, FaultPlan.parse("0:corrupt"))
        assert_identical(out.results, baseline)
        assert out.report.clean
        assert out.report.corrupt == 1

    def test_acceptance_mixed_faults_bit_identical(self, query, database, baseline):
        """ISSUE acceptance: crash + hang + corrupt, bit-identical output."""
        policy = RetryPolicy(
            max_retries=3, timeout=0.5, backoff=0.01, backoff_max=0.05, seed=1
        )
        plan = FaultPlan.parse("0:crash,1:hang,3:corrupt")
        out = self.run(query, database, plan, policy=policy)
        assert_identical(out.results, baseline)
        assert out.report.clean
        assert out.report.crashes == 1
        assert out.report.timeouts == 1
        assert out.report.corrupt == 1

    def test_hedged_straggler_finishes_early(self, query, database, baseline):
        # Chunk 0 hangs; with hedging the drained pool re-dispatches it to a
        # healthy worker long before the 10 s kill deadline.
        policy = RetryPolicy(
            max_retries=3, timeout=10.0, backoff=0.01, hedge_after=0.2, seed=1
        )
        out = self.run(query, database, FaultPlan.parse("0:hang"), policy=policy)
        assert_identical(out.results, baseline)
        assert out.report.clean
        assert out.report.hedges >= 1
        assert out.report.elapsed_seconds < 10.0


class TestDegradation:
    def test_permanent_crash_degrades_to_serial(self, query, database, baseline):
        plan = FaultPlan(specs=(FaultSpec(1, FaultKind.CRASH, attempts=ALWAYS),))
        policy = RetryPolicy(
            max_retries=1, timeout=2.0, backoff=0.01, max_respawns=3, seed=1
        )
        out = supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=3, chunk_size=2, policy=policy, faults=plan,
        )
        # Degraded, but still correct: the serial fallback runs faultless.
        assert_identical(out.results, baseline)
        assert out.report.degraded
        assert out.report.degraded_reason
        assert out.report.exit_code() == 3
        assert out.report.chunks_degraded >= 1

    def test_no_degrade_raises_scan_error(self, query, database):
        plan = FaultPlan(specs=(FaultSpec(0, FaultKind.RAISE, attempts=ALWAYS),))
        policy = RetryPolicy(max_retries=1, backoff=0.01, degrade=False, seed=1)
        with pytest.raises(ChunkFailedError):
            supervised_scan(
                query, database, threshold=THRESHOLD, engine="bitscore",
                workers=1, chunk_size=2, policy=policy, faults=plan,
            )

    def test_chunk_failed_error_is_a_scan_error(self):
        assert issubclass(ChunkFailedError, ScanError)


class TestCheckpointResume:
    def test_resume_skips_completed_chunks(self, query, database, baseline, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=2, policy=FAST, checkpoint_dir=ckpt,
        )
        assert_identical(first.results, baseline)
        assert sorted(p.name for p in ckpt.glob("chunk_*.npz")) == [
            f"chunk_{i:06d}.npz" for i in range(4)
        ]
        # Resume under an everything-crashes plan: if any chunk were
        # rescored the scan could not complete cleanly — so a clean,
        # attempt-free run proves every chunk came from the checkpoint.
        poison = FaultPlan(
            specs=tuple(
                FaultSpec(i, FaultKind.CRASH, attempts=ALWAYS) for i in range(4)
            )
        )
        second = supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=2, policy=FAST, faults=poison,
            checkpoint_dir=ckpt, resume=True,
        )
        assert_identical(second.results, baseline)
        assert second.report.clean
        assert second.report.resumed
        assert second.report.chunks_from_checkpoint == 4
        assert second.report.attempts == []

    def test_resume_refuses_different_scan(self, query, database, tmp_path):
        ckpt = tmp_path / "ckpt"
        supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=2, policy=FAST, checkpoint_dir=ckpt,
        )
        with pytest.raises(CheckpointMismatchError):
            supervised_scan(
                query, database, threshold=THRESHOLD + 1, engine="bitscore",
                workers=1, chunk_size=2, policy=FAST,
                checkpoint_dir=ckpt, resume=True,
            )

    def test_corrupted_checkpoint_chunk_is_rescanned(
        self, query, database, baseline, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=2, policy=FAST, checkpoint_dir=ckpt,
        )
        # Truncate one chunk file as a kill-mid-write would.
        victim = ckpt / "chunk_000002.npz"
        victim.write_bytes(victim.read_bytes()[:16])
        out = supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=2, policy=FAST,
            checkpoint_dir=ckpt, resume=True,
        )
        assert_identical(out.results, baseline)
        assert out.report.chunks_from_checkpoint == 3
        assert {a.chunk for a in out.report.attempts} == {2}


class TestSharedMemoryLifecycle:
    def test_no_segment_leaks_after_faulty_parallel_scans(self, query, database):
        plan = FaultPlan.parse("0:crash,2:raise")
        supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=3, chunk_size=2, policy=FAST, faults=plan,
        )
        assert scan_mod._LIVE_SEGMENTS == {}

    def test_no_segment_leaks_when_scan_raises(self, query, database):
        plan = FaultPlan(specs=(FaultSpec(0, FaultKind.RAISE, attempts=ALWAYS),))
        policy = RetryPolicy(max_retries=0, backoff=0.0, degrade=False, seed=1)
        with pytest.raises(ScanError):
            supervised_scan(
                query, database, threshold=THRESHOLD, engine="bitscore",
                workers=2, chunk_size=2, policy=policy, faults=plan,
            )
        assert scan_mod._LIVE_SEGMENTS == {}

    def test_legacy_parallel_path_retires_segment(self, query, database):
        # parallel_threshold=0 forces the parallel path deterministically
        # (the derived cutover depends on the committed bench baseline).
        scan_database(
            query, database, threshold=THRESHOLD, workers=2,
            parallel_threshold=0,
        )
        assert scan_mod._LIVE_SEGMENTS == {}


class TestSanityCheck:
    def make_payload(self, query, database, start, stop, keep_scores=False):
        from repro.host.resilience import _score_chunk_span

        return _score_chunk_span(
            database.buffer, database.lengths, database.byte_offsets,
            query.as_array(), THRESHOLD, "bitscore", keep_scores, start, stop,
        )

    def test_honest_payload_passes(self, query, database):
        payload = self.make_payload(query, database, 0, 2)
        assert check_chunk_payload(
            payload, 0, 2, database.lengths, THRESHOLD, len(query), False
        ) is None

    def test_corruption_is_always_detected(self, query, database):
        for start, stop in ((0, 2), (2, 4), (4, 6), (6, 8)):
            payload = corrupt_payload(
                self.make_payload(query, database, start, stop), len(query)
            )
            reason = check_chunk_payload(
                payload, start, stop, database.lengths, THRESHOLD, len(query), False
            )
            assert reason is not None

    def test_wrong_record_count_detected(self, query, database):
        payload = self.make_payload(query, database, 0, 2)[:1]
        assert check_chunk_payload(
            payload, 0, 2, database.lengths, THRESHOLD, len(query), False
        ) is not None

    def test_keep_scores_cross_check(self, query, database):
        payload = self.make_payload(query, database, 0, 2, keep_scores=True)
        assert check_chunk_payload(
            payload, 0, 2, database.lengths, THRESHOLD, len(query), True
        ) is None
        index, positions, hit_scores, scores, length = payload[0]
        tampered = [(index, positions, hit_scores + 1, scores, length)] + payload[1:]
        if positions.size:
            assert check_chunk_payload(
                tampered, 0, 2, database.lengths, THRESHOLD, len(query), True
            ) is not None


class TestPolicyAndReport:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)

    def test_backoff_grows_and_caps(self):
        import random

        policy = RetryPolicy(backoff=0.1, backoff_max=0.4, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_report_dict_schema(self, query, database):
        out = supervised_scan(
            query, database, threshold=THRESHOLD, engine="bitscore",
            workers=1, chunk_size=2, policy=FAST,
            faults=FaultPlan.parse("1:raise"),
        )
        payload = out.report.to_dict()
        assert payload["version"] == ScanReport.VERSION
        assert payload["clean"] is True
        assert payload["mode"] == "serial"
        assert payload["chunks"]["total"] == 4
        assert payload["chunks"]["completed"] == 4
        assert payload["counters"]["retries"] == 1
        assert payload["counters"]["raises"] == 1
        outcomes = [a["outcome"] for a in payload["chunk_attempts"]]
        assert "raise" in outcomes and "ok" in outcomes

    def test_scan_database_with_report(self, query, database, baseline):
        results, report = scan_database(
            query, database, threshold=THRESHOLD, workers=1,
            policy=FAST, with_report=True,
        )
        assert_identical(results, baseline)
        assert isinstance(report, ScanReport)
        assert report.clean
