"""Tests for the multi-FPGA cluster model."""

import numpy as np
import pytest

from repro.host.cluster import FabPCluster
from repro.host.session import FabPHost
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import build_database, sample_queries


class TestSharding:
    def test_round_robin_by_load(self, rng):
        cluster = FabPCluster(3)
        for _ in range(6):
            cluster.add_reference(random_rna(1000, rng=rng))
        assert cluster.load_imbalance() == pytest.approx(1.0)

    def test_unequal_references_balanced(self, rng):
        cluster = FabPCluster(2)
        cluster.add_reference(random_rna(4000, rng=rng))
        cluster.add_reference(random_rna(1000, rng=rng))
        cluster.add_reference(random_rna(1000, rng=rng))
        cluster.add_reference(random_rna(1000, rng=rng))
        # The three small ones should pile onto the second board.
        assert cluster.load_imbalance() < 1.4

    def test_idle_board_counts_as_imbalance(self, rng):
        # A reference only fills one board of two: the empty shard must
        # drag the statistic to max/mean = 2.0, not report perfect balance.
        cluster = FabPCluster(2)
        cluster.add_reference(random_rna(4000, rng=rng))
        assert cluster.load_imbalance() == pytest.approx(2.0)

    def test_all_idle_boards_report_balanced(self):
        assert FabPCluster(3).load_imbalance() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FabPCluster(0)
        with pytest.raises(ValueError, match="empty"):
            FabPCluster(2).search("MFW")


class TestClusterSearch:
    def test_merged_hits_match_single_board(self, rng):
        references = [random_rna(1500, rng=rng, name=f"r{i}") for i in range(4)]
        query = random_protein(6, rng=rng)

        cluster = FabPCluster(2)
        cluster.add_references(references)
        single = FabPHost()
        single.add_references(references)

        merged = cluster.search(query, threshold=12)
        expected = single.search(query, threshold=12)
        assert {(h.reference, h.position, h.score) for h in merged.hits} == {
            (h.reference, h.position, h.score) for h in expected.hits
        }

    def test_planted_found_across_shards(self, rng):
        queries = sample_queries(3, length=20, rng=rng)
        database = build_database(
            queries, num_references=3, reference_length=3000,
            codon_usage="paper", rng=rng,
        )
        cluster = FabPCluster(3)
        cluster.add_references(list(database.references))
        for query, planting in zip(queries, database.planted):
            result = cluster.search(query, min_identity=0.95)
            expected = database.references[planting.reference_index].name
            assert any(
                h.reference == expected and h.position == planting.position
                for h in result.hits
            )

    def test_speedup_near_board_count(self, rng):
        references = [random_rna(256 * 40, rng=rng, name=f"r{i}") for i in range(4)]
        query = random_protein(10, rng=rng)
        cluster = FabPCluster(4)
        cluster.add_references(references)
        speedup = cluster.speedup_vs_single_board(query, min_identity=0.9)
        assert 3.0 < speedup <= 4.2

    def test_straggler_bounds_elapsed(self, rng):
        cluster = FabPCluster(2)
        cluster.add_reference(random_rna(256 * 60, rng=rng))  # big shard
        cluster.add_reference(random_rna(256 * 10, rng=rng))  # small shard
        result = cluster.search(random_protein(8, rng=rng), min_identity=0.9)
        times = [r.total_seconds for r in result.per_board]
        assert result.elapsed_seconds == max(times)
        assert result.scaling_efficiency < 0.8  # visibly imbalanced

    def test_hits_ranked_by_score(self, rng):
        cluster = FabPCluster(2)
        cluster.add_references([random_rna(2000, rng=rng) for _ in range(2)])
        result = cluster.search(random_protein(4, rng=rng), threshold=6)
        scores = [h.score for h in result.hits]
        assert scores == sorted(scores, reverse=True)
