"""Tests for the supervised multi-shard scan runtime."""

import multiprocessing
from dataclasses import replace
from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.errors import ShardFailedError
from repro.host.faults import ShardFaultPlan
from repro.host.resilience import ScanReport, ShardStatus
from repro.host.scan import PackedDatabase, scan_database
from repro.host.shards import (
    ShardPolicy,
    ShardSpec,
    ShardedScanRuntime,
    plan_shards,
    shard_database,
)
from repro.obs.summary import normalize_report_dict
from repro.seq.generate import random_protein, random_rna


def make_references(rng, count=6, length=2500):
    return [random_rna(length, rng=rng, name=f"r{i}") for i in range(count)]


def hit_tuples(results):
    """One query's results flattened to comparable (ref, pos, score) rows."""
    return [
        (r.reference_name, h.position, h.score)
        for r in results
        for h in r.hits
    ]


# -- planning ------------------------------------------------------------------


class TestPlanShards:
    def test_contiguous_cover(self):
        specs = plan_shards([100, 200, 300, 400, 500], 3)
        assert specs[0].start == 0
        assert specs[-1].stop == 5
        for prev, nxt in zip(specs, specs[1:]):
            assert prev.stop == nxt.start
        assert sum(s.nucleotides for s in specs) == 1500

    def test_clamped_to_reference_count(self):
        specs = plan_shards([10, 20], 8)
        assert len(specs) == 2
        assert [s.num_references for s in specs] == [1, 1]

    def test_balances_unequal_lengths(self):
        # One huge reference should sit alone; the small ones pile together.
        specs = plan_shards([4000, 500, 500, 500, 500], 2)
        assert len(specs) == 2
        sizes = [s.nucleotides for s in specs]
        assert max(sizes) / (sum(sizes) / 2) < 1.4

    def test_empty_and_errors(self):
        assert plan_shards([], 4) == []
        with pytest.raises(ValueError, match=">= 1"):
            plan_shards([100], 0)

    @settings(max_examples=50, deadline=None)
    @given(
        lengths=st.lists(st.integers(1, 5000), min_size=1, max_size=24),
        num_shards=st.integers(1, 8),
    )
    def test_invariants_property(self, lengths, num_shards):
        specs = plan_shards(lengths, num_shards)
        assert len(specs) == min(num_shards, len(lengths))
        assert specs[0].start == 0 and specs[-1].stop == len(lengths)
        for prev, nxt in zip(specs, specs[1:]):
            assert prev.stop == nxt.start  # contiguous, no gaps
        for spec in specs:
            assert spec.num_references >= 1
            assert spec.nucleotides == sum(lengths[spec.start : spec.stop])


class TestShardDatabase:
    def test_slices_are_exact_subdatabases(self, rng):
        references = make_references(rng, count=5, length=1000)
        database = PackedDatabase.from_references(references)
        for spec in plan_shards(database.lengths, 3):
            shard = shard_database(database, spec)
            assert shard.names == database.names[spec.start : spec.stop]
            np.testing.assert_array_equal(
                shard.lengths, database.lengths[spec.start : spec.stop]
            )
            assert int(shard.byte_offsets[0]) == 0
            lo = int(database.byte_offsets[spec.start])
            hi = int(database.byte_offsets[spec.stop])
            np.testing.assert_array_equal(shard.buffer, database.buffer[lo:hi])


# -- policy --------------------------------------------------------------------


class TestShardPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ShardPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout"):
            ShardPolicy(timeout=0.0)
        with pytest.raises(ValueError, match="backoff"):
            ShardPolicy(backoff=-1.0)
        with pytest.raises(ValueError, match="shard_workers"):
            ShardPolicy(shard_workers=0)

    def test_delay_is_seeded_and_bounded(self):
        import random

        policy = ShardPolicy(backoff=0.1, backoff_max=0.5, jitter=0.25, seed=7)
        a = [policy.delay(n, random.Random(7)) for n in (1, 2, 3, 9)]
        b = [policy.delay(n, random.Random(7)) for n in (1, 2, 3, 9)]
        assert a == b
        assert all(d <= 0.5 * 1.25 for d in a)
        assert a[0] < a[1] < a[2]


# -- bit-identity --------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_matches_single_shard_scan(self, rng, num_shards):
        references = make_references(rng)
        queries = [random_protein(8, rng=rng), random_protein(6, rng=rng)]
        runtime = ShardedScanRuntime(references, num_shards=num_shards)
        batches, report = runtime.scan_batch(
            queries, threshold=14, with_report=True
        )
        assert report.exit_code() == 0
        assert report.mode == "sharded"
        assert all(s.status == "ok" for s in report.shards)
        for query, batch in zip(queries, batches):
            expected = scan_database(
                query, references, threshold=14, engine="bitscore_batch"
            )
            assert hit_tuples(batch) == hit_tuples(expected)

    def test_keep_scores_bit_identical(self, rng):
        references = make_references(rng, count=4, length=1200)
        query = random_protein(7, rng=rng)
        runtime = ShardedScanRuntime(references, num_shards=2)
        (batch,) = runtime.scan_batch([query], threshold=12, keep_scores=True)
        expected = scan_database(
            query, references, threshold=12,
            engine="bitscore_batch", keep_scores=True,
        )
        assert len(batch) == len(expected)
        for got, want in zip(batch, expected):
            np.testing.assert_array_equal(got.scores, want.scores)

    def test_empty_database_is_clean(self, rng):
        runtime = ShardedScanRuntime([], num_shards=4)
        batches, report = runtime.scan_batch(
            [random_protein(5, rng=rng)], threshold=10, with_report=True
        )
        assert batches == [[]]
        assert report.exit_code() == 0
        assert report.shards == []


# -- fault recovery ------------------------------------------------------------


class TestFaultRecovery:
    @pytest.mark.parametrize("plan_text", [
        "shard:1:crash",
        "shard:1:raise",
        "shard:1:corrupt",
    ])
    def test_recovers_from_transient_fault(self, rng, plan_text):
        references = make_references(rng)
        query = random_protein(8, rng=rng)
        runtime = ShardedScanRuntime(
            references,
            num_shards=2,
            faults=ShardFaultPlan.parse(plan_text),
            policy=ShardPolicy(max_attempts=3, backoff=0.01),
        )
        batches, report = runtime.scan_batch(
            [query], threshold=14, with_report=True
        )
        assert report.exit_code() == 0
        assert report.shards[1].attempts == 2
        assert report.retries == 1
        expected = scan_database(
            query, references, threshold=14, engine="bitscore_batch"
        )
        assert hit_tuples(batches[0]) == hit_tuples(expected)

    def test_hang_killed_at_deadline_then_respawned(self, rng):
        references = make_references(rng, count=4, length=1200)
        runtime = ShardedScanRuntime(
            references,
            num_shards=2,
            faults=ShardFaultPlan.parse("shard:0:hang", hang_seconds=60.0),
            policy=ShardPolicy(max_attempts=3, timeout=0.6, backoff=0.01),
        )
        _, report = runtime.scan_batch(
            [random_protein(6, rng=rng)], threshold=12, with_report=True
        )
        assert report.exit_code() == 0
        assert report.shards[0].attempts == 2
        outcomes = [a.outcome for a in report.attempts if a.chunk == 0]
        assert "timeout" in outcomes

    def test_permanent_fault_kills_shard_but_scan_completes(self, rng):
        references = make_references(rng)
        query = random_protein(8, rng=rng)
        runtime = ShardedScanRuntime(
            references,
            num_shards=2,
            faults=ShardFaultPlan.parse("shard:0:crash:0:always"),
            policy=ShardPolicy(max_attempts=2, backoff=0.01),
        )
        batches, report = runtime.scan_batch(
            [query], threshold=14, with_report=True
        )
        assert report.exit_code() == 4
        assert report.dead_shards == 1
        dead = report.shards[0]
        assert dead.status == "dead"
        assert dead.attempts == 2
        assert "health budget exhausted" in dead.detail
        # The surviving shard's references are still scanned, seam-exact.
        spec = runtime.shard_specs[1]
        expected = scan_database(
            query, references[spec.start : spec.stop],
            threshold=14, engine="bitscore_batch",
        )
        assert hit_tuples(batches[0]) == hit_tuples(expected)

    def test_allow_partial_off_raises(self, rng):
        runtime = ShardedScanRuntime(
            make_references(rng, count=4, length=1200),
            num_shards=2,
            faults=ShardFaultPlan.parse("shard:1:raise:0:always"),
            policy=ShardPolicy(
                max_attempts=2, backoff=0.01, allow_partial=False
            ),
        )
        with pytest.raises(ShardFailedError, match="shard 1 failed after 2"):
            runtime.scan_batch([random_protein(6, rng=rng)], threshold=12)


class TestCheckpointResume:
    def test_respawn_replays_only_unfinished_chunks(self, rng, tmp_path):
        # 3 references x 20000 nt per shard = two session chunks: chunk 0
        # checkpoints before the crash fires on scoring call 1, so the
        # respawned attempt restores it and replays only chunk 1.
        references = make_references(rng, count=6, length=20000)
        query = random_protein(8, rng=rng)
        runtime = ShardedScanRuntime(
            references,
            num_shards=2,
            faults=ShardFaultPlan.parse("shard:1:crash:1:1"),
            policy=ShardPolicy(max_attempts=3, backoff=0.01),
        )
        batches, report = runtime.scan_batch(
            [query],
            threshold=16,
            checkpoint_dir=tmp_path,
            with_report=True,
        )
        assert report.exit_code() == 0
        assert report.shards[1].attempts == 2
        assert report.shards[1].resumed_chunks >= 1
        assert (tmp_path / "shard_01").is_dir()
        expected = scan_database(
            query, references, threshold=16, engine="bitscore_batch"
        )
        assert hit_tuples(batches[0]) == hit_tuples(expected)


class TestHedging:
    def test_lone_straggler_is_hedged(self, rng):
        # Shard 0's first attempt hangs (fault attempts=1), no timeout is
        # set, and hedging kicks in once shard 1 finishes: the hedge twin
        # resumes fault-free and its sane result wins.
        references = make_references(rng, count=4, length=1200)
        runtime = ShardedScanRuntime(
            references,
            num_shards=2,
            faults=ShardFaultPlan.parse("shard:0:hang", hang_seconds=60.0),
            policy=ShardPolicy(
                max_attempts=3, timeout=None, hedge_after=0.4, backoff=0.01
            ),
        )
        _, report = runtime.scan_batch(
            [random_protein(6, rng=rng)], threshold=12, with_report=True
        )
        assert report.exit_code() == 0
        assert report.shards[0].hedges == 1
        assert report.hedges == 1


class TestInlineFallback:
    def test_fork_failure_falls_back_inline(self, rng):
        references = make_references(rng, count=4, length=1200)
        query = random_protein(6, rng=rng)
        runtime = ShardedScanRuntime(references, num_shards=2)
        with mock.patch.object(
            multiprocessing, "get_context", side_effect=OSError("no fork")
        ):
            batches, report = runtime.scan_batch(
                [query], threshold=12, with_report=True
            )
        assert report.exit_code() == 0
        expected = scan_database(
            query, references, threshold=12, engine="bitscore_batch"
        )
        assert hit_tuples(batches[0]) == hit_tuples(expected)

    def test_inline_retries_and_partial_semantics(self, rng):
        references = make_references(rng, count=4, length=1200)
        runtime = ShardedScanRuntime(
            references,
            num_shards=2,
            faults=ShardFaultPlan.parse(
                "shard:0:crash,shard:1:raise:0:always"
            ),
            policy=ShardPolicy(max_attempts=2, backoff=0.01),
        )
        with mock.patch.object(
            multiprocessing, "get_context", side_effect=OSError("no fork")
        ):
            batches, report = runtime.scan_batch(
                [random_protein(6, rng=rng)], threshold=12, with_report=True
            )
        # Inline crash faults raise (no runner process to sacrifice):
        # shard 0 recovers on attempt 1, shard 1 exhausts its budget.
        assert report.shards[0].status == "ok"
        assert report.shards[0].attempts == 2
        assert report.shards[1].status == "dead"
        assert report.exit_code() == 4


# -- report schema -------------------------------------------------------------


class TestShardReport:
    def test_report_round_trips_through_v3_schema(self, rng):
        runtime = ShardedScanRuntime(
            make_references(rng, count=4, length=1200), num_shards=2
        )
        _, report = runtime.scan_batch(
            [random_protein(6, rng=rng)], threshold=12, with_report=True
        )
        payload = report.to_dict()
        assert payload["version"] == 3
        assert payload["mode"] == "sharded"
        normalized = normalize_report_dict(payload)
        restored = [ShardStatus.from_dict(s) for s in normalized["shards"]]
        # to_dict rounds elapsed_seconds to microseconds; everything else
        # must survive the round trip exactly.
        assert restored == [
            replace(s, elapsed_seconds=round(s.elapsed_seconds, 6))
            for s in report.shards
        ]

    def test_summary_counts_dead_shards(self):
        report = ScanReport(mode="sharded", workers=2, chunks_total=2)
        report.chunks_completed = 1
        report.shards = [
            ShardStatus(0, 0, 2, 5000, "ok", 1),
            ShardStatus(1, 2, 4, 5000, "dead", 3, detail="budget"),
        ]
        assert report.dead_shards == 1
        assert report.exit_code() == 4
        text = report.summary()
        assert "dead-shards" in text
        assert "shards=2 dead=1" in text
