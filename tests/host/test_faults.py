"""Tests for the deterministic fault-injection plans."""

import pytest

from repro.host.faults import (
    ALWAYS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ShardFaultPlan,
    ShardFaultSpec,
)


class TestFaultSpec:
    def test_fires_for_leading_attempts_only(self):
        spec = FaultSpec(chunk=3, kind=FaultKind.CRASH, attempts=2)
        assert spec.fires(0)
        assert spec.fires(1)
        assert not spec.fires(2)

    def test_always_never_stops_firing(self):
        spec = FaultSpec(chunk=0, kind=FaultKind.RAISE, attempts=ALWAYS)
        assert spec.fires(999)


class TestFaultPlan:
    def test_lookup_respects_attempt(self):
        plan = FaultPlan(specs=(FaultSpec(1, FaultKind.HANG, attempts=1),))
        assert plan.lookup(1, 0) is FaultKind.HANG
        assert plan.lookup(1, 1) is None
        assert plan.lookup(0, 0) is None

    def test_duplicate_chunks_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                specs=(
                    FaultSpec(2, FaultKind.CRASH),
                    FaultSpec(2, FaultKind.HANG),
                )
            )

    def test_parse(self):
        plan = FaultPlan.parse("1:crash,4:hang,7:corrupt:3")
        assert plan.lookup(1, 0) is FaultKind.CRASH
        assert plan.lookup(4, 0) is FaultKind.HANG
        assert plan.lookup(7, 2) is FaultKind.CORRUPT
        assert plan.lookup(7, 3) is None

    def test_parse_always_keyword(self):
        plan = FaultPlan.parse("0:raise:always")
        assert plan.lookup(0, 10_000) is FaultKind.RAISE
        assert plan.permanent_chunks == (0,)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("banana")
        with pytest.raises(ValueError):
            FaultPlan.parse("1:explode")

    def test_from_seed_is_deterministic(self):
        a = FaultPlan.from_seed(7, 32, rate=0.5)
        b = FaultPlan.from_seed(7, 32, rate=0.5)
        assert a.specs == b.specs
        assert FaultPlan.from_seed(8, 32, rate=0.5).specs != a.specs

    def test_from_seed_rate_bounds(self):
        assert not FaultPlan.from_seed(1, 16, rate=0.0)
        full = FaultPlan.from_seed(1, 16, rate=1.0)
        assert len(full.specs) == 16

    def test_recoverable_attempts_counts_finite_faults(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(0, FaultKind.RAISE, attempts=2),
                FaultSpec(1, FaultKind.CRASH, attempts=ALWAYS),
            )
        )
        assert plan.recoverable_attempts == 2
        assert plan.permanent_chunks == (1,)

    def test_dict_round_trip(self):
        plan = FaultPlan.parse("1:crash,3:corrupt:2", hang_seconds=5.0)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.specs == plan.specs
        assert clone.hang_seconds == plan.hang_seconds

    def test_without_chunks(self):
        plan = FaultPlan.parse("1:crash,3:hang")
        trimmed = plan.without_chunks([1])
        assert trimmed.lookup(1, 0) is None
        assert trimmed.lookup(3, 0) is FaultKind.HANG


class TestShardFaultPlan:
    def test_parse_full_grammar(self):
        plan = ShardFaultPlan.parse("shard:0:crash,shard:1:hang:2,shard:2:corrupt:1:3")
        assert plan.lookup(0, 0, 0) is FaultKind.CRASH
        assert plan.lookup(0, 0, 1) is None  # ATTEMPTS defaults to 1
        assert plan.lookup(1, 2, 0) is FaultKind.HANG
        assert plan.lookup(1, 0, 0) is None  # wrong chunk
        assert plan.lookup(2, 1, 2) is FaultKind.CORRUPT
        assert plan.lookup(2, 1, 3) is None

    def test_parse_always_marks_permanent_shards(self):
        plan = ShardFaultPlan.parse("shard:1:raise:0:always,shard:0:crash")
        assert plan.lookup(1, 0, 10_000) is FaultKind.RAISE
        assert plan.permanent_shards == (1,)
        assert plan.recoverable_attempts == 1

    def test_affects(self):
        plan = ShardFaultPlan.parse("shard:3:hang")
        assert plan.affects(3)
        assert not plan.affects(0)
        assert not ShardFaultPlan()
        assert plan

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="expected"):
            ShardFaultPlan.parse("0:crash")  # missing shard: prefix
        with pytest.raises(ValueError, match="unknown fault kind"):
            ShardFaultPlan.parse("shard:0:explode")
        with pytest.raises(ValueError, match="shard index"):
            ShardFaultPlan.parse("shard:x:crash")
        with pytest.raises(ValueError, match="chunk index"):
            ShardFaultPlan.parse("shard:0:crash:y")

    def test_duplicate_shard_chunk_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardFaultPlan.parse("shard:0:crash,shard:0:hang")
        # Same shard, different chunk is fine.
        plan = ShardFaultPlan.parse("shard:0:crash:0,shard:0:hang:1")
        assert plan.lookup(0, 1, 0) is FaultKind.HANG

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ShardFaultPlan(specs=(ShardFaultSpec(-1, FaultKind.CRASH),))
        with pytest.raises(ValueError, match="negative"):
            ShardFaultPlan(specs=(ShardFaultSpec(0, FaultKind.CRASH, chunk=-2),))

    def test_dict_round_trip(self):
        plan = ShardFaultPlan.parse(
            "shard:0:crash:1:2,shard:2:hang:0:always", hang_seconds=7.5
        )
        clone = ShardFaultPlan.from_dict(plan.to_dict())
        assert clone == plan
