"""ScanSession: warm reuse, batching, supervision, checkpoint, teardown.

The acceptance bar mirrors the rest of the host suite: whatever the warm
runtime does internally — shared passes, windowed tasks, worker pools —
its results must be bit-identical to :func:`repro.host.scan.scan_database`
run per query, and nothing may leak (``/dev/shm`` segments, workers,
stale replies) across calls or after close.
"""

import numpy as np
import pytest

from repro.core.encoding import encode_query
from repro.host import scan as scan_mod
from repro.host import scan_session as session_mod
from repro.host.errors import CheckpointMismatchError, ScanError
from repro.host.scan import PackedDatabase, scan_database
from repro.host.scan_session import (
    MAX_PASS_SPAN_RATIO,
    MAX_QUERIES_PER_PASS,
    ScanSession,
)
from repro.seq.generate import random_protein, random_rna

RNG = np.random.default_rng(777)
RESIDUE_MIX = (40, 40, 18, 40, 7, 25)


@pytest.fixture(scope="module")
def queries():
    return [random_protein(n, rng=RNG) for n in RESIDUE_MIX]


@pytest.fixture(scope="module")
def database():
    references = [random_rna(n, rng=RNG).letters for n in (9_000, 3_000, 6_000)]
    return PackedDatabase.from_references(references)


@pytest.fixture(scope="module")
def solo_results(queries, database):
    return [
        scan_database(q, database, min_identity=0.8, keep_scores=True)
        for q in queries
    ]


def assert_matches_solo(batches, solo_results):
    assert len(batches) == len(solo_results)
    for got_list, want_list in zip(batches, solo_results):
        assert len(got_list) == len(want_list)
        for got, want in zip(got_list, want_list):
            assert np.array_equal(got.hits, want.hits)
            assert np.array_equal(got.scores, want.scores)
            assert got.scores.dtype == want.scores.dtype


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_batch_matches_per_query_scan(
        self, queries, database, solo_results, workers
    ):
        with ScanSession(database, workers=workers) as session:
            batches = session.scan_batch(
                queries, min_identity=0.8, keep_scores=True
            )
            assert_matches_solo(batches, solo_results)

    def test_single_query_sugar(self, queries, database, solo_results):
        with ScanSession(database, workers=1) as session:
            results = session.scan(queries[0], min_identity=0.8, keep_scores=True)
            assert_matches_solo([results], solo_results[:1])

    def test_empty_batch(self, database):
        with ScanSession(database, workers=1) as session:
            assert session.scan_batch([]) == []

    def test_every_engine_agrees(self, queries, database, solo_results):
        for engine in ("bitscore", "bitscore_batch", "vectorized"):
            with ScanSession(database, engine=engine, workers=1) as session:
                batches = session.scan_batch(
                    queries, min_identity=0.8, keep_scores=True
                )
                assert_matches_solo(batches, solo_results)


class TestWarmReuse:
    def test_pool_and_image_survive_across_calls(self, queries, database):
        with ScanSession(database, workers=2) as session:
            first = session.scan_batch(queries, min_identity=0.8)
            workers_before = [w.process.pid for w in session._workers]
            for _ in range(2):
                again = session.scan_batch(queries, min_identity=0.8)
                for got_list, want_list in zip(again, first):
                    for got, want in zip(got_list, want_list):
                        assert np.array_equal(got.hits, want.hits)
            assert [w.process.pid for w in session._workers] == workers_before
            assert session.scans_completed == 3
            assert session.pool_reuses == 2
            assert session.respawns_total == 0

    def test_report_is_clean_and_warm(self, queries, database):
        with ScanSession(database, workers=2) as session:
            session.scan_batch(queries[:2], min_identity=0.8)
            _, report = session.scan_batch(
                queries[:2], min_identity=0.8, with_report=True
            )
            assert report.clean
            assert report.exit_code() == 0
            assert report.chunks_completed == report.chunks_total > 0

    def test_dead_worker_is_replaced_between_calls(self, queries, database):
        with ScanSession(database, workers=2) as session:
            baseline = session.scan_batch(queries, min_identity=0.8)
            victim = session._workers[0].process
            victim.terminate()
            victim.join(timeout=2.0)
            again = session.scan_batch(queries, min_identity=0.8)
            for got_list, want_list in zip(again, baseline):
                for got, want in zip(got_list, want_list):
                    assert np.array_equal(got.hits, want.hits)
            assert session.respawns_total >= 1
            assert session.num_workers == 2


class TestPassPlanning:
    def test_similar_spans_share_one_pass(self, database):
        encoded = [encode_query(random_protein(40, rng=RNG)) for _ in range(6)]
        with ScanSession(database, workers=1) as session:
            passes, tasks = session._plan(encoded, [60] * len(encoded))
            assert len(passes) == 1
            assert sorted(passes[0].query_indices) == list(range(6))
            assert tasks, "a non-empty pass must produce tasks"

    def test_span_spread_splits_passes(self, database):
        encoded = [
            encode_query(random_protein(n, rng=RNG)) for n in (200, 10, 200, 10)
        ]
        with ScanSession(database, workers=1) as session:
            passes, _ = session._plan(encoded, [10] * len(encoded))
            assert len(passes) == 2
            for spec in passes:
                assert spec.max_span <= spec.min_span * MAX_PASS_SPAN_RATIO

    def test_pass_size_is_capped(self, database):
        encoded = [
            encode_query(random_protein(20, rng=RNG))
            for _ in range(MAX_QUERIES_PER_PASS + 3)
        ]
        with ScanSession(database, workers=1) as session:
            passes, _ = session._plan(encoded, [30] * len(encoded))
            assert max(len(p.query_indices) for p in passes) == MAX_QUERIES_PER_PASS
            covered = sorted(i for p in passes for i in p.query_indices)
            assert covered == list(range(len(encoded)))


class TestCheckpoint:
    def test_resume_skips_completed_tasks(self, queries, database, tmp_path):
        with ScanSession(database, workers=1) as session:
            first, report = session.scan_batch(
                queries, min_identity=0.8, checkpoint_dir=tmp_path,
                with_report=True,
            )
            assert report.chunks_total > 0
            resumed, report2 = session.scan_batch(
                queries, min_identity=0.8, checkpoint_dir=tmp_path,
                resume=True, with_report=True,
            )
            assert report2.chunks_from_checkpoint == report2.chunks_total
            for got_list, want_list in zip(resumed, first):
                for got, want in zip(got_list, want_list):
                    assert np.array_equal(got.hits, want.hits)
                    assert np.array_equal(got.scores, want.scores)

    def test_resume_across_sessions(self, queries, database, tmp_path):
        with ScanSession(database, workers=1) as session:
            first = session.scan_batch(
                queries, min_identity=0.8, checkpoint_dir=tmp_path
            )
        with ScanSession(database, workers=1) as session:
            resumed, report = session.scan_batch(
                queries, min_identity=0.8, checkpoint_dir=tmp_path,
                resume=True, with_report=True,
            )
            assert report.chunks_from_checkpoint == report.chunks_total
            for got_list, want_list in zip(resumed, first):
                for got, want in zip(got_list, want_list):
                    assert np.array_equal(got.hits, want.hits)

    def test_changed_workload_refuses_resume(self, queries, database, tmp_path):
        with ScanSession(database, workers=1) as session:
            session.scan_batch(
                queries, min_identity=0.8, checkpoint_dir=tmp_path
            )
            with pytest.raises(CheckpointMismatchError):
                session.scan_batch(
                    queries, min_identity=0.9, checkpoint_dir=tmp_path,
                    resume=True,
                )


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, queries, database):
        session = ScanSession(database, workers=2)
        session.scan_batch(queries[:1], min_identity=0.8)
        session.close()
        session.close()
        assert session.closed
        assert session._workers == []
        with pytest.raises(ScanError, match="closed"):
            session.scan_batch(queries[:1], min_identity=0.8)

    def test_no_segment_leaks_after_close(self, queries, database):
        with ScanSession(database, workers=2) as session:
            session.scan_batch(queries[:2], min_identity=0.8)
        assert scan_mod._LIVE_SEGMENTS == {}

    def test_serial_session_never_publishes_segments(self, queries, database):
        with ScanSession(database, workers=1) as session:
            session.scan_batch(queries[:2], min_identity=0.8)
            assert scan_mod._LIVE_SEGMENTS == {}
            assert session.num_workers == 1

    def test_resident_bytes_reports_the_image(self, database):
        with ScanSession(database, workers=1) as session:
            assert session.resident_bytes == database.packed_bytes

    def test_default_engine_is_the_batched_kernel(self, database):
        with ScanSession(database, workers=1) as session:
            assert session.engine == session_mod.SESSION_ENGINE == "bitscore_batch"
