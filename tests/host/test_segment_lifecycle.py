"""Idempotent segment retirement under concurrent and repeated teardown.

The hardened contract (``repro.host.scan``): no matter how many of the
explicit ``finally``, atexit-sweep, and SIGTERM-sweep paths reach the same
segment — even concurrently — exactly one caller closes/unlinks it, and a
forked child that inherited the registry never touches the parent's image.
"""

import os
import threading

import numpy as np
import pytest

from repro.host import scan as scan_mod
from repro.host.scan import (
    _SegmentLease,
    publish_segment,
    retire_segment,
)


@pytest.fixture
def segment():
    seg = publish_segment(np.arange(64, dtype=np.uint8))
    yield seg
    retire_segment(seg)  # idempotent; cleans up on test failure


def count_unlinks(seg):
    """Wrap the segment's unlink so the test can count real unlinks."""
    calls = {"n": 0}
    original = seg.unlink

    def counting():
        calls["n"] += 1
        return original()

    seg.unlink = counting
    return calls


class TestIdempotency:
    def test_second_retire_is_a_noop(self, segment):
        calls = count_unlinks(segment)
        assert retire_segment(segment) is True
        assert retire_segment(segment) is False
        assert calls["n"] == 1

    def test_retire_none_is_a_noop(self):
        assert retire_segment(None) is False

    def test_explicit_then_atexit_sweep_unlinks_once(self, segment):
        calls = count_unlinks(segment)
        assert retire_segment(segment) is True
        scan_mod._cleanup_segments()  # the atexit path
        assert calls["n"] == 1

    def test_sweep_then_explicit_unlinks_once(self, segment):
        calls = count_unlinks(segment)
        scan_mod._cleanup_segments()
        assert retire_segment(segment) is False
        assert calls["n"] == 1

    def test_concurrent_retirement_unlinks_exactly_once(self, segment):
        calls = count_unlinks(segment)
        outcomes = []
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            outcomes.append(retire_segment(segment))

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert outcomes.count(True) == 1
        assert outcomes.count(False) == 7
        assert calls["n"] == 1


class TestOwnership:
    def test_foreign_owner_pid_blocks_retirement(self, segment):
        # Simulate the registry as a forked child would inherit it: the
        # lease records the parent's pid, not ours.
        calls = count_unlinks(segment)
        scan_mod._LIVE_SEGMENTS[segment.name] = _SegmentLease(
            segment, os.getpid() + 1
        )
        try:
            assert retire_segment(segment) is False
            assert calls["n"] == 0
            assert segment.name in scan_mod._LIVE_SEGMENTS
        finally:
            scan_mod._LIVE_SEGMENTS[segment.name] = _SegmentLease(
                segment, os.getpid()
            )
        assert retire_segment(segment) is True
        assert calls["n"] == 1

    def test_publish_registers_owner_lease(self, segment):
        lease = scan_mod._LIVE_SEGMENTS[segment.name]
        assert lease.owner_pid == os.getpid()
        assert lease.segment is segment


class TestSigtermSweep:
    def test_publish_installs_the_sweep_lazily(self, segment):
        import signal

        # publish_segment ran in the main thread with SIG_DFL (or a prior
        # publish already installed it) — either way the flag is latched.
        assert scan_mod._SIGTERM_SWEEP_INSTALLED
        handler = signal.getsignal(signal.SIGTERM)
        assert handler in (scan_mod._sweep_on_sigterm, signal.SIG_DFL) or callable(
            handler
        )
