"""Tests for the chunked multi-process database scanner."""

import numpy as np
import pytest

from repro.core.aligner import search_database
from repro.host.scan import (
    PackedDatabase,
    chunk_bounds,
    resolve_workers,
    scan_database,
)
from repro.seq.generate import random_protein, random_rna
from repro.seq.packing import codes_from_text


@pytest.fixture
def database_refs(rng):
    return [random_rna(3_000, rng=rng) for _ in range(5)]


class TestPackedDatabase:
    def test_roundtrip(self, rng, database_refs):
        db = PackedDatabase.from_references(database_refs)
        assert db.num_references == 5
        assert db.total_nucleotides == 15_000
        assert db.packed_bytes == 5 * 750  # 2 bits/nt
        for i, ref in enumerate(database_refs):
            assert np.array_equal(
                db.reference_codes(i), codes_from_text(ref.letters)
            )

    def test_accepts_prepacked_code_arrays_with_names(self, rng):
        codes = [codes_from_text(random_rna(100, rng=rng).letters) for _ in range(2)]
        db = PackedDatabase.from_references(codes, names=["a", "b"])
        assert db.names == ("a", "b")
        assert np.array_equal(db.reference_codes(1), codes[1])

    def test_empty_database(self):
        db = PackedDatabase.from_references([])
        assert db.num_references == 0
        assert db.total_nucleotides == 0


class TestChunking:
    def test_chunk_bounds_cover_all_indices(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_bounds(10, 0)

    def test_resolve_workers(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestScan:
    def test_serial_scan_matches_search_database(self, rng, database_refs):
        query = random_protein(8, rng=rng)
        serial = search_database(query, database_refs, min_identity=0.4)
        scanned = scan_database(query, database_refs, min_identity=0.4, workers=1)
        assert len(scanned) == len(serial)
        for a, b in zip(serial, scanned):
            assert a.hits == b.hits
            assert a.reference_name == b.reference_name
            assert a.reference_length == b.reference_length
            assert a.threshold == b.threshold

    def test_parallel_scan_matches_serial(self, rng):
        # Large enough to clear the serial-fallback size gate.
        refs = [random_rna(70_000, rng=rng) for _ in range(4)]
        query = random_protein(10, rng=rng)
        serial = search_database(query, refs, min_identity=0.4)
        parallel = scan_database(
            query, refs, min_identity=0.4, workers=2, chunk_size=1
        )
        assert [r.hits for r in parallel] == [r.hits for r in serial]

    def test_keep_scores_plumbed_through(self, rng, database_refs):
        query = random_protein(8, rng=rng)
        results = scan_database(
            query, database_refs, min_identity=0.4, workers=1, keep_scores=True
        )
        for result in results:
            assert result.scores is not None
            assert result.scores.size == 3_000 - 24 + 1

    def test_prepacked_database_reused(self, rng, database_refs):
        query = random_protein(8, rng=rng)
        db = PackedDatabase.from_references(database_refs)
        first = scan_database(query, db, min_identity=0.4)
        second = scan_database(query, db, min_identity=0.4)
        assert [r.hits for r in first] == [r.hits for r in second]

    def test_engine_knob(self, rng, database_refs):
        query = random_protein(8, rng=rng)
        bitscore = scan_database(query, database_refs, min_identity=0.4)
        vectorized = scan_database(
            query, database_refs, min_identity=0.4, engine="vectorized"
        )
        assert [r.hits for r in bitscore] == [r.hits for r in vectorized]

    def test_results_in_input_order(self, rng):
        refs = [random_rna(70_000, rng=rng) for _ in range(6)]
        query = random_protein(10, rng=rng)
        results = scan_database(
            query, refs, min_identity=0.4, workers=3, chunk_size=2
        )
        assert [r.reference_length for r in results] == [70_000] * 6


class TestSearchDatabaseIntegration:
    def test_workers_knob_routes_through_scan(self, rng):
        refs = [random_rna(70_000, rng=rng) for _ in range(4)]
        query = random_protein(10, rng=rng)
        serial = search_database(query, refs, min_identity=0.4)
        routed = search_database(query, refs, min_identity=0.4, workers=2)
        assert [r.hits for r in routed] == [r.hits for r in serial]

    def test_prepacked_code_arrays_accepted(self, rng):
        codes = [
            codes_from_text(random_rna(2_000, rng=rng).letters) for _ in range(3)
        ]
        query = random_protein(8, rng=rng)
        results = search_database(query, codes, min_identity=0.4, keep_scores=True)
        assert len(results) == 3
        assert all(r.scores is not None for r in results)


class TestFabPHostScan:
    def test_scan_matches_search_hits(self, rng):
        from repro.host.session import FabPHost

        query = random_protein(10, rng=rng)
        refs = [random_rna(4_000, rng=rng) for _ in range(3)]
        host = FabPHost()
        host.add_references(refs)
        scan_results = host.scan(query, min_identity=0.5)
        search_result = host.search(query, min_identity=0.5)
        scan_hits = {
            (r.reference_name, h.position, h.score)
            for r in scan_results
            for h in r.hits
        }
        search_hits = {
            (h.reference, h.position, h.score) for h in search_result.hits
        }
        assert scan_hits == search_hits

    def test_empty_database_rejected(self):
        from repro.host.session import FabPHost

        with pytest.raises(ValueError):
            FabPHost().scan("MFW")
