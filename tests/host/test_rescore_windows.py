"""Unit tests for rescore window extraction (frame/strand arithmetic)."""

import numpy as np
import pytest

from repro.host.rescore import _extract_window
from repro.host.session import NamedHit
from repro.seq.generate import random_rna
from repro.seq.sequence import RnaSequence
from repro.seq.translate import translate
from repro.workloads.builder import encode_protein_as_rna


class TestWindowExtraction:
    def test_forward_window_contains_region_in_frame(self, rng):
        from repro.seq.generate import random_protein

        query = random_protein(10, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="first").letters
        background = random_rna(600, rng=rng).letters
        position = 123  # deliberately not a multiple of 3
        text = background[:position] + region + background[position + len(region) :]
        hit = NamedHit("r", position, 30, "+")
        window = _extract_window(text, hit, len(region), margin=30)
        # Frame-0 translation of the window must contain the query.
        assert query.letters in translate(window).letters

    def test_reverse_window_contains_region_in_frame(self, rng):
        from repro.seq.generate import random_protein

        query = random_protein(10, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="first").letters
        rc = RnaSequence(region).reverse_complement().letters
        background = random_rna(600, rng=rng).letters
        position = 217
        text = background[:position] + rc + background[position + len(rc) :]
        # The host reports reverse hits at the forward-strand start.
        hit = NamedHit("r", position, 30, "-")
        window = _extract_window(text, hit, len(region), margin=30)
        assert query.letters in translate(window).letters

    def test_window_at_reference_head(self, rng):
        text = random_rna(100, rng=rng).letters
        hit = NamedHit("r", 0, 10, "+")
        window = _extract_window(text, hit, 30, margin=60)
        assert window.letters == text[: 30 + 60]

    def test_window_clipped_at_tail(self, rng):
        text = random_rna(100, rng=rng).letters
        hit = NamedHit("r", 90, 10, "+")
        window = _extract_window(text, hit, 9, margin=30)
        assert window.letters.endswith(text[-1])
        assert len(window) <= 9 + 60


class TestCliGenerateOptions:
    def test_generate_with_mutations(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "generate",
                "--queries", "1",
                "--length", "25",
                "--references", "1",
                "--reference-length", "3000",
                "--substitution-rate", "0.1",
                "--indels", "1",
                "--codon-usage", "uniform",
                "--seed", "3",
                "--out-db", str(tmp_path / "db.fasta"),
                "--out-queries", str(tmp_path / "q.fasta"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "indels=1" in out
        assert "subs=" in out

    def test_generate_organism_usage(self, tmp_path):
        from repro.cli import main
        from repro.seq import fasta

        code = main(
            [
                "generate",
                "--queries", "1",
                "--length", "20",
                "--references", "1",
                "--reference-length", "2000",
                "--codon-usage", "paper",
                "--out-db", str(tmp_path / "db.fasta"),
                "--out-queries", str(tmp_path / "q.fasta"),
            ]
        )
        assert code == 0
        assert len(fasta.read_fasta(tmp_path / "db.fasta")) == 1
