"""Tests for both-strand search and host-side rescoring."""

import numpy as np
import pytest

from repro.host import FabPHost, rescore_hits, rescore_search_result
from repro.host.session import NamedHit
from repro.seq.generate import random_protein, random_rna
from repro.seq.mutate import mutate_protein
from repro.seq.sequence import ProteinSequence, RnaSequence
from repro.workloads.builder import encode_protein_as_rna


@pytest.fixture
def planted(rng):
    """A forward and a reverse-strand planting of the same query."""
    query = random_protein(25, rng=rng)
    region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
    background = random_rna(3000, rng=rng).letters
    fwd = background[:1000] + region + background[1000 + len(region) :]
    rc = RnaSequence(region).reverse_complement().letters
    rev = background[:500] + rc + background[500 + len(rc) :]
    return query, fwd, rev, len(region)


class TestBothStrands:
    def test_forward_and_reverse_found(self, planted):
        query, fwd, rev, span = planted
        host = FabPHost()
        host.add_reference(fwd, "fwd")
        host.add_reference(rev, "rev")
        result = host.search(query, min_identity=0.95, both_strands=True)
        strands = {(h.reference, h.position, h.strand) for h in result.hits}
        assert ("fwd", 1000, "+") in strands
        assert ("rev", 500, "-") in strands

    def test_forward_only_misses_reverse(self, planted):
        query, fwd, rev, span = planted
        host = FabPHost()
        host.add_reference(rev, "rev")
        result = host.search(query, min_identity=0.95, both_strands=False)
        assert not result.hits

    def test_both_strands_doubles_work(self, planted):
        query, fwd, _, _ = planted
        host = FabPHost()
        host.add_reference(fwd, "fwd")
        single = host.search(query, min_identity=0.95)
        double = host.search(query, min_identity=0.95, both_strands=True)
        single_compute = sum(r.compute_cycles for r in single.runs)
        double_compute = sum(r.compute_cycles for r in double.runs)
        assert double_compute == 2 * single_compute

    def test_max_residues_passthrough(self, planted):
        query, fwd, _, _ = planted
        host = FabPHost()
        host.add_reference(fwd, "fwd")
        result = host.search(query, min_identity=0.95, max_residues=100)
        assert any(h.position == 1000 for h in result.hits)


class TestRescore:
    def test_perfect_hit_confirmed(self, planted):
        query, fwd, rev, span = planted
        host = FabPHost()
        host.add_reference(fwd, "fwd")
        host.add_reference(rev, "rev")
        result = host.search(query, min_identity=0.95, both_strands=True)
        report = rescore_search_result(result, {"fwd": fwd, "rev": rev})
        assert len(report.hits) == 2
        for rescored in report.hits:
            assert rescored.alignment.identity == 1.0
            assert rescored.evalue < 1e-8
            assert rescored.bit_score > 30

    def test_evalue_filter_drops_noise(self, planted, rng):
        query, fwd, _, _ = planted
        noise = NamedHit("fwd", int(rng.integers(0, 2000)), 40)
        report = rescore_hits(query, [noise], {"fwd": fwd}, max_evalue=1e-6)
        assert all(r.hit is not noise or r.evalue <= 1e-6 for r in report.hits)

    def test_indel_homolog_recovered_by_rescoring(self, rng):
        """The hybrid pipeline restores indel tolerance (a loose FabP
        threshold finds the fragment; gapped SW confirms it)."""
        query = random_protein(40, rng=rng)
        mutated = mutate_protein(query, indel_events=1, rng=rng)
        region = encode_protein_as_rna(
            ProteinSequence(mutated.letters), rng=rng, codon_usage="paper"
        ).letters
        background = random_rna(4000, rng=rng).letters
        reference = background[:1500] + region + background[1500 + len(region) :]
        host = FabPHost()
        host.add_reference(reference, "r")
        result = host.search(query, min_identity=0.45)  # loose filter
        assert result.hits, "loose threshold should catch the fragment"
        report = rescore_search_result(
            result, {"r": reference}, max_evalue=1e-4, window_margin_codons=20
        )
        assert report.best is not None
        assert report.best.alignment.score > 60

    def test_unknown_reference_rejected(self, planted):
        query, fwd, _, _ = planted
        hit = NamedHit("ghost", 10, 50)
        with pytest.raises(KeyError, match="ghost"):
            rescore_hits(query, [hit], {"fwd": fwd})

    def test_ranking_by_evalue(self, planted, rng):
        query, fwd, _, span = planted
        strong = NamedHit("fwd", 1000, 75)
        weak = NamedHit("fwd", 200, 40)
        report = rescore_hits(query, [weak, strong], {"fwd": fwd}, max_evalue=10.0)
        if len(report.hits) == 2:
            assert report.hits[0].evalue <= report.hits[1].evalue
        assert report.best.hit.position == 1000
