"""Position-balanced windows: planning, halo context, bit-exact merge.

Pins the invariant the module docstring promises: concatenating the kept
slices of windowed scans in window order is bit-identical to scoring the
whole reference in one call — including the ``x_bit_rows`` look-back
context at every seam and the ``keep_scores`` reconstruction.
"""

import numpy as np
import pytest

from repro.core.aligner import scores_from_codes
from repro.core.encoding import encode_query
from repro.host import windows
from repro.host.scan import PackedDatabase
from repro.seq.generate import random_protein, random_rna
from repro.seq.packing import codes_from_text


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20210521)


class TestPlanWindows:
    def test_windows_partition_every_position(self, rng):
        lengths = [9_000, 40, 70_000, 0, 12_345]
        span = 90
        chunks = windows.plan_windows(lengths, span, 3, target_positions=1_000)
        seen = {}
        for chunk in chunks:
            for w in chunk:
                seen.setdefault(w.reference, []).append((w.start, w.stop))
        for reference, length in enumerate(lengths):
            total = windows.num_positions(length, span)
            spans_ = sorted(seen.get(reference, []))
            if total == 0:
                assert spans_ == []
                continue
            # Contiguous, non-overlapping, covering [0, total).
            assert spans_[0][0] == 0
            assert spans_[-1][1] == total
            for (_, stop), (start, _) in zip(spans_, spans_[1:]):
                assert stop == start

    def test_short_references_yield_no_windows(self):
        assert windows.plan_windows([10, 5], 90, 4) == []

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            windows.plan_windows([100], 0, 1)

    def test_sliver_tails_are_absorbed(self):
        # One reference slightly over the target must not leave a tiny
        # trailing window (the halo would dominate it).
        chunks = windows.plan_windows(
            [windows.MIN_WINDOW_POSITIONS + 10 + 89], 90, 1,
            target_positions=windows.MIN_WINDOW_POSITIONS,
        )
        all_windows = [w for chunk in chunks for w in chunk]
        assert len(all_windows) == 1

    def test_balance_beats_reference_chunking(self):
        # The motivating workload: one long reference among short ones.
        lengths = [400_000, 10_000, 10_000, 10_000]
        chunks = windows.plan_windows(lengths, 90, 4)
        loads = sorted(
            sum(w.positions for w in chunk) for chunk in chunks
        )
        assert len(chunks) > len(lengths) - 1
        assert loads[-1] < windows.num_positions(lengths[0], 90)


class TestWindowedScanBitIdentity:
    """Windowed scores == whole-reference scores, slice for slice."""

    @pytest.mark.parametrize("residues", [5, 30, 250])
    def test_long_reference_merges_bit_identical(self, rng, residues):
        query = random_protein(residues, rng=rng)
        encoded = encode_query(query).as_array()
        span = int(encoded.size)
        reference = random_rna(20_000, rng=rng).letters
        database = PackedDatabase.from_references([reference])
        length = int(database.lengths[0])
        full = scores_from_codes(encoded, codes_from_text(reference))

        chunks = windows.plan_windows([length], span, 2, target_positions=777)
        all_windows = [w for chunk in chunks for w in chunk]
        assert len(all_windows) > 10  # the seam case, many times over
        records = []
        for w in all_windows:
            codes, lookback = windows.window_codes(
                database.buffer, int(database.byte_offsets[0]), length,
                w.start, w.stop, span,
            )
            scores = scores_from_codes(encoded, codes)
            kept = scores[lookback : lookback + w.positions]
            hits = np.nonzero(kept >= span)[0]
            records.append(
                (w.reference, w.start, hits.astype(np.int64), kept[hits], kept)
            )
        merged = windows.merge_window_records(records, [length], span, True)
        positions, hit_scores, scores, merged_length = merged[0]
        assert merged_length == length
        assert np.array_equal(scores, full)
        assert np.array_equal(positions, np.nonzero(full >= span)[0])
        assert np.array_equal(hit_scores, full[positions])

    def test_window_start_before_lookback(self, rng):
        # start in {0, 1} has fewer than LOOKBACK real predecessors; the
        # kept slice must still match the full scan's boundary behaviour.
        query = random_protein(4, rng=rng)
        encoded = encode_query(query).as_array()
        span = int(encoded.size)
        reference = random_rna(64, rng=rng).letters
        database = PackedDatabase.from_references([reference])
        length = int(database.lengths[0])
        full = scores_from_codes(encoded, codes_from_text(reference))
        for start in (0, 1, 2, 3):
            stop = min(windows.num_positions(length, span), start + 7)
            codes, lookback = windows.window_codes(
                database.buffer, 0, length, start, stop, span
            )
            kept = scores_from_codes(encoded, codes)[
                lookback : lookback + (stop - start)
            ]
            assert np.array_equal(kept, full[start:stop]), start


class TestMergeWindowRecords:
    def test_missing_window_is_detected(self):
        records = [
            (0, 0, np.zeros(0, np.int64), np.zeros(0, np.int32),
             np.zeros(50, np.int32)),
        ]
        with pytest.raises(ValueError, match="merged scores cover"):
            windows.merge_window_records(records, [199], 100, True)

    def test_empty_reference_synthesizes_empty_result(self):
        merged = windows.merge_window_records([], [10], 90, True)
        positions, hit_scores, scores, length = merged[0]
        assert positions.size == 0 and hit_scores.size == 0
        assert scores is not None and scores.size == 0
        assert length == 10
