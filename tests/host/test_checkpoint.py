"""Tests for the durable scan checkpoint store."""

import numpy as np
import pytest

from repro.core.encoding import encode_query
from repro.host.checkpoint import SCHEMA_VERSION, CheckpointStore, scan_fingerprint
from repro.host.errors import CheckpointMismatchError
from repro.host.scan import PackedDatabase


@pytest.fixture
def database(rng):
    refs = [rng.integers(0, 4, size=n, dtype=np.uint8) for n in (200, 300, 250)]
    return PackedDatabase.from_references(refs)


@pytest.fixture
def instructions():
    return encode_query("MKV").as_array()


def make_payload(with_scores=False):
    scores = np.arange(5, dtype=np.int64) if with_scores else None
    return [
        (0, np.array([3, 9], dtype=np.int64), np.array([7, 8], dtype=np.int64),
         scores, 200),
        (1, np.array([], dtype=np.int64), np.array([], dtype=np.int64),
         None, 300),
    ]


class TestFingerprint:
    def test_stable_for_identical_inputs(self, database, instructions):
        a = scan_fingerprint(database, instructions, 5, "bitscore", False, 4)
        b = scan_fingerprint(database, instructions, 5, "bitscore", False, 4)
        assert a == b

    def test_sensitive_to_every_parameter(self, database, instructions):
        base = scan_fingerprint(database, instructions, 5, "bitscore", False, 4)
        assert scan_fingerprint(database, instructions, 6, "bitscore", False, 4) != base
        assert scan_fingerprint(database, instructions, 5, "naive", False, 4) != base
        assert scan_fingerprint(database, instructions, 5, "bitscore", True, 4) != base
        assert scan_fingerprint(database, instructions, 5, "bitscore", False, 8) != base
        other = encode_query("MKW").as_array()
        assert scan_fingerprint(database, other, 5, "bitscore", False, 4) != base

    def test_sensitive_to_database_contents(self, rng, database, instructions):
        base = scan_fingerprint(database, instructions, 5, "bitscore", False, 4)
        refs = [rng.integers(0, 4, size=n, dtype=np.uint8) for n in (200, 300, 250)]
        other = PackedDatabase.from_references(refs)
        assert scan_fingerprint(other, instructions, 5, "bitscore", False, 4) != base


class TestChunkFiles:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        payload = make_payload(with_scores=True)
        store.save_chunk(2, payload)
        loaded = store.load_chunk(2)
        assert loaded is not None
        assert len(loaded) == 2
        for original, restored in zip(payload, loaded):
            assert restored[0] == original[0]
            np.testing.assert_array_equal(restored[1], original[1])
            np.testing.assert_array_equal(restored[2], original[2])
            if original[3] is None:
                assert restored[3] is None
            else:
                np.testing.assert_array_equal(restored[3], original[3])
            assert restored[4] == original[4]

    def test_missing_chunk_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.load_chunk(0) is None

    def test_truncated_chunk_is_rescanned(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_chunk(0, make_payload())
        path = store.chunk_path(0)
        path.write_bytes(path.read_bytes()[:20])
        assert store.load_chunk(0) is None

    def test_garbage_chunk_is_rescanned(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.directory.mkdir(parents=True)
        store.chunk_path(1).write_bytes(b"not an npz file")
        assert store.load_chunk(1) is None


class TestPrepare:
    FP = "a" * 64

    def test_fresh_start_writes_manifest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.prepare(self.FP, 4, 2, resume=False) == {}
        manifest = store.read_manifest()
        assert manifest["version"] == SCHEMA_VERSION
        assert manifest["fingerprint"] == self.FP
        assert manifest["num_chunks"] == 4

    def test_fresh_start_discards_stale_chunks(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.prepare(self.FP, 4, 2, resume=False)
        store.save_chunk(0, make_payload())
        # A non-resume run with the same directory must not reuse them.
        assert store.prepare(self.FP, 4, 2, resume=False) == {}
        assert not store.chunk_path(0).exists()

    def test_resume_returns_completed_chunks(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.prepare(self.FP, 4, 2, resume=False)
        store.save_chunk(1, make_payload())
        done = store.prepare(self.FP, 4, 2, resume=True)
        assert set(done) == {1}

    def test_resume_without_manifest_starts_fresh(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.prepare(self.FP, 4, 2, resume=True) == {}

    def test_resume_refuses_fingerprint_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.prepare(self.FP, 4, 2, resume=False)
        with pytest.raises(CheckpointMismatchError):
            store.prepare("b" * 64, 4, 2, resume=True)

    def test_resume_refuses_chunk_count_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.prepare(self.FP, 4, 2, resume=False)
        with pytest.raises(CheckpointMismatchError):
            store.prepare(self.FP, 8, 1, resume=True)
