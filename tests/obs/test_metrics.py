"""Metrics registry unit tests + the Prometheus-text golden file.

The golden test pins the exact exposition-format output byte for byte:
any change to bucket labels, value rendering, or family ordering is a
schema change and must be deliberate.
"""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    to_json,
    to_prometheus,
    write_metrics_json,
    write_prometheus,
)


def demo_registry():
    """A small registry with one of each kind (binary-exact values)."""
    reg = MetricsRegistry()
    reg.gauge("fabp_demo_bytes", "Demo bytes.").default.set(7500)
    hist = reg.histogram(
        "fabp_demo_seconds", "Demo seconds.", ("stage",), buckets=(0.5, 1.0, 4.0)
    )
    child = hist.labels(stage="pack")
    child.observe(0.25)
    child.observe(0.5)
    child.observe(8.0)  # overflow bucket
    reg.counter("fabp_demo_total", "Demo events.", ("engine",)).labels(
        engine="bitscore"
    ).inc(3)
    return reg


GOLDEN_PROMETHEUS = """\
# HELP fabp_demo_bytes Demo bytes.
# TYPE fabp_demo_bytes gauge
fabp_demo_bytes 7500
# HELP fabp_demo_seconds Demo seconds.
# TYPE fabp_demo_seconds histogram
fabp_demo_seconds_bucket{stage="pack",le="0.5"} 2
fabp_demo_seconds_bucket{stage="pack",le="1"} 2
fabp_demo_seconds_bucket{stage="pack",le="4"} 2
fabp_demo_seconds_bucket{stage="pack",le="+Inf"} 3
fabp_demo_seconds_sum{stage="pack"} 8.75
fabp_demo_seconds_count{stage="pack"} 3
# HELP fabp_demo_total Demo events.
# TYPE fabp_demo_total counter
fabp_demo_total{engine="bitscore"} 3
"""


class TestPrometheusGolden:
    def test_text_exposition_matches_golden(self):
        assert to_prometheus(demo_registry()) == GOLDEN_PROMETHEUS

    def test_write_prometheus_roundtrip(self, tmp_path):
        out = write_prometheus(tmp_path / "m.prom", demo_registry())
        assert out.read_text() == GOLDEN_PROMETHEUS

    def test_default_buckets_render_scientific_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("fabp_t_seconds").default.observe(3e-6)
        text = to_prometheus(reg)
        assert 'le="1e-06"' in text
        assert 'le="500"' in text
        assert 'le="+Inf"' in text


class TestJsonExport:
    def test_schema_envelope(self):
        payload = to_json(demo_registry())
        assert payload["schema"] == "fabp-metrics"
        assert payload["version"] == 1
        assert [m["name"] for m in payload["metrics"]] == [
            "fabp_demo_bytes",
            "fabp_demo_seconds",
            "fabp_demo_total",
        ]

    def test_histogram_sample_shape(self):
        payload = to_json(demo_registry())
        (sample,) = [
            m for m in payload["metrics"] if m["name"] == "fabp_demo_seconds"
        ][0]["samples"]
        assert sample["labels"] == {"stage": "pack"}
        assert sample["count"] == 3
        assert sample["sum"] == 8.75
        assert sample["buckets"]["+Inf"] == 3
        assert sample["buckets"]["0.5"] == 2

    def test_write_metrics_json_is_stable(self, tmp_path):
        out = write_metrics_json(tmp_path / "m.json", demo_registry())
        text = out.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == to_json(demo_registry())


class TestRegistrySemantics:
    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="counters only go up"):
            reg.counter("c_total").default.inc(-1)

    def test_label_names_are_validated(self):
        reg = MetricsRegistry()
        family = reg.counter("c_total", label_names=("engine",))
        with pytest.raises(ValueError, match="expects labels"):
            family.labels(stage="pack")
        with pytest.raises(ValueError, match="expects labels"):
            family.default  # unlabeled child of a labeled family

    def test_kind_conflict_is_rejected(self):
        reg = MetricsRegistry()
        reg.counter("fabp_x")
        with pytest.raises(ValueError, match="already registered as a"):
            reg.gauge("fabp_x")

    def test_same_labels_share_one_child(self):
        reg = MetricsRegistry()
        family = reg.counter("c_total", label_names=("engine",))
        family.labels(engine="naive").inc()
        family.labels(engine="naive").inc()
        assert family.labels(engine="naive").value == 2

    def test_gauge_track_max_is_a_ratchet(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g").default
        gauge.track_max(100)
        gauge.track_max(50)
        assert gauge.value == 100

    def test_reset_drops_everything(self):
        reg = demo_registry()
        reg.reset()
        assert reg.families() == []
        assert to_prometheus(reg) == "\n"


class TestHistogramBuckets:
    def test_default_bucket_series(self):
        assert len(DEFAULT_TIME_BUCKETS) == 27
        assert DEFAULT_TIME_BUCKETS[0] == 1e-6
        assert DEFAULT_TIME_BUCKETS[-1] == 500.0
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)

    def test_cumulative_is_monotone_and_ends_at_count(self):
        hist = Histogram(bounds=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        pairs = hist.cumulative()
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert pairs[-1] == ("+Inf", 4)
