"""Span tracing tests + the Chrome trace_event golden file.

The recorder origin, span start times, and pid are pinned to binary-exact
values so the golden comparison is byte-deterministic across machines.
"""

import json
import threading

import pytest

from repro.obs import state
from repro.obs.trace import (
    RECORDER,
    TraceRecorder,
    current_span,
    trace,
    write_trace_json,
)


def demo_recorder():
    rec = TraceRecorder(capacity=8, origin=0.0)
    rec.record("scan.execute", "scan", start=0.25, duration=0.125, thread_id=111)
    rec.record(
        "chunk 0",
        "scan.chunk",
        start=0.5,
        duration=0.0625,
        parent="scan.execute",
        args={"chunk": 0},
        thread_id=222,
    )
    return rec


GOLDEN_CHROME = {
    "displayTimeUnit": "ms",
    "otherData": {
        "generator": "repro.obs",
        "schema_version": 1,
        "dropped_spans": 0,
    },
    "traceEvents": [
        {
            "name": "scan.execute",
            "cat": "scan",
            "ph": "X",
            "ts": 250000.0,
            "dur": 125000.0,
            "pid": 42,
            "tid": 1,
            "args": {},
        },
        {
            "name": "chunk 0",
            "cat": "scan.chunk",
            "ph": "X",
            "ts": 500000.0,
            "dur": 62500.0,
            "pid": 42,
            "tid": 2,
            "args": {"chunk": 0, "parent": "scan.execute"},
        },
    ],
}


class TestChromeGolden:
    def test_to_chrome_matches_golden(self):
        assert demo_recorder().to_chrome(pid=42) == GOLDEN_CHROME

    def test_write_trace_json_roundtrip(self, tmp_path):
        out = write_trace_json(tmp_path / "t.json", demo_recorder(), pid=42)
        text = out.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == GOLDEN_CHROME

    def test_thread_ids_remap_to_stable_small_integers(self):
        rec = TraceRecorder(origin=0.0)
        rec.record("a", "t", start=1.0, duration=0.5, thread_id=987654)
        rec.record("b", "t", start=2.0, duration=0.5, thread_id=12)
        rec.record("c", "t", start=3.0, duration=0.5, thread_id=987654)
        tids = [e["tid"] for e in rec.to_chrome(pid=1)["traceEvents"]]
        assert tids == [1, 2, 1]  # first thread seen = lane 1


class TestRingBuffer:
    def test_overflow_drops_oldest_and_counts(self):
        rec = TraceRecorder(capacity=2, origin=0.0)
        for i in range(5):
            rec.record(f"s{i}", "t", start=float(i), duration=0.1, thread_id=1)
        assert len(rec) == 2
        assert rec.dropped == 3
        assert [s.name for s in rec.spans()] == ["s3", "s4"]
        other = rec.to_chrome(pid=1)["otherData"]
        assert other["dropped_spans"] == 3

    def test_equal_starts_sort_by_name(self):
        rec = TraceRecorder(origin=0.0)
        rec.record("zeta", "t", start=1.0, duration=0.1, thread_id=1)
        rec.record("alpha", "t", start=1.0, duration=0.1, thread_id=1)
        assert [s.name for s in rec.spans()] == ["alpha", "zeta"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceRecorder(capacity=0)

    def test_reset_restores_empty_state(self):
        rec = demo_recorder()
        rec.reset(origin=0.0)
        assert len(rec) == 0
        assert rec.dropped == 0
        assert rec.spans() == []


class TestTraceContextManager:
    def test_disabled_records_nothing(self):
        with trace("quiet"):
            pass
        assert len(RECORDER) == 0

    def test_enablement_is_checked_at_enter(self):
        span = trace("late")
        with span:
            state.enable()  # too late: the span already opted out
        assert len(RECORDER) == 0

    def test_parent_attribution_via_thread_stack(self):
        state.enable()
        with trace("outer", category="t"):
            assert current_span() == "outer"
            with trace("inner", category="t"):
                assert current_span() == "inner"
        assert current_span() is None
        spans = {s.name: s for s in RECORDER.spans()}
        assert spans["outer"].parent is None
        assert spans["inner"].parent == "outer"

    def test_span_recorded_even_when_body_raises(self):
        state.enable()
        with pytest.raises(RuntimeError):
            with trace("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in RECORDER.spans()] == ["doomed"]
        assert current_span() is None  # stack unwound

    def test_kwargs_become_span_args(self):
        state.enable()
        with trace("tagged", category="t", items=42):
            pass
        (span,) = RECORDER.spans()
        assert span.args == {"items": 42}
        assert span.category == "t"

    def test_threads_get_independent_parent_stacks(self):
        state.enable()
        seen = {}

        def worker():
            seen["before"] = current_span()
            with trace("thread.span"):
                seen["inside"] = current_span()

        with trace("main.span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == {"before": None, "inside": "thread.span"}
        spans = {s.name: s for s in RECORDER.spans()}
        assert spans["thread.span"].parent is None  # not main.span


class TestTraceDecorator:
    def test_decorator_records_per_call(self):
        @trace("fn.span", category="test")
        def double(x):
            return 2 * x

        state.enable()
        assert double(3) == 6
        assert double(4) == 8
        assert [s.name for s in RECORDER.spans()] == ["fn.span", "fn.span"]

    def test_decorator_is_reentrant(self):
        @trace("fact")
        def fact(n):
            return 1 if n <= 1 else n * fact(n - 1)

        state.enable()
        assert fact(3) == 6
        spans = RECORDER.spans()
        assert len(spans) == 3
        # Inner recursion levels report the same name as their parent.
        assert {s.parent for s in spans} == {None, "fact"}

    def test_decorator_noop_when_disabled(self):
        @trace("fn.span")
        def double(x):
            return 2 * x

        assert double(5) == 10
        assert len(RECORDER) == 0
