"""Shared fixture: every obs test starts and ends with the layer clean."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
