"""Profiling-hook tests: correct families when enabled, no-ops when not."""

from types import SimpleNamespace

from repro.obs import REGISTRY, RECORDER, state
from repro.obs import profile


def family(name):
    return {f.name: f for f in REGISTRY.families()}[name]


def counter_value(name, **labels):
    return family(name).labels(**labels).value


class TestStage:
    def test_timer_is_valid_even_while_disabled(self):
        with profile.stage("quiet") as timer:
            sum(range(1000))
        assert timer.seconds > 0
        assert REGISTRY.families() == []
        assert len(RECORDER) == 0

    def test_enabled_emits_histogram_and_span(self):
        state.enable()
        with profile.stage("scan.pack", category="scan", refs=3) as timer:
            pass
        assert timer.seconds > 0
        child = family("fabp_stage_seconds").labels(stage="scan.pack")
        assert child.count == 1
        (span,) = RECORDER.spans()
        assert span.name == "scan.pack"
        assert span.category == "scan"
        assert span.args == {"refs": 3}

    def test_timer_survives_exceptions(self):
        try:
            with profile.stage("doomed") as timer:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.seconds > 0


class TestScanHooks:
    def test_score_call(self):
        state.enable()
        profile.record_score_call("bitscore", 0.25, positions=1000)
        profile.record_score_call("bitscore", 0.25, positions=500)
        assert counter_value("fabp_score_calls_total", engine="bitscore") == 2
        assert counter_value("fabp_score_positions_total", engine="bitscore") == 1500
        hist = family("fabp_score_seconds").labels(engine="bitscore")
        assert hist.count == 2 and hist.sum == 0.5

    def test_scan_merge_totals(self):
        state.enable()
        profile.record_scan_merge(6, 17)
        assert counter_value("fabp_scan_references_total") == 6
        assert counter_value("fabp_scan_hits_total") == 17

    def test_scan_attempt_emits_counter_histogram_and_span(self):
        state.enable()
        profile.record_scan_attempt(3, 1, "ok", 0.125, worker=2)
        assert counter_value("fabp_scan_chunk_attempts_total", outcome="ok") == 1
        assert family("fabp_chunk_attempt_seconds").labels(outcome="ok").count == 1
        (span,) = RECORDER.spans()
        assert span.name == "chunk 3"
        assert span.category == "scan.chunk"
        assert span.args == {"chunk": 3, "attempt": 1, "outcome": "ok", "worker": 2}

    def test_report_counters_and_degraded_flag(self):
        state.enable()
        profile.record_scan_report_counters(2, 1, 0, degraded=False)
        assert counter_value("fabp_scan_retries_total") == 2
        assert counter_value("fabp_scan_hedges_total") == 1
        assert counter_value("fabp_scan_respawns_total") == 0
        names = {f.name for f in REGISTRY.families()}
        assert "fabp_scan_degraded_total" not in names
        profile.record_scan_report_counters(0, 0, 0, degraded=True)
        assert counter_value("fabp_scan_degraded_total") == 1

    def test_checkpoint_accounting(self):
        state.enable()
        profile.record_checkpoint_chunk(10)
        profile.record_checkpoint_chunk(20)
        assert counter_value("fabp_checkpoint_chunks_total") == 2
        assert counter_value("fabp_checkpoint_bytes_total") == 30

    def test_shm_gauge_is_high_water_mark(self):
        state.enable()
        profile.record_shm_bytes(100)
        profile.record_shm_bytes(50)
        assert family("fabp_shm_bytes").default.value == 100


class TestAccelAndBenchHooks:
    def fake_run(self):
        return SimpleNamespace(
            plan=SimpleNamespace(device=SimpleNamespace(name="FabP-250"), segments=4),
            beats=1000,
            compute_cycles=800,
            stall_cycles=50,
            load_cycles=100,
            writeback_cycles=25,
            drain_cycles=25,
            elapsed_seconds=0.01,
            reference_length=4000,
            hits=[(0, 9)],
        )

    def test_kernel_run_cycles_by_kind(self):
        state.enable()
        profile.record_kernel_run(self.fake_run())
        assert counter_value("fabp_kernel_runs_total", device="FabP-250") == 1
        assert counter_value("fabp_kernel_beats_total", device="FabP-250") == 1000
        cycles = family("fabp_kernel_cycles_total")
        assert cycles.labels(device="FabP-250", kind="compute").value == 800
        assert cycles.labels(device="FabP-250", kind="stall").value == 50
        (span,) = RECORDER.spans()
        assert span.name == "accel.kernel.run"
        assert span.args["beats"] == 1000

    def test_schedule_plan(self):
        state.enable()
        profile.record_schedule_plan(4)
        profile.record_schedule_plan(4)
        assert counter_value("fabp_schedule_plans_total", segments="4") == 2

    def test_bench_record(self):
        state.enable()
        profile.record_bench_record("bitscore", 2, 1.5e8, 0.2)
        gauge = family("fabp_bench_positions_per_s").labels(
            engine="bitscore", workers="2"
        )
        assert gauge.value == 1.5e8
        (span,) = RECORDER.spans()
        assert span.name == "bench.bitscore"


class TestDisabledHooksAreNoops:
    def test_every_hook_is_silent_while_disabled(self):
        profile.record_score_call("bitscore", 0.1, 10)
        profile.record_scan_merge(1, 1)
        profile.record_scan_attempt(0, 1, "ok", 0.1)
        profile.record_scan_report_counters(1, 1, 1, degraded=True)
        profile.record_checkpoint_chunk(10)
        profile.record_shm_bytes(10)
        profile.record_schedule_plan(2)
        profile.record_bench_record("naive", 1, 1.0, 1.0)
        assert REGISTRY.families() == []
        assert len(RECORDER) == 0


class TestEncodingCacheHook:
    def test_disabled_is_noop(self):
        profile.record_encoding_cache(3, 1, 2)
        assert REGISTRY.families() == []

    def test_gauges_snapshot_the_cache(self):
        state.enable()
        profile.record_encoding_cache(3, 1, 2)
        assert family("fabp_encoding_cache_hits").default.value == 3
        assert family("fabp_encoding_cache_misses").default.value == 1
        assert family("fabp_encoding_cache_entries").default.value == 2

    def test_extended_alignment_emits_cache_gauges(self):
        from repro.core.aligner import alignment_scores_extended

        state.enable()
        alignment_scores_extended("S", "AGU")
        names = {f.name for f in REGISTRY.families()}
        assert {
            "fabp_encoding_cache_hits",
            "fabp_encoding_cache_misses",
            "fabp_encoding_cache_entries",
        } <= names
        assert family("fabp_encoding_cache_entries").default.value >= 1
