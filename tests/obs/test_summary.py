"""Artifact sniffing, ScanReport v1/v2->v3 normalization, summarize rendering."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, to_json
from repro.obs.summary import (
    SCAN_REPORT_VERSION,
    load_artifact,
    normalize_report_dict,
    summarize,
    summarize_metrics,
    summarize_scan_report,
    summarize_trace,
)
from repro.obs.trace import TraceRecorder


def v1_report():
    """A ScanReport dict as PR 4 wrote it: version 1, no metrics section."""
    return {
        "version": 1,
        "mode": "serial",
        "degraded": False,
        "clean": True,
        "elapsed_seconds": 1.5,
        "chunks": {"total": 3, "completed": 3},
        "counters": {"ok": 3},
        "chunk_attempts": [
            {"chunk": 0, "attempt": 1, "outcome": "ok", "seconds": 0.4},
            {"chunk": 1, "attempt": 1, "outcome": "raise", "seconds": 0.1},
            {"chunk": 1, "attempt": 2, "outcome": "ok", "seconds": 0.5},
        ],
    }


def metrics_payload():
    reg = MetricsRegistry()
    stage = reg.histogram("fabp_stage_seconds", "Stage time.", ("stage",))
    stage.labels(stage="scan.score").observe(0.75)
    stage.labels(stage="scan.merge").observe(0.25)
    engine = reg.histogram("fabp_score_seconds", "Engine time.", ("engine",))
    engine.labels(engine="bitscore").observe(0.5)
    reg.counter("fabp_scan_retries_total", "Retries.").default.inc(2)
    return to_json(reg)


class TestLoadArtifact:
    def test_sniffs_metrics(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(metrics_payload()))
        kind, payload = load_artifact(path)
        assert kind == "metrics"
        assert payload["schema"] == "fabp-metrics"

    def test_sniffs_trace(self, tmp_path):
        rec = TraceRecorder(origin=0.0)
        rec.record("scan.score", "scan", start=1.0, duration=0.5, thread_id=1)
        path = tmp_path / "t.json"
        path.write_text(json.dumps(rec.to_chrome(pid=1)))
        assert load_artifact(path)[0] == "trace"

    def test_sniffs_bare_and_wrapped_scan_reports(self, tmp_path):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(v1_report()))
        assert load_artifact(bare)[0] == "scan-report"
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(
            json.dumps({"version": 1, "queries": [{"query": "q", "report": v1_report()}]})
        )
        assert load_artifact(wrapped)[0] == "scan-report"

    def test_rejects_unknown_payloads(self, tmp_path):
        alien = tmp_path / "alien.json"
        alien.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="unrecognized artifact"):
            load_artifact(alien)
        array = tmp_path / "array.json"
        array.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_artifact(array)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_artifact(tmp_path / "nope.json")


def v2_report():
    """A ScanReport dict as PR 5-8 wrote it: version 2, no shards section."""
    report = v1_report()
    report["version"] = 2
    report["metrics"] = {"stage_seconds": {"execute": 1.4, "merge": 0.1}}
    return report


class TestNormalizeReportDict:
    def test_v1_gains_empty_metrics_section(self):
        original = v1_report()
        normalized = normalize_report_dict(original)
        assert normalized["version"] == SCAN_REPORT_VERSION
        assert normalized["metrics"] == {}
        assert normalized["shards"] == []
        assert original["version"] == 1  # input not mutated
        assert "metrics" not in original

    def test_missing_version_treated_as_v1(self):
        report = v1_report()
        del report["version"]
        assert normalize_report_dict(report)["version"] == SCAN_REPORT_VERSION

    def test_v2_metrics_pass_through(self):
        report = v1_report()
        report["version"] = 2
        report["metrics"] = {"stage_seconds": {"execute": 1.0}}
        normalized = normalize_report_dict(report)
        assert normalized["metrics"] == {"stage_seconds": {"execute": 1.0}}

    def test_v2_accepted_and_gains_empty_shards(self):
        original = v2_report()
        normalized = normalize_report_dict(original)
        assert normalized["version"] == SCAN_REPORT_VERSION
        assert normalized["shards"] == []
        assert normalized["metrics"] == original["metrics"]
        assert "shards" not in original  # input not mutated

    def test_v3_shards_pass_through(self):
        report = v2_report()
        report["version"] = 3
        report["shards"] = [
            {"shard": 0, "start": 0, "stop": 3, "nucleotides": 9000,
             "status": "dead", "attempts": 2, "resumed_chunks": 1,
             "hedges": 0, "elapsed_seconds": 0.5},
        ]
        normalized = normalize_report_dict(report)
        assert normalized["shards"] == report["shards"]

    def test_newer_schema_is_refused(self):
        report = v1_report()
        report["version"] = SCAN_REPORT_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            normalize_report_dict(report)

    def test_v4_is_refused(self):
        report = v2_report()
        report["version"] = 4
        with pytest.raises(ValueError, match="newer than supported"):
            normalize_report_dict(report)

    def test_live_report_round_trips(self):
        from repro.host.resilience import ScanReport, ShardStatus

        report = ScanReport(mode="sharded", workers=2, chunks_total=2)
        report.shards = [
            ShardStatus(0, 0, 3, 9000, "ok", 1, 0, 0, 0.1),
            ShardStatus(1, 3, 6, 9000, "dead", 3, 2, 1, 0.9, "budget"),
        ]
        payload = report.to_dict()
        assert payload["version"] == SCAN_REPORT_VERSION
        normalized = normalize_report_dict(payload)
        assert normalized["shards"] == payload["shards"]
        restored = [ShardStatus.from_dict(s) for s in normalized["shards"]]
        assert restored == report.shards


class TestSummarizeRendering:
    def test_metrics_tables(self):
        text = summarize_metrics(metrics_payload())
        assert "Stage breakdown (fabp_stage_seconds)" in text
        assert "scan.score" in text and "75.0%" in text
        assert "Scoring engines (fabp_score_seconds)" in text
        assert "fabp_scan_retries_total" in text

    def test_empty_metrics_hint(self):
        empty = to_json(MetricsRegistry())
        assert "was observability enabled?" in summarize_metrics(empty)

    def test_trace_table_and_dropped_note(self):
        rec = TraceRecorder(origin=0.0)
        rec.record("scan.score", "scan", start=1.0, duration=0.5, thread_id=1)
        payload = rec.to_chrome(pid=1)
        text = summarize_trace(payload)
        assert "Span breakdown (traceEvents)" in text
        assert "scan.score" in text
        assert "dropped" not in text
        payload["otherData"]["dropped_spans"] = 5
        assert "5 spans dropped" in summarize_trace(payload)

    def test_scan_report_outcomes_and_stages(self):
        report = v2_report()
        text = summarize_scan_report(report)
        assert "3/3 chunks [clean] mode=serial" in text
        assert "(schema v3)" in text
        assert "attempt:ok" in text and "attempt:raise" in text
        assert "stage:execute" in text

    def test_scan_report_shard_table(self):
        report = v2_report()
        report["version"] = 3
        report["shards"] = [
            {"shard": 0, "start": 0, "stop": 3, "nucleotides": 9000,
             "status": "ok", "attempts": 1, "resumed_chunks": 0,
             "hedges": 0, "elapsed_seconds": 0.1},
            {"shard": 1, "start": 3, "stop": 6, "nucleotides": 9000,
             "status": "dead", "attempts": 3, "resumed_chunks": 2,
             "hedges": 1, "elapsed_seconds": 0.9},
        ]
        text = summarize_scan_report(report)
        assert "[dead-shards]" in text
        assert "resumed" in text and "hedges" in text
        assert "3..6" in text and "dead" in text

    def test_summarize_autodetects_kind(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(metrics_payload()))
        assert "Stage breakdown" in summarize(path)
