"""Smoke tests: every example script runs to completion.

Examples are documentation that must not rot; each is executed as a
subprocess (fast parameters where scripts allow) and checked for a zero
exit code and its signature output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "AUG-UU(C/U)" in result.stdout
        assert "hits" in result.stdout

    def test_database_search(self):
        result = _run("database_search.py")
        assert result.returncode == 0, result.stderr
        assert "FabP" in result.stdout
        assert "NO" not in result.stdout.split("query")[0]  # header clean

    def test_hardware_walkthrough(self):
        result = _run("hardware_walkthrough.py")
        assert result.returncode == 0, result.stderr
        assert "physical LUTs: 2" in result.stdout
        assert "FabP-250" in result.stdout

    def test_reproduce_paper(self):
        result = _run("reproduce_paper.py")
        assert result.returncode == 0, result.stderr
        assert "Table I" in result.stdout
        assert "crossover" in result.stdout

    def test_export_rtl(self, tmp_path):
        result = _run("export_rtl.py", str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "fabp_comparator.v").exists()
        assert (tmp_path / "fabp_array.vcd").exists()

    def test_threshold_tuning(self):
        result = _run("threshold_tuning.py")
        assert result.returncode == 0, result.stderr
        assert "Operating point" in result.stdout

    def test_cluster_scaleout(self):
        result = _run("cluster_scaleout.py")
        assert result.returncode == 0, result.stderr
        assert "batch speedup" in result.stdout

    def test_deployment_planning(self):
        result = _run("deployment_planning.py")
        assert result.returncode == 0, result.stderr
        assert "queries/hour" in result.stdout

    def test_observability_tour(self):
        result = _run("observability_tour.py")
        assert result.returncode == 0, result.stderr
        assert "results identical with observability on: True" in result.stdout
        assert "Stage breakdown (fabp_stage_seconds)" in result.stdout
        assert "Tour complete" in result.stdout

    @pytest.mark.slow
    def test_accuracy_study(self):
        result = _run("accuracy_study.py", timeout=600)
        assert result.returncode == 0, result.stderr
        assert "Recall on planted homologs" in result.stdout
