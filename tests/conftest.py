"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.seq.generate import random_protein, random_rna


@pytest.fixture
def rng():
    """A fresh seeded generator per test (determinism without coupling)."""
    return np.random.default_rng(0xFAB9)


@pytest.fixture
def small_protein(rng):
    """A 12-residue query with realistic composition."""
    return random_protein(12, rng=rng)


@pytest.fixture
def small_reference(rng):
    """A 600-nt RNA reference."""
    return random_rna(600, rng=rng)
