"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.seq.generate import random_protein, random_rna


@pytest.fixture(scope="session", autouse=True)
def shmsan_session():
    """Run the whole suite under the shared-memory sanitizer.

    Armed by default (and in CI via ``FABP_SHMSAN=1``); set ``FABP_SHMSAN=0``
    to opt out.  Any segment leaked, double-closed, or read after close
    anywhere in the session — outside a test's own ``shmsan.scope()`` —
    fails the run with a per-violation report.  See
    ``docs/static_analysis.md``.
    """
    if os.environ.get("FABP_SHMSAN", "1") == "0":
        yield
        return
    from repro.statics import shmsan

    if shmsan.is_installed():  # e.g. pytest-in-pytest
        yield
        return
    shmsan.install()
    try:
        yield
    finally:
        report = shmsan.uninstall()
    assert report.clean, shmsan.format_violations(report.violations)


@pytest.fixture
def rng():
    """A fresh seeded generator per test (determinism without coupling)."""
    return np.random.default_rng(0xFAB9)


@pytest.fixture
def small_protein(rng):
    """A 12-residue query with realistic composition."""
    return random_protein(12, rng=rng)


@pytest.fixture
def encoded_small_protein(small_protein):
    """``small_protein`` encoded to its instruction stream, lint-clean.

    Guards every consumer of the fixture against encoder regressions: a
    stream that trips the instruction linter would silently skew any test
    built on top of it.
    """
    from repro.core.encoding import encode_query
    from repro.core.instr_lint import lint_query

    query = encode_query(small_protein)
    report = lint_query(query)
    assert report.clean, [str(f) for f in report.findings]
    return query


@pytest.fixture
def small_reference(rng):
    """A 600-nt RNA reference."""
    return random_rna(600, rng=rng)
