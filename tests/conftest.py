"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.seq.generate import random_protein, random_rna


@pytest.fixture
def rng():
    """A fresh seeded generator per test (determinism without coupling)."""
    return np.random.default_rng(0xFAB9)


@pytest.fixture
def small_protein(rng):
    """A 12-residue query with realistic composition."""
    return random_protein(12, rng=rng)


@pytest.fixture
def encoded_small_protein(small_protein):
    """``small_protein`` encoded to its instruction stream, lint-clean.

    Guards every consumer of the fixture against encoder regressions: a
    stream that trips the instruction linter would silently skew any test
    built on top of it.
    """
    from repro.core.encoding import encode_query
    from repro.core.instr_lint import lint_query

    query = encode_query(small_protein)
    report = lint_query(query)
    assert report.clean, [str(f) for f in report.findings]
    return query


@pytest.fixture
def small_reference(rng):
    """A 600-nt RNA reference."""
    return random_rna(600, rng=rng)
