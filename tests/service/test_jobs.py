"""Job lifecycle and job-store unit tests."""

import pytest

from repro.core.aligner import align
from repro.core.encoding import encode_query
from repro.service.jobs import JOB_STATES, JobStore, pending_jobs, result_to_dict


@pytest.fixture()
def store():
    return JobStore(max_finished=4)


def _job(store, letters="MFR", threshold=5):
    return store.create("q", encode_query(letters), threshold)


def test_job_lifecycle_and_timestamps(store):
    job = _job(store)
    assert job.state == "queued" and job.id.startswith("job-")
    assert job.submitted_at > 0 and job.started_at is None
    job.mark_running()
    assert job.state == "running" and job.started_at is not None
    job.mark_done([])
    assert job.state == "done" and job.finished_at is not None
    assert job.exit_code() == 0


def test_job_exit_codes():
    store = JobStore()
    clean, degraded, dead = (_job(store) for _ in range(3))
    clean.mark_done([])
    degraded.mark_done([], degraded=True)
    dead.mark_done([], degraded=True, dead_shards=2)
    assert clean.exit_code() == 0
    assert degraded.exit_code() == 3
    assert dead.exit_code() == 4  # dead shards dominate


def test_job_to_dict_shapes(store):
    job = _job(store, "MFR", threshold=7)
    base = job.to_dict()
    assert base["state"] == "queued" and base["threshold"] == 7
    assert "exit_code" not in base and "results" not in base
    result = align("MFR", "AUGUUUCGU", threshold=7)
    job.mark_running()
    job.mark_done([result])
    done = job.to_dict(include_results=True)
    assert done["exit_code"] == 0 and done["num_hits"] == len(result.hits)
    assert done["results"][0]["reference"] == result.reference_name
    failed = _job(store)
    failed.mark_failed("boom")
    view = failed.to_dict()
    assert view["state"] == "failed" and view["exit_code"] == 1
    assert view["error"] == "boom"


def test_result_to_dict_is_json_safe():
    result = align("MFR", "AUGUUUCGU", min_identity=0.9)
    payload = result_to_dict(result)
    assert payload["reference_length"] == 9
    assert payload["hits"] == [[h.position, h.score] for h in result.hits]
    assert payload["threshold"] == result.threshold
    import json

    json.dumps(payload)  # must not raise


def test_store_lookup_and_counts(store):
    jobs = [_job(store) for _ in range(3)]
    assert store.get(jobs[0].id) is jobs[0]
    assert store.get("job-999999") is None
    jobs[0].mark_running()
    jobs[1].mark_running()
    jobs[1].mark_done([])
    counts = store.counts()
    assert counts == {"queued": 1, "running": 1, "done": 1, "failed": 0}
    assert set(counts) == set(JOB_STATES)
    assert pending_jobs(store.jobs()) == [jobs[0], jobs[2]]


def test_store_evicts_only_finished_jobs():
    store = JobStore(max_finished=2)
    finished = []
    for _ in range(5):
        job = _job(store)
        job.mark_done([])
        finished.append(job)
    live = _job(store)  # queued: must never be evicted
    for _ in range(3):
        _job(store).mark_done([])
    # Old finished jobs age out...
    assert store.get(finished[0].id) is None
    # ...but the queued job and the freshest finished jobs remain
    # (eviction runs at admission, so the bound can lag by one batch).
    assert store.get(live.id) is live
    assert store.counts()["done"] == 3
    assert store.counts()["queued"] == 1


def test_store_rejects_bad_bound():
    with pytest.raises(ValueError):
        JobStore(max_finished=0)
