"""HTTP surface tests: in-process server, concurrent clients, status map."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core.encoding import encode_query
from repro.host.scan import PackedDatabase, scan_database
from repro.service import ScanServer, ScanService, wait_until_listening
from repro.workloads import build_database, sample_queries

QUERIES = [str(q) for q in sample_queries(3, length=12, seed=21)]
_DB = build_database(
    sample_queries(3, length=12, seed=21),
    num_references=4,
    reference_length=500,
    seed=21,
)
PACKED = PackedDatabase.from_references(_DB.references)


@pytest.fixture()
def server():
    obs.reset()
    obs.enable()
    service = ScanService(PACKED, workers=1)
    srv = ScanServer.ephemeral(service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.address
    assert wait_until_listening(host, port)
    try:
        yield srv
    finally:
        srv.shutdown(drain=False)
        thread.join(timeout=10)
        obs.disable()
        obs.reset()


def request(server, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        server.url(path),
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as error:
        raw = error.read()
        return error.code, json.loads(raw) if raw else {}


def poll_results(server, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        code, body = request(server, "GET", f"/results/{job_id}")
        if code != 202:
            return code, body
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never finished")


def expected_hits(query, min_identity=0.9):
    results = scan_database(
        encode_query(query), PACKED, min_identity=min_identity, workers=1
    )
    return [
        {
            "reference": r.reference_name,
            "reference_length": r.reference_length,
            "threshold": r.threshold,
            "hits": [[h.position, h.score] for h in r.hits],
            "max_score": r.max_score,
        }
        for r in results
    ]


def test_scan_roundtrip_bit_identical(server):
    code, body = request(
        server, "POST", "/scan", {"query": QUERIES[0], "min_identity": 0.9}
    )
    assert code == 202 and body["state"] in ("queued", "running", "done")
    job_id = body["id"]
    code, job = request(server, "GET", f"/jobs/{job_id}")
    assert code == 200 and job["id"] == job_id
    code, done = poll_results(server, job_id)
    assert code == 200
    assert done["exit_code"] == 0
    assert done["results"] == expected_hits(QUERIES[0])


def test_concurrent_clients_all_bit_identical(server):
    outcomes = {}

    def client(i):
        query = QUERIES[i % len(QUERIES)]
        code, body = request(
            server, "POST", "/scan", {"query": query, "min_identity": 0.9}
        )
        assert code == 202
        outcomes[i] = (query, poll_results(server, body["id"]))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(outcomes) == 6
    for query, (code, done) in outcomes.values():
        assert code == 200, done
        assert done["results"] == expected_hits(query)


def test_batched_post_and_cached_repeat(server):
    code, body = request(
        server,
        "POST",
        "/scan",
        {"queries": [{"query": q, "min_identity": 0.9} for q in QUERIES]},
    )
    assert code == 202 and len(body["jobs"]) == len(QUERIES)
    for job in body["jobs"]:
        code, done = poll_results(server, job["id"])
        assert code == 200 and not done["cached"]
    # Identical repeat: answered from the LRU cache at admission time.
    code, body = request(
        server, "POST", "/scan", {"query": QUERIES[0], "min_identity": 0.9}
    )
    assert code == 202 and body["state"] == "done"
    code, done = request(server, "GET", f"/results/{body['id']}")
    assert code == 200 and done["cached"]
    assert done["results"] == expected_hits(QUERIES[0])


def test_usage_errors_are_400(server):
    for bad in (
        None,  # empty body
        {"threshold": 5},  # no query
        {"query": 7},  # not a string
        {"queries": []},  # empty list
        {"query": "MFR", "threshold": 5, "min_identity": 0.9},  # both knobs
    ):
        code, body = request(server, "POST", "/scan", bad)
        assert code == 400, bad
        assert "error" in body


def test_unknown_routes_and_jobs_are_404(server):
    assert request(server, "GET", "/nope")[0] == 404
    assert request(server, "GET", "/jobs/job-999999")[0] == 404
    assert request(server, "GET", "/results/job-999999")[0] == 404
    assert request(server, "POST", "/nope", {"query": "MFR"})[0] == 404


def test_metrics_exposes_service_families(server):
    request(server, "POST", "/scan", {"query": QUERIES[0], "min_identity": 0.9})
    req = urllib.request.Request(server.url("/metrics"))
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"].startswith("text/plain")
        text = resp.read().decode()
    assert "fabp_service_requests_total" in text
    assert 'endpoint="scan"' in text
    assert "fabp_service_queue_depth" in text


def test_healthz_reports_serving_then_draining(server):
    code, body = request(server, "GET", "/healthz")
    assert code == 200 and body["state"] == "serving"
    assert body["backend"]["mode"] == "session"
    server.service.drain(timeout=30)
    code, body = request(server, "GET", "/healthz")
    assert code == 503 and body["state"] == "draining"
    # Draining also refuses admission with a retriable 503.
    code, body = request(server, "POST", "/scan", {"query": QUERIES[0]})
    assert code == 503 and body["retriable"] is True
