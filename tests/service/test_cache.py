"""Result-cache unit tests: LRU mechanics and fingerprint semantics."""

import numpy as np
import pytest

from repro.core.encoding import encode_query
from repro.host.scan import PackedDatabase
from repro.service.cache import (
    ResultCache,
    database_fingerprint,
    query_fingerprint,
)


def _key(tag, threshold=10):
    return (f"qfp-{tag}", "dbfp", threshold, "bitscore_batch")


def test_get_put_and_counters():
    cache = ResultCache(max_entries=4)
    assert cache.get(_key("a")) is None
    cache.put(_key("a"), ["ra"])
    assert cache.get(_key("a")) == ["ra"]
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_ratio"] == 0.5
    assert len(cache) == 1


def test_lru_eviction_order():
    cache = ResultCache(max_entries=2)
    cache.put(_key("a"), ["ra"])
    cache.put(_key("b"), ["rb"])
    assert cache.get(_key("a")) == ["ra"]  # refresh a; b is now oldest
    cache.put(_key("c"), ["rc"])
    assert cache.get(_key("b")) is None  # evicted
    assert cache.get(_key("a")) == ["ra"]
    assert cache.get(_key("c")) == ["rc"]
    assert cache.stats()["evictions"] == 1


def test_distinct_thresholds_are_distinct_entries():
    cache = ResultCache(max_entries=4)
    cache.put(_key("a", threshold=10), ["t10"])
    cache.put(_key("a", threshold=12), ["t12"])
    assert cache.get(_key("a", threshold=10)) == ["t10"]
    assert cache.get(_key("a", threshold=12)) == ["t12"]


def test_zero_entries_disables_caching():
    cache = ResultCache(max_entries=0)
    cache.put(_key("a"), ["ra"])
    assert cache.get(_key("a")) is None
    assert len(cache) == 0


def test_clear():
    cache = ResultCache(max_entries=4)
    cache.put(_key("a"), ["ra"])
    cache.clear()
    assert cache.get(_key("a")) is None


def test_rejects_negative_bound():
    with pytest.raises(ValueError):
        ResultCache(max_entries=-1)


def test_query_fingerprint_tracks_instructions():
    a1 = query_fingerprint(encode_query("MFR"))
    a2 = query_fingerprint(encode_query("MFR"))
    b = query_fingerprint(encode_query("MFW"))
    assert a1 == a2
    assert a1 != b
    assert len(a1) == 64  # sha256 hex


def _packed(texts, names=None):
    return PackedDatabase.from_references(texts, names)


def test_database_fingerprint_tracks_content_and_names():
    fp1 = database_fingerprint(_packed(["AUGUUUCGU", "AUGAAACCC"]))
    fp2 = database_fingerprint(_packed(["AUGUUUCGU", "AUGAAACCC"]))
    assert fp1 == fp2
    # Different sequence content -> different database identity.
    changed = database_fingerprint(_packed(["AUGUUUCGU", "AUGAAACCA"]))
    assert changed != fp1
    # Same content, different names -> still a different identity.
    renamed = database_fingerprint(
        _packed(["AUGUUUCGU", "AUGAAACCC"], names=["x", "y"])
    )
    assert renamed != fp1


def test_database_fingerprint_swap_invalidates_key():
    """The db half of the cache key is all the invalidation there is."""
    query = encode_query("MFR")
    old = _packed(["AUGUUUCGU"])
    new = _packed(["AUGUUUCGC"])
    cache = ResultCache(max_entries=4)
    old_key = (query_fingerprint(query), database_fingerprint(old), 9, "bitscore")
    cache.put(old_key, ["old-results"])
    new_key = (query_fingerprint(query), database_fingerprint(new), 9, "bitscore")
    assert cache.get(new_key) is None  # nothing stale crosses the swap
    assert cache.get(old_key) == ["old-results"]


def test_fingerprint_uses_packed_buffer():
    db = _packed(["AUGUUUCGU"])
    before = database_fingerprint(db)
    tampered = PackedDatabase(
        names=db.names,
        lengths=db.lengths,
        byte_offsets=db.byte_offsets,
        buffer=np.array(db.buffer ^ 1, dtype=db.buffer.dtype),
    )
    assert database_fingerprint(tampered) != before
