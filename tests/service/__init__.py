"""Front-door scan service test suite."""
