"""ScanService unit tests: batching, caching, back-pressure, drain."""

import threading
import time

import pytest

from repro.core.encoding import encode_query
from repro.host.scan import PackedDatabase, scan_database
from repro.service import (
    ScanService,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.workloads import build_database, sample_queries


@pytest.fixture(scope="module")
def workload():
    queries = sample_queries(4, length=12, seed=9)
    database = build_database(
        queries, num_references=5, reference_length=600, seed=9
    )
    packed = PackedDatabase.from_references(database.references)
    return [str(q) for q in queries], packed


def wait_done(job, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state in ("done", "failed"):
            return job
        time.sleep(0.005)
    raise AssertionError(f"job {job.id} stuck in {job.state}")


def hit_view(results):
    return [
        (r.reference_name, tuple((h.position, h.score) for h in r.hits))
        for r in results
    ]


def test_submit_matches_scan_database(workload):
    queries, packed = workload
    with ScanService(packed, workers=1) as service:
        job = service.submit(queries[0], min_identity=0.9, name="q0")
        wait_done(job)
        assert job.state == "done" and job.exit_code() == 0
        solo = scan_database(
            encode_query(queries[0]), packed, min_identity=0.9, workers=1
        )
        assert hit_view(job.results) == hit_view(solo)


def test_concurrent_submitters_bit_identical(workload):
    queries, packed = workload
    with ScanService(packed, workers=1) as service:
        jobs = {}

        def client(i):
            jobs[i] = service.submit(queries[i % len(queries)], min_identity=0.9)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, job in jobs.items():
            wait_done(job)
            assert job.state == "done", job.error
            solo = scan_database(
                encode_query(queries[i % len(queries)]),
                packed,
                min_identity=0.9,
                workers=1,
            )
            assert hit_view(job.results) == hit_view(solo)
        assert service.exit_code() == 0


def test_cache_hit_replays_identical_results(workload):
    queries, packed = workload
    with ScanService(packed, workers=1) as service:
        first = wait_done(service.submit(queries[1], min_identity=0.9))
        second = service.submit(queries[1], min_identity=0.9)
        # A hit is answered at admission: already done, flagged cached.
        assert second.state == "done" and second.cached
        assert hit_view(second.results) == hit_view(first.results)
        stats = service.cache.stats()
        assert stats["hits"] == 1
        # A different threshold is a different key -> miss.
        third = wait_done(service.submit(queries[1], threshold=first.threshold - 1))
        assert not third.cached


def test_database_swap_means_no_stale_hits(workload):
    queries, packed = workload
    with ScanService(packed, workers=1) as service:
        wait_done(service.submit(queries[0], min_identity=0.9))
        fp_before = service.database_fingerprint
    other = build_database(
        sample_queries(4, length=12, seed=9),
        num_references=5,
        reference_length=600,
        substitution_rate=0.05,
        seed=10,
    )
    with ScanService(
        PackedDatabase.from_references(other.references), workers=1
    ) as swapped:
        assert swapped.database_fingerprint != fp_before
        job = swapped.submit(queries[0], min_identity=0.9)
        assert not job.cached  # fresh database, fresh key space
        wait_done(job)


def test_bad_requests_are_rejected_up_front(workload):
    _, packed = workload
    with ScanService(packed, workers=1) as service:
        with pytest.raises(ValueError):
            service.submit("MFR", threshold=5, min_identity=0.9)  # both
        with pytest.raises(Exception):
            service.submit("not a protein ]]", min_identity=0.9)
        # Rejections never became jobs the batcher must run.
        assert service.stats()["queue_depth"] == 0


def test_saturation_refuses_instead_of_dropping(workload):
    queries, packed = workload

    class Gated(ScanService):
        """Block the batcher so the queue can be filled deterministically."""

        gate = threading.Event()

        def _execute(self, batch):
            self.gate.wait(timeout=30)
            super()._execute(batch)

    service = Gated(packed, workers=1, max_queue=2, max_batch=1)
    try:
        admitted = [service.submit(q, min_identity=0.9) for q in queries[:2]]
        # Queue bound 2 and a gated batcher: one more may be in flight,
        # but within a few submits the queue must refuse.
        with pytest.raises(ServiceSaturatedError):
            for query in 4 * queries:
                service.submit(query, threshold=1)
        Gated.gate.set()
        for job in admitted:
            wait_done(job)
    finally:
        Gated.gate.set()
        service.close()


def test_drain_finishes_queued_work_then_refuses(workload):
    queries, packed = workload
    service = ScanService(packed, workers=1)
    try:
        jobs = [service.submit(q, min_identity=0.9) for q in queries]
        assert service.drain(timeout=60.0)
        assert service.draining
        for job in jobs:
            assert job.state == "done", job.error
        with pytest.raises(ServiceClosedError):
            service.submit(queries[0], min_identity=0.9)
    finally:
        service.close()
    # close() is idempotent and a closed service still reports stats.
    service.close()
    assert service.stats()["state"] == "closed"


def test_stats_shape(workload):
    queries, packed = workload
    with ScanService(packed, workers=1, cache_entries=8) as service:
        wait_done(service.submit(queries[0], min_identity=0.9))
        stats = service.stats()
        assert stats["state"] == "serving"
        assert stats["backend"]["mode"] == "session"
        assert stats["backend"]["engine"] == "bitscore_batch"
        assert stats["database"]["references"] == packed.num_references
        assert stats["cache"]["max_entries"] == 8
        assert stats["jobs"]["done"] == 1
        assert stats["exit_code"] == 0


def test_sharded_backend(workload):
    queries, packed = workload
    with ScanService(packed, shards=2) as service:
        assert service.stats()["backend"] == {
            "engine": "bitscore_batch",
            "mode": "sharded",
            "num_shards": 2,
        }
        job = wait_done(service.submit(queries[0], min_identity=0.9), timeout=120)
        assert job.state == "done", job.error
        solo = scan_database(
            encode_query(queries[0]), packed, min_identity=0.9, workers=1
        )
        assert hit_view(job.results) == hit_view(solo)


def test_checkpointed_batches_resume(workload, tmp_path):
    """An identical re-submitted batch lands in the same checkpoint store."""
    queries, packed = workload
    ckpt = tmp_path / "service_ckpt"
    with ScanService(packed, workers=1, checkpoint_dir=ckpt) as service:
        wait_done(service.submit(queries[0], min_identity=0.9))
    stores = list(ckpt.glob("batch_*"))
    assert len(stores) == 1
    # Same query on a fresh daemon: deterministic directory, warm resume.
    with ScanService(packed, workers=1, checkpoint_dir=ckpt) as service:
        job = wait_done(service.submit(queries[0], min_identity=0.9))
        assert job.state == "done"
    assert list(ckpt.glob("batch_*")) == stores
