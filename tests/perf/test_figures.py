"""Tests for the Fig. 6 generator and its headline numbers."""

import pytest

from repro.perf.figures import PLATFORM_ORDER, figure6


@pytest.fixture(scope="module")
def fig6():
    return figure6()


class TestStructure:
    def test_all_cells_present(self, fig6):
        assert len(fig6.points) == 5 * 4
        for platform in PLATFORM_ORDER:
            assert len(fig6.series(platform)) == 5

    def test_baseline_normalized_to_one(self, fig6):
        assert fig6.series("TBLASTN-1") == pytest.approx([1.0] * 5)
        assert fig6.series("TBLASTN-1", "energy") == pytest.approx([1.0] * 5)

    def test_table_rendering(self, fig6):
        text = fig6.table("speedup")
        assert "FabP" in text
        assert len(text.splitlines()) == 6


class TestShapes:
    """Fig. 6's qualitative claims."""

    def test_multithread_speedup_constant(self, fig6):
        series = fig6.series("TBLASTN-12")
        assert all(abs(v - series[0]) < 1e-9 for v in series)

    def test_fabp_and_gpu_dominate_cpu(self, fig6):
        for platform in ("GPU", "FabP"):
            for value in fig6.series(platform):
                assert value > fig6.series("TBLASTN-12")[0]

    def test_execution_time_rises_with_length(self, fig6):
        """§IV-A: 'increasing the number of query elements increases the
        execution time' — for every platform."""
        for platform in PLATFORM_ORDER:
            seconds = fig6.series(platform, "seconds")
            assert seconds[-1] > seconds[0]

    def test_fabp_energy_efficiency_dominates(self, fig6):
        fabp = fig6.series("FabP", "energy")
        gpu = fig6.series("GPU", "energy")
        assert all(f > g for f, g in zip(fabp, gpu))


class TestHeadlines:
    """The abstract's four numbers, paper vs model (see EXPERIMENTS.md)."""

    def test_speedup_vs_gpu(self, fig6):
        # Paper: 8.1 % (1.081x) average speedup over the GTX 1080 Ti.
        value = fig6.headline()["speedup_vs_gpu"]
        assert 1.0 <= value <= 1.25

    def test_speedup_vs_cpu12(self, fig6):
        # Paper: 24.8x over 12-thread TBLASTN.
        value = fig6.headline()["speedup_vs_cpu12"]
        assert 18 <= value <= 32

    def test_energy_vs_gpu(self, fig6):
        # Paper: 23.2x more energy-efficient than the GPU.
        value = fig6.headline()["energy_vs_gpu"]
        assert 18 <= value <= 30

    def test_energy_vs_cpu12(self, fig6):
        # Paper: 266.8x more energy-efficient than 12-thread TBLASTN.
        value = fig6.headline()["energy_vs_cpu12"]
        assert 200 <= value <= 330

    def test_mean_ratio_identity(self, fig6):
        assert fig6.mean_ratio("FabP", "FabP") == pytest.approx(1.0)
