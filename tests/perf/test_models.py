"""Tests for the FPGA/CPU/GPU performance and energy models."""

import numpy as np
import pytest

from repro.accel.device import KINTEX7, LARGE_FPGA
from repro.accel.kernel import FabPKernel
from repro.perf import cpu as cpu_model
from repro.perf import fpga as fpga_model
from repro.perf import gpu as gpu_model
from repro.perf.energy import cpu_run, energy_efficiency_ratio, fabp_run, gpu_run
from repro.perf.platforms import GTX_1080TI, I7_8700K
from repro.perf.workload import Workload, fig6_workloads
from repro.seq.generate import random_protein, random_rna


class TestWorkload:
    def test_elements(self):
        assert Workload(50).query_elements == 150

    def test_reference_bytes(self):
        assert Workload(50, 4_000_000_000).reference_bytes == 1_000_000_000

    def test_comparisons(self):
        w = Workload(50, 10_000)
        assert w.comparisons == (10_000 - 150 + 1) * 150

    def test_fig6_sweep(self):
        lengths = [w.query_residues for w in fig6_workloads()]
        assert lengths == [50, 100, 150, 200, 250]


class TestFpgaModel:
    def test_closed_form_matches_streaming_kernel(self, rng):
        """The Fig. 6 arithmetic and the cycle-level kernel must agree."""
        query = random_protein(20, rng=rng)
        reference = random_rna(256 * 40, rng=rng)
        kernel = FabPKernel(query, min_identity=0.95)
        run = kernel.run(reference)
        workload = Workload(20, 256 * 40)
        estimate = fpga_model.estimate(workload, expected_hits=len(run.hits))
        assert estimate.beats == run.beats
        assert estimate.compute_cycles == run.compute_cycles
        assert estimate.stall_cycles == run.stall_cycles
        assert estimate.load_cycles == run.load_cycles
        assert estimate.total_cycles == pytest.approx(run.total_cycles, abs=2)

    def test_bandwidth_bound_time(self):
        # FabP-50 on 1 GB: limited by 12.2 GB/s -> ~82 ms.
        estimate = fpga_model.estimate(Workload(50))
        assert estimate.seconds == pytest.approx(1e9 / 12.2e9, rel=0.01)
        assert estimate.effective_bandwidth == pytest.approx(12.2e9, rel=0.01)

    def test_resource_bound_time_scales_with_segments(self):
        short = fpga_model.estimate(Workload(50))
        long_ = fpga_model.estimate(Workload(250))
        assert long_.seconds / short.seconds == pytest.approx(
            long_.plan.segments, rel=0.05
        )

    def test_multi_channel_device_faster(self):
        small = fpga_model.estimate(Workload(250), KINTEX7)
        large = fpga_model.estimate(Workload(250), LARGE_FPGA)
        assert large.seconds < small.seconds


class TestGpuModel:
    def test_compute_bound_everywhere(self):
        for workload in fig6_workloads():
            estimate = gpu_model.estimate(workload)
            assert estimate.bound == "compute"

    def test_time_scales_linearly_with_query(self):
        t50 = gpu_model.gpu_seconds(Workload(50))
        t250 = gpu_model.gpu_seconds(Workload(250))
        assert t250 / t50 == pytest.approx(5.0, rel=0.05)

    def test_memory_floor(self):
        # A trivial query makes the scan memory-bound.
        estimate = gpu_model.estimate(Workload(1))
        assert estimate.memory_seconds == pytest.approx(
            Workload(1).reference_bytes / GTX_1080TI.memory_bandwidth
        )


class TestCpuModel:
    def test_thread_scaling(self):
        w = Workload(100)
        t1 = cpu_model.cpu_seconds(w, threads=1)
        t12 = cpu_model.cpu_seconds(w, threads=12)
        assert t1 / t12 == pytest.approx(I7_8700K.thread_scaling)

    def test_time_grows_with_query_length(self):
        times = [cpu_model.cpu_seconds(w) for w in fig6_workloads()]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_unsupported_thread_count(self):
        with pytest.raises(ValueError):
            cpu_model.cpu_seconds(Workload(100), threads=4)

    def test_estimate_decomposition(self):
        estimate = cpu_model.estimate(Workload(100))
        assert estimate.scan_seconds > 0
        assert estimate.seed_seconds > 0
        assert estimate.seconds == pytest.approx(
            estimate.scan_seconds + estimate.seed_seconds
        )


class TestEnergy:
    def test_joules_composition(self):
        run = fabp_run(Workload(50))
        assert run.joules == pytest.approx(run.seconds * KINTEX7.power_watts)

    def test_platform_labels(self):
        assert cpu_run(Workload(50), threads=1).platform == "TBLASTN-1"
        assert cpu_run(Workload(50), threads=12).platform == "TBLASTN-12"
        assert gpu_run(Workload(50)).platform == "GPU"

    def test_fabp_most_efficient(self):
        w = Workload(150)
        fabp = fabp_run(w)
        for other in (gpu_run(w), cpu_run(w, threads=12), cpu_run(w, threads=1)):
            assert energy_efficiency_ratio(fabp, other) > 1

    def test_throughput_positive(self):
        assert fabp_run(Workload(50)).throughput > 0
