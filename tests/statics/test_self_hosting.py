"""The self-hosting gate: the checker passes over the repo's own tree.

This is the acceptance criterion of the statics engine — every RC/OB rule
holds over ``src/repro`` with zero unsuppressed findings, and every
suppression that *is* in the tree carries a written-down justification.
"""

from repro.statics import default_root, discover_modules, run_statics


class TestSelfHosting:
    def test_repro_tree_is_clean_strict(self):
        reports = run_statics()
        failures = [
            str(finding)
            for report in reports
            for finding in report.findings
        ]
        assert not failures, failures  # errors AND warnings: strict

    def test_the_whole_package_is_discovered(self):
        names = {module.name for module in discover_modules(default_root())}
        # Spot-check the load-bearing runtime modules are actually analyzed
        # (an empty or mis-rooted discovery would vacuously "pass").
        for expected in (
            "repro.host.scan",
            "repro.host.resilience",
            "repro.host.checkpoint",
            "repro.host.shards",
            "repro.obs.profile",
            "repro.statics.engine",
        ):
            assert expected in names
        assert len(names) > 50

    def test_every_pragma_in_tree_is_justified(self):
        for module in discover_modules(default_root()):
            for pragma in module.pragmas.values():
                assert pragma.justified, (
                    f"{module.name}:{pragma.line} has a reasonless pragma"
                )
