"""OB001-OB004: one triggering and one clean fixture per rule."""

import textwrap

from repro.statics import analyze_source


def findings_for(source, rule_id, name="host.demo"):
    report = analyze_source(
        textwrap.dedent(source), name=name, rules=[rule_id]
    )
    return [f for f in report.findings if f.rule_id == rule_id]


class TestOB001UnguardedHook:
    def test_hook_without_guard_is_flagged(self):
        bad = """\
            def record_widget(count):
                REGISTRY.counter("fabp_widgets_total", "Widgets.").default.inc(count)
            """
        assert findings_for(bad, "OB001", name="obs.profile")

    def test_guarded_hook_is_clean(self):
        good = """\
            def record_widget(count):
                if not state.enabled():
                    return
                REGISTRY.counter("fabp_widgets_total", "Widgets.").default.inc(count)
            """
        assert not findings_for(good, "OB001", name="obs.profile")

    def test_guard_after_docstring_is_clean(self):
        good = '''\
            def record_widget(count):
                """One widget."""
                if not state.enabled():
                    return
                REGISTRY.counter("fabp_widgets_total", "Widgets.").default.inc(count)
            '''
        assert not findings_for(good, "OB001", name="obs.profile")

    def test_rule_is_scoped_to_the_hook_module(self):
        elsewhere = """\
            def record_widget(count):
                do_something(count)
            """
        assert not findings_for(elsewhere, "OB001", name="host.scan")


class TestOB002UndeclaredHookName:
    def test_invented_metric_name_is_flagged(self):
        bad = """\
            def record_widget(count):
                if not state.enabled():
                    return
                REGISTRY.counter("fabp_widgets_total", "Widgets.").default.inc(count)
            """
        assert findings_for(bad, "OB002", name="obs.profile")

    def test_declared_metric_name_is_clean(self):
        good = """\
            def record_hits(hits):
                if not state.enabled():
                    return
                REGISTRY.counter("fabp_scan_hits_total", "Hits.").default.inc(hits)
            """
        assert not findings_for(good, "OB002", name="obs.profile")

    def test_non_literal_metric_name_is_flagged(self):
        bad = """\
            def record_widget(kind):
                if not state.enabled():
                    return
                REGISTRY.counter(kind, "Dynamic.").default.inc()
            """
        assert findings_for(bad, "OB002", name="obs.profile")

    def test_undeclared_stage_name_is_flagged_anywhere(self):
        bad = """\
            def run():
                with _obs_profile.stage("scan.mystery", category="scan"):
                    work()
            """
        assert findings_for(bad, "OB002", name="host.scan")

    def test_declared_stage_name_is_clean(self):
        good = """\
            def run():
                with _obs_profile.stage("scan.pack", category="scan"):
                    work()
            """
        assert not findings_for(good, "OB002", name="host.scan")


class TestOB003DynamicLabel:
    def test_fstring_label_is_flagged(self):
        bad = """\
            def record(outcome):
                counter.labels(outcome=f"scan-{outcome}").inc()
            """
        assert findings_for(bad, "OB003")

    def test_concatenated_label_is_flagged(self):
        bad = """\
            def record(outcome):
                counter.labels(outcome="scan-" + outcome).inc()
            """
        assert findings_for(bad, "OB003")

    def test_plain_and_str_cast_labels_are_clean(self):
        good = """\
            def record(outcome, workers):
                counter.labels(outcome=outcome, workers=str(workers)).inc()
            """
        assert not findings_for(good, "OB003")


class TestOB004DirectRegistryAccess:
    def test_registry_import_outside_obs_is_flagged(self):
        bad = """\
            from repro.obs.metrics import REGISTRY

            def run():
                REGISTRY.counter("fabp_scan_hits_total", "Hits.").default.inc()
            """
        assert findings_for(bad, "OB004", name="host.scan")

    def test_recorder_attribute_outside_obs_is_flagged(self):
        bad = """\
            from repro.obs import trace

            def run(span):
                trace.RECORDER.record(**span)
            """
        assert findings_for(bad, "OB004", name="host.scan")

    def test_hook_call_outside_obs_is_clean(self):
        good = """\
            from repro.obs import profile as _obs_profile

            def run(references, hits):
                _obs_profile.record_scan_merge(references, hits)
            """
        assert not findings_for(good, "OB004", name="host.scan")

    def test_obs_modules_are_exempt(self):
        inside = """\
            from repro.obs.metrics import REGISTRY

            def reset():
                REGISTRY.reset()
            """
        assert not findings_for(inside, "OB004", name="obs.summary")
