"""shmsan: the runtime shared-memory sanitizer.

Every intentional violation here is wrapped in its own ``shmsan.scope()``,
so it is attributed to the test's scope and never pollutes the session-wide
scope the autouse conftest fixture owns.
"""

from multiprocessing import shared_memory

import pytest

from repro.statics import shmsan


@pytest.fixture
def sanitizer():
    """shmsan installed for the test; honours an already-armed session."""
    installed_here = not shmsan.is_installed()
    if installed_here:
        shmsan.install()
    yield shmsan
    if installed_here:
        report = shmsan.uninstall()
        assert report.clean, shmsan.format_violations(report.violations)


def kinds(scope):
    return [violation.kind for violation in scope.violations]


class TestCleanLifecycle:
    def test_create_close_unlink_is_clean(self, sanitizer):
        with sanitizer.scope() as scope:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.buf[0] = 7
            segment.close()
            segment.unlink()
        assert scope.clean

    def test_attach_close_is_clean(self, sanitizer):
        with sanitizer.scope() as scope:
            owner = shared_memory.SharedMemory(create=True, size=16)
            peer = shared_memory.SharedMemory(name=owner.name)
            peer.close()
            owner.close()
            owner.unlink()
        assert scope.clean


class TestViolations:
    def test_double_close(self, sanitizer):
        with sanitizer.scope() as scope:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
            segment.close()
            segment.unlink()
        assert kinds(scope) == ["double-close"]

    def test_double_unlink(self, sanitizer):
        with sanitizer.scope() as scope:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
            segment.unlink()
            with pytest.raises(FileNotFoundError):
                segment.unlink()
        assert kinds(scope) == ["double-unlink"]

    def test_use_after_close(self, sanitizer):
        with sanitizer.scope() as scope:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
            _ = segment.buf
            segment.unlink()
        assert kinds(scope) == ["use-after-close"]

    def test_leaked_segment(self, sanitizer):
        with sanitizer.scope() as scope:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
        assert kinds(scope) == ["leaked-segment"]
        segment.unlink()  # actually clean /dev/shm up

    def test_leaked_handle(self, sanitizer):
        with sanitizer.scope() as scope:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.unlink()
        assert kinds(scope) == ["leaked-handle"]
        segment.close()

    def test_violations_carry_name_and_stack(self, sanitizer):
        with sanitizer.scope() as scope:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
            segment.close()
            segment.unlink()
        violation = scope.violations[0]
        assert violation.name == segment.name
        assert "test_shmsan" in violation.stack


class TestScoping:
    def test_inner_scope_shields_the_outer(self, sanitizer):
        with sanitizer.scope() as outer:
            with sanitizer.scope() as inner:
                segment = shared_memory.SharedMemory(create=True, size=16)
                segment.close()
                segment.close()
                segment.unlink()
            assert kinds(inner) == ["double-close"]
        assert outer.clean

    def test_format_violations_is_readable(self, sanitizer):
        with sanitizer.scope() as scope:
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
        segment.unlink()
        text = shmsan.format_violations(scope.violations)
        assert "leaked-segment" in text
        assert segment.name in text


class TestEventLog:
    def test_lifecycle_events_are_logged(self, sanitizer, tmp_path, monkeypatch):
        log = tmp_path / "shmsan.jsonl"
        monkeypatch.setenv("FABP_SHMSAN_LOG", str(log))
        with sanitizer.scope():
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
            segment.unlink()
        events = shmsan.read_event_log(str(log))
        assert [e["event"] for e in events] == ["create", "close", "unlink"]
        assert all(e["name"] == segment.name for e in events)
        assert all(isinstance(e["pid"], int) for e in events)


class TestInstallContract:
    def test_double_install_raises(self, sanitizer):
        with pytest.raises(RuntimeError):
            shmsan.install()

    def test_uninstall_restores_the_class(self):
        if shmsan.is_installed():
            pytest.skip("session-armed sanitizer owns the patch")
        shmsan.install()
        assert shmsan.is_installed()
        shmsan.uninstall()
        assert not shmsan.is_installed()
        segment = shared_memory.SharedMemory(create=True, size=16)
        assert not hasattr(segment, "_shmsan")
        segment.close()
        segment.unlink()
