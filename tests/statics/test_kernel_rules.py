"""KC001-KC008: one triggering and one clean fixture per rule."""

import textwrap

from repro.statics import analyze_source, prove_kernels


def findings_for(source, rule_id, name="core.demo"):
    report = analyze_source(
        textwrap.dedent(source), name=name, rules=[rule_id]
    )
    return [f for f in report.findings if f.rule_id == rule_id]


class TestKC001DispatchTableComplete:
    def test_undispatched_engine_is_flagged(self):
        bad = """\
            ENGINES = ("alpha", "beta")

            def scores(instructions, ref_codes, engine="alpha"):
                if engine == "alpha":
                    return _alpha(instructions, ref_codes)
                raise ValueError(engine)
            """
        findings = findings_for(bad, "KC001")
        assert findings and "beta" in findings[0].message

    def test_undeclared_dispatch_arm_is_flagged(self):
        bad = """\
            ENGINES = ("alpha",)

            def scores(instructions, ref_codes, engine="alpha"):
                if engine == "alpha":
                    return _alpha(instructions, ref_codes)
                if engine == "gamma":
                    return _gamma(instructions, ref_codes)
                raise ValueError(engine)
            """
        findings = findings_for(bad, "KC001")
        assert findings and "gamma" in findings[0].message

    def test_complete_dispatch_is_clean(self):
        good = """\
            ENGINES = ("alpha", "beta")

            def scores(instructions, ref_codes, engine="alpha"):
                if engine == "alpha":
                    return _alpha(instructions, ref_codes)
                if engine == "beta":
                    return _beta(instructions, ref_codes)
                raise ValueError(engine)
            """
        assert not findings_for(good, "KC001")

    def test_module_without_dispatcher_is_silent(self):
        quiet = """\
            ENGINES = ("alpha", "beta")

            def helper(x):
                return x
            """
        assert not findings_for(quiet, "KC001")


class TestKC002EngineContractMissing:
    def test_uncontracted_engine_is_flagged(self):
        bad = """\
            ENGINES = ("ghost",)

            def scores(instructions, ref_codes, engine="ghost"):
                if engine == "ghost":
                    return None
            """
        findings = findings_for(bad, "KC002")
        assert findings and "ghost" in findings[0].message

    def test_registered_engines_are_clean(self):
        # "bitscore"/"packed" carry runtime @engine_contract declarations.
        good = """\
            ENGINES = ("bitscore", "packed")

            def scores(instructions, ref_codes, engine="bitscore"):
                if engine == "bitscore":
                    return None
                if engine == "packed":
                    return None
            """
        assert not findings_for(good, "KC002")


class TestKC003EngineSignatureDrift:
    def test_renamed_positional_args_are_flagged(self):
        bad = """\
            from repro.core.contracts import engine_contract

            @engine_contract("kc003-swapped")
            def swapped(ref_codes, instructions):
                return ref_codes
            """
        findings = findings_for(bad, "KC003")
        assert findings and "expected (instructions, ref_codes)" in findings[0].message

    def test_keyword_only_without_default_is_flagged(self):
        bad = """\
            from repro.core.contracts import engine_contract

            @engine_contract("kc003-kwonly")
            def kwonly(instructions, ref_codes, *, block):
                return ref_codes
            """
        findings = findings_for(bad, "KC003")
        assert findings and "has no default" in findings[0].message

    def test_varargs_are_flagged(self):
        bad = """\
            from repro.core.contracts import engine_contract

            @engine_contract("kc003-varargs")
            def grabby(instructions, ref_codes, *extras):
                return ref_codes
            """
        assert findings_for(bad, "KC003")

    def test_canonical_signature_is_clean(self):
        good = """\
            from repro.core.contracts import engine_contract

            @engine_contract("kc003-good")
            def canonical(instructions, ref_codes, *, block=8):
                return ref_codes
            """
        assert not findings_for(good, "KC003")


class TestKC004AccumulatorOverflow:
    def test_narrow_accumulator_overflows(self):
        bad = """\
            import numpy as np

            from repro.core.contracts import engine_contract

            @engine_contract("kc004-narrow", accumulator="int8")
            def narrow(instructions, ref_codes):
                scores = np.zeros(ref_codes.size, dtype=np.int8)
                for i in range(instructions.size):
                    scores += 1
                return scores
            """
        findings = findings_for(bad, "KC004")
        assert findings and "escapes int8" in findings[0].message

    def test_wide_accumulator_is_clean(self):
        good = """\
            import numpy as np

            from repro.core.contracts import engine_contract

            @engine_contract("kc004-wide", accumulator="int32")
            def wide(instructions, ref_codes):
                scores = np.zeros(ref_codes.size, dtype=np.int32)
                for i in range(instructions.size):
                    scores += 1
                return scores
            """
        assert not findings_for(good, "KC004")


class TestKC005DtypeEnvelopeViolation:
    def test_uint64_int64_promotion_is_flagged(self):
        bad = """\
            import numpy as np

            from repro.core.contracts import engine_contract

            @engine_contract("kc005-promote", accumulator="int64")
            def promote(instructions, ref_codes):
                lanes = np.zeros(4, dtype=np.uint64)
                signed = np.zeros(4, dtype=np.int64)
                mixed = lanes + signed
                return np.zeros(ref_codes.size, dtype=np.int64)
            """
        findings = findings_for(bad, "KC005")
        assert findings and "float64" in findings[0].message

    def test_drifting_return_dtype_is_flagged(self):
        bad = """\
            import numpy as np

            from repro.core.contracts import engine_contract

            @engine_contract("kc005-drift", accumulator="int32")
            def drift(instructions, ref_codes):
                return np.zeros(ref_codes.size, dtype=np.float32)
            """
        findings = findings_for(bad, "KC005")
        assert findings and "declares accumulator int32" in findings[0].message

    def test_declared_dtype_throughout_is_clean(self):
        good = """\
            import numpy as np

            from repro.core.contracts import engine_contract

            @engine_contract("kc005-good", accumulator="int32")
            def good(instructions, ref_codes):
                return np.zeros(ref_codes.size, dtype=np.int32)
            """
        assert not findings_for(good, "KC005")


class TestKC006HiddenGlobalState:
    def test_module_mutable_read_is_flagged(self):
        bad = """\
            from repro.core.contracts import engine_contract

            _CACHE = {}

            @engine_contract("kc006-cache")
            def cached(instructions, ref_codes):
                if "k" in _CACHE:
                    return _CACHE["k"]
                return ref_codes
            """
        findings = findings_for(bad, "KC006")
        assert findings and "_CACHE" in findings[0].message

    def test_global_statement_is_flagged(self):
        bad = """\
            from repro.core.contracts import engine_contract

            @engine_contract("kc006-global")
            def stateful(instructions, ref_codes):
                global _TOTAL
                _TOTAL = 1
                return ref_codes
            """
        findings = findings_for(bad, "KC006")
        assert findings and "global" in findings[0].message

    def test_immutable_module_constant_is_clean(self):
        good = """\
            from repro.core.contracts import engine_contract

            _TABLE = (1, 2, 3)

            @engine_contract("kc006-good")
            def tabled(instructions, ref_codes):
                return _TABLE[0]
            """
        assert not findings_for(good, "KC006")


class TestKC007NondeterministicOp:
    def test_random_call_is_flagged(self):
        bad = """\
            import numpy as np

            from repro.core.contracts import engine_contract

            @engine_contract("kc007-noisy")
            def noisy(instructions, ref_codes):
                return np.random.rand(ref_codes.size)
            """
        findings = findings_for(bad, "KC007")
        assert findings and "rand" in findings[0].message

    def test_declared_nondeterministic_is_clean(self):
        good = """\
            import numpy as np

            from repro.core.contracts import engine_contract

            @engine_contract("kc007-jitter", deterministic=False)
            def jitter(instructions, ref_codes):
                return np.random.rand(ref_codes.size)
            """
        assert not findings_for(good, "KC007")

    def test_pure_arithmetic_is_clean(self):
        good = """\
            from repro.core.contracts import engine_contract

            @engine_contract("kc007-pure")
            def pure(instructions, ref_codes):
                return ref_codes + 1
            """
        assert not findings_for(good, "KC007")


class TestKC008LaneBudgetUnproven:
    def test_missing_decode_summary_is_flagged(self):
        bad = """\
            class NakedCounter:
                def add(self, bits):
                    pass

                def decode(self):
                    pass
            """
        findings = findings_for(bad, "KC008")
        assert findings and "lacks a" in findings[0].message

    def test_undersized_decode_dtype_is_flagged(self):
        # popcount(200) provably needs 8 bits; int8 holds only 7 value bits.
        bad = """\
            from repro.core.contracts import kernel_summary

            class TightCounter:
                def add(self, bits):
                    pass

                @kernel_summary(("int8", 0, 200))
                def decode(self):
                    pass
            """
        findings = findings_for(bad, "KC008")
        assert findings and "widen the decode dtype" in findings[0].suggested_fix

    def test_unprovable_bound_is_flagged(self):
        bad = """\
            from repro.core.contracts import kernel_summary

            class HugeCounter:
                def add(self, bits):
                    pass

                @kernel_summary(("int32", 0, 100000))
                def decode(self):
                    pass
            """
        findings = findings_for(bad, "KC008")
        assert findings and "provable range" in findings[0].message

    def test_proven_budget_is_clean(self):
        good = """\
            from repro.core.contracts import kernel_summary

            class GoodCounter:
                def add(self, bits):
                    pass

                @kernel_summary(("int32", 0, 36))
                def decode(self):
                    pass
            """
        assert not findings_for(good, "KC008")

    def test_class_without_counter_shape_is_silent(self):
        quiet = """\
            class Unrelated:
                def decode(self):
                    pass
            """
        assert not findings_for(quiet, "KC008")


class TestProveKernels:
    def test_positive_artifact_proves_every_engine(self):
        payload = prove_kernels()
        assert payload["schema"] == "fabp-kernel-proof/v1"
        assert payload["ok"] is True
        assert payload["max_query_elements"] == 750
        budget = payload["lane_budget"]
        assert budget["fits"] and budget["exact"] and budget["needed_bits"] == 10
        for name in ("bitscore", "packed", "diagonal", "vectorized", "naive"):
            assert name in payload["engines"]
            report = payload["dtype_flow"][name]
            assert report["analyzed"] and report["clean"], report

    def test_self_test_refutes_seeded_mutations(self):
        payload = prove_kernels(self_test=True)
        verdict = payload["self_test"]
        assert verdict["ok"] is True
        assert verdict["lane_budget_refutation"]["refuted"]
        assert verdict["injected_overflow"]["refuted"]
        assert any(
            f["rule"] == "KC004"
            for f in verdict["injected_overflow"]["findings"]
        )
