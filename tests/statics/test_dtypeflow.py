"""Unit tests for the dtype/interval abstract interpreter."""

import ast
import textwrap

from repro.statics import AbstractValue, abstract_eval
from repro.statics.dtypeflow import analyze_engine_function, promote

DEFAULT_INPUTS = {
    "instructions": ("uint8", 0, 63),
    "ref_codes": ("uint8", 0, 3),
}


def function_node(source):
    tree = ast.parse(textwrap.dedent(source))
    return next(n for n in tree.body if isinstance(n, ast.FunctionDef))


def analyze(source, *, accumulator="int32", max_elements=750):
    return analyze_engine_function(
        function_node(source),
        inputs=DEFAULT_INPUTS,
        accumulator=accumulator,
        max_elements=max_elements,
    )


class TestPromotion:
    def test_weak_scalar_adapts_to_array_dtype(self):
        value = abstract_eval("a + 1", {"a": AbstractValue("uint8", 0, 10)})
        assert value.dtype == "uint8"
        assert (value.lo, value.hi) == (1, 11)

    def test_strong_uint64_int64_promotes_to_float64(self):
        value = abstract_eval(
            "a + b",
            {
                "a": AbstractValue("uint64", 0, 5),
                "b": AbstractValue("int64", 0, 5),
            },
        )
        assert value.dtype == "float64"

    def test_weak_float_forces_float64_against_int_array(self):
        value = abstract_eval("a * 0.5", {"a": AbstractValue("int32", 0, 4)})
        assert value.dtype == "float64"

    def test_two_weak_scalars_use_default_dtype(self):
        value = abstract_eval("1 + 2")
        assert value.dtype == "int64"
        assert (value.lo, value.hi) == (3, 3)
        assert value.weak

    def test_promote_is_none_when_either_side_unknown(self):
        assert promote(AbstractValue(None), AbstractValue("int32", 0, 1)) is None


class TestIntervals:
    def test_subtraction_spans_both_corners(self):
        value = abstract_eval(
            "a - b",
            {
                "a": AbstractValue("int32", 0, 10),
                "b": AbstractValue("int32", 2, 5),
            },
        )
        assert (value.lo, value.hi) == (-5, 8)

    def test_unsigned_shift_is_modular_not_flagged(self):
        # Shifting near the top of uint64 clips to the dtype max (numpy
        # semantics) instead of raising an overflow event.
        value = abstract_eval("a << 8", {"a": AbstractValue("uint64", 0, 2**60)})
        assert value.dtype == "uint64"
        assert value.hi == 2**64 - 1

    def test_astype_narrowing_clamps_to_target(self):
        value = abstract_eval("a.astype(np.int8)", {"a": AbstractValue("int32", 0, 300)})
        assert value.dtype == "int8"
        assert value.hi == 127

    def test_unbound_name_is_unknown(self):
        value = abstract_eval("mystery")
        assert value.dtype is None
        assert not value.known


class TestEngineAnalysis:
    def test_loop_accumulation_widens_by_max_elements(self):
        analysis = analyze(
            """\
            def acc(instructions, ref_codes):
                scores = np.zeros(ref_codes.size, dtype=np.int32)
                for i in range(instructions.size):
                    scores += 1
                return scores
            """
        )
        assert not analysis.events
        (value, _line), = analysis.returns
        assert value.dtype == "int32"
        assert (value.lo, value.hi) == (0, 750)

    def test_narrow_accumulator_reports_overflow(self):
        analysis = analyze(
            """\
            def acc(instructions, ref_codes):
                scores = np.zeros(ref_codes.size, dtype=np.int8)
                for i in range(instructions.size):
                    scores += 1
                return scores
            """,
            accumulator="int8",
        )
        kinds = {event.kind for event in analysis.events}
        assert kinds & {"overflow", "narrowing"}

    def test_widening_scales_with_max_elements(self):
        analysis = analyze(
            """\
            def acc(instructions, ref_codes):
                scores = np.zeros(ref_codes.size, dtype=np.int8)
                for i in range(instructions.size):
                    scores += 1
                return scores
            """,
            accumulator="int8",
            max_elements=100,
        )
        # 100 accumulated ones fit int8: tightening the contract's
        # max_elements is a legitimate fix for an overflow finding.
        assert not analysis.events

    def test_return_dtype_drift_is_reported(self):
        analysis = analyze(
            """\
            def drift(instructions, ref_codes):
                return np.zeros(ref_codes.size, dtype=np.float32)
            """
        )
        assert any(event.kind == "return-dtype" for event in analysis.events)

    def test_branch_join_takes_interval_hull(self):
        analysis = analyze(
            """\
            def branchy(instructions, ref_codes):
                scores = np.zeros(ref_codes.size, dtype=np.int32)
                if instructions.size:
                    scores = scores + 7
                return scores
            """
        )
        assert not analysis.events
        (value, _line), = analysis.returns
        assert value.dtype == "int32"
        assert (value.lo, value.hi) == (0, 7)
