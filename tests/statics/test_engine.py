"""Engine mechanics: discovery, pragma suppression, ignore, catalogue."""

import textwrap

from repro.lint import expand_rule_patterns, rule_pattern_matches
from repro.statics import (
    CONCURRENCY_RULES,
    OBSERVABILITY_RULES,
    analyze_source,
    discover_modules,
    module_from_source,
    parse_pragmas,
    rule_catalogue,
    run_statics,
)

# A minimal RC006 positive: host module, broad except, pass-only body.
SWALLOW = textwrap.dedent(
    """\
    def f():
        try:
            g()
        except Exception:
            pass
    """
)


def rule_ids(report):
    return [finding.rule_id for finding in report.findings]


class TestPragmas:
    def test_parse_single_and_multi_rule(self):
        pragmas = parse_pragmas(
            "x = 1  # statics: ignore[RC001] owned by caller\n"
            "# statics: ignore[RC005, RC006]\n"
        )
        assert pragmas[1].rule_ids == ("RC001",)
        assert pragmas[1].justified
        assert pragmas[2].rule_ids == ("RC005", "RC006")
        assert not pragmas[2].justified

    def test_justified_pragma_suppresses(self):
        source = SWALLOW.replace(
            "    except Exception:",
            "    except Exception:"
            "  # statics: ignore[RC006] exercised by the fault suite",
        )
        report = analyze_source(source, name="host.demo", rules=["RC006"])
        assert report.clean

    def test_pragma_on_line_above_suppresses(self):
        source = SWALLOW.replace(
            "    except Exception:",
            "        # statics: ignore[RC006] exercised by the fault suite\n"
            "    except Exception:",
        )
        report = analyze_source(source, name="host.demo", rules=["RC006"])
        assert report.clean

    def test_unjustified_pragma_does_not_suppress(self):
        source = SWALLOW.replace(
            "    except Exception:",
            "    except Exception:  # statics: ignore[RC006]",
        )
        report = analyze_source(source, name="host.demo", rules=["RC006"])
        assert rule_ids(report) == ["RC006"]
        assert "lacks a justification" in report.findings[0].message

    def test_pragma_for_other_rule_does_not_suppress(self):
        source = SWALLOW.replace(
            "    except Exception:",
            "    except Exception:  # statics: ignore[RC001] wrong rule",
        )
        report = analyze_source(source, name="host.demo", rules=["RC006"])
        assert rule_ids(report) == ["RC006"]


class TestEngine:
    def test_ignore_drops_the_rule(self):
        report = analyze_source(SWALLOW, name="host.demo", ignore=["RC006"])
        assert "RC006" not in rule_ids(report)

    def test_rules_selection_runs_only_those(self):
        report = analyze_source(SWALLOW, name="host.demo", rules=["RC001"])
        assert report.clean

    def test_report_subject_is_module_name(self):
        report = analyze_source("x = 1\n", name="host.demo")
        assert report.subject == "host.demo"

    def test_catalogue_covers_both_families(self):
        ids = {entry["rule"] for entry in rule_catalogue()}
        assert set(CONCURRENCY_RULES) <= ids
        assert set(OBSERVABILITY_RULES) <= ids
        assert len(CONCURRENCY_RULES) == 8
        assert len(OBSERVABILITY_RULES) == 4


class TestDiscovery:
    def test_discovers_and_names_modules(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "sub").mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "a.py").write_text("x = 1\n")
        (package / "sub" / "b.py").write_text("y = 2\n")
        names = {module.name for module in discover_modules(package)}
        assert names == {"pkg", "pkg.a", "pkg.sub.b"}

    def test_skips_pycache_and_broken_files(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "__pycache__").mkdir(parents=True)
        (package / "__pycache__" / "junk.py").write_text("x = 1\n")
        (package / "broken.py").write_text("def :::\n")
        (package / "good.py").write_text("x = 1\n")
        names = {module.name for module in discover_modules(package)}
        assert names == {"pkg.good"}

    def test_run_statics_over_directory(self, tmp_path):
        package = tmp_path / "host"
        package.mkdir()
        (package / "bad.py").write_text(SWALLOW)
        reports = run_statics(package)
        assert any("RC006" in rule_ids(report) for report in reports)

    def test_module_from_source_carries_pragmas(self):
        module = module_from_source("x = 1  # statics: ignore[RC001] why\n")
        assert module.pragma_for(1, "RC001") is not None
        assert module.pragma_for(1, "RC002") is None


class TestRulePatterns:
    """One selector grammar for CLI ignores and line pragmas."""

    def test_exact_match(self):
        assert rule_pattern_matches("RC006", "RC006")
        assert not rule_pattern_matches("RC006", "RC005")

    def test_glob_selects_the_family(self):
        assert rule_pattern_matches("RC00*", "RC006")
        assert not rule_pattern_matches("RC00*", "OB001")

    def test_range_is_inclusive(self):
        assert rule_pattern_matches("RC001-RC004", "RC001")
        assert rule_pattern_matches("RC001-RC004", "RC004")
        assert not rule_pattern_matches("RC001-RC004", "RC005")

    def test_mismatched_family_range_selects_nothing(self):
        assert not rule_pattern_matches("RC001-OB004", "RC002")

    def test_expand_reports_concrete_ids(self):
        known = ("RC001", "RC002", "RC006", "OB001")
        assert expand_rule_patterns(["RC001-RC004"], known) == ("RC001", "RC002")
        assert expand_rule_patterns(["OB*"], known) == ("OB001",)

    def test_cli_ignore_accepts_range(self):
        report = analyze_source(SWALLOW, name="host.demo", ignore=["RC004-RC008"])
        assert "RC006" not in rule_ids(report)

    def test_cli_ignore_accepts_glob(self):
        report = analyze_source(SWALLOW, name="host.demo", ignore=["RC00*"])
        assert "RC006" not in rule_ids(report)

    def test_range_pragma_suppresses(self):
        source = SWALLOW.replace(
            "    except Exception:",
            "    except Exception:"
            "  # statics: ignore[RC005-RC007] exercised by the fault suite",
        )
        report = analyze_source(source, name="host.demo", rules=["RC006"])
        assert report.clean

    def test_glob_pragma_suppresses(self):
        source = SWALLOW.replace(
            "    except Exception:",
            "    except Exception:"
            "  # statics: ignore[RC00*] exercised by the fault suite",
        )
        report = analyze_source(source, name="host.demo", rules=["RC006"])
        assert report.clean

    def test_out_of_range_pragma_does_not_suppress(self):
        source = SWALLOW.replace(
            "    except Exception:",
            "    except Exception:"
            "  # statics: ignore[RC001-RC005] wrong span",
        )
        report = analyze_source(source, name="host.demo", rules=["RC006"])
        assert rule_ids(report) == ["RC006"]
