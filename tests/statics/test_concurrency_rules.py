"""RC001-RC008: one triggering and one clean fixture per rule."""

import textwrap

from repro.statics import analyze_source


def findings_for(source, rule_id, name="host.demo"):
    report = analyze_source(
        textwrap.dedent(source), name=name, rules=[rule_id]
    )
    return [f for f in report.findings if f.rule_id == rule_id]


class TestRC001ShmCreateUnmanaged:
    def test_unmanaged_create_is_flagged(self):
        bad = """\
            from multiprocessing import shared_memory

            def make():
                segment = shared_memory.SharedMemory(create=True, size=16)
                return segment
            """
        assert findings_for(bad, "RC001")

    def test_finally_release_is_clean(self):
        good = """\
            from multiprocessing import shared_memory

            def make():
                segment = shared_memory.SharedMemory(create=True, size=16)
                try:
                    use(segment)
                finally:
                    retire_segment(segment)
            """
        assert not findings_for(good, "RC001")

    def test_atexit_swept_registry_is_clean(self):
        good = """\
            import atexit
            from multiprocessing import shared_memory

            _LIVE = {}

            def _sweep():
                pass

            atexit.register(_sweep)

            def make():
                segment = shared_memory.SharedMemory(create=True, size=16)
                _LIVE[segment.name] = segment
                return segment
            """
        assert not findings_for(good, "RC001")

    def test_module_level_create_is_flagged(self):
        bad = """\
            from multiprocessing import shared_memory

            SEGMENT = shared_memory.SharedMemory(create=True, size=16)
            """
        assert findings_for(bad, "RC001")


class TestRC002ViewOutlivesClose:
    def test_close_with_live_view_is_flagged(self):
        bad = """\
            import numpy as np

            def worker(segment):
                buffer = np.frombuffer(segment.buf, dtype=np.uint8)
                work(buffer)
                segment.close()
            """
        assert findings_for(bad, "RC002")

    def test_view_dropped_before_close_is_clean(self):
        good = """\
            import numpy as np

            def worker(segment):
                buffer = np.frombuffer(segment.buf, dtype=np.uint8)
                work(buffer)
                buffer = None
                segment.close()
            """
        assert not findings_for(good, "RC002")

    def test_del_before_close_is_clean(self):
        good = """\
            import numpy as np

            def worker(segment):
                buffer = np.frombuffer(segment.buf, dtype=np.uint8)
                del buffer
                segment.close()
            """
        assert not findings_for(good, "RC002")


class TestRC003ForkDiscipline:
    def test_bare_os_fork_is_flagged(self):
        bad = """\
            import os

            def spawn():
                if os.fork() == 0:
                    work()
            """
        assert findings_for(bad, "RC003")

    def test_set_start_method_is_flagged(self):
        bad = """\
            import multiprocessing

            def configure():
                multiprocessing.set_start_method("fork")
            """
        assert findings_for(bad, "RC003")

    def test_unguarded_fork_context_is_flagged(self):
        bad = """\
            import multiprocessing

            def pool():
                context = multiprocessing.get_context("fork")
                return context
            """
        assert findings_for(bad, "RC003")

    def test_guarded_fork_context_is_clean(self):
        good = """\
            import multiprocessing

            def pool():
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:
                    context = multiprocessing.get_context()
                return context
            """
        assert not findings_for(good, "RC003")


class TestRC004AtomicCheckpointWrites:
    def test_plain_write_in_checkpoint_module_is_flagged(self):
        bad = """\
            import json

            def save(path, payload):
                with open(path, "w") as handle:
                    json.dump(payload, handle)
            """
        assert findings_for(bad, "RC004", name="host.checkpoint")

    def test_temp_then_replace_is_clean(self):
        good = """\
            import json
            import os

            def save(path, payload):
                tmp = str(path) + ".tmp"
                with open(tmp, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, path)
            """
        assert not findings_for(good, "RC004", name="host.checkpoint")

    def test_rule_is_scoped_to_checkpoint_modules(self):
        elsewhere = """\
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """
        assert not findings_for(elsewhere, "RC004", name="host.report")


class TestRC005BlockingInProtocol:
    def test_sleep_in_protocol_function_is_flagged(self):
        bad = """\
            import time

            def worker_loop(conn):
                message = conn.recv()
                time.sleep(5.0)
                conn.send(("ok",))
            """
        assert findings_for(bad, "RC005")

    def test_unbounded_wait_is_flagged(self):
        bad = """\
            from multiprocessing import connection

            def supervise(conns):
                ready = connection.wait(conns)
                for conn in ready:
                    conn.recv()
            """
        assert findings_for(bad, "RC005")

    def test_unbounded_join_is_flagged(self):
        bad = """\
            def stop(worker):
                worker.conn.send(("stop",))
                worker.process.join()
            """
        assert findings_for(bad, "RC005")

    def test_timeouts_everywhere_is_clean(self):
        good = """\
            from multiprocessing import connection

            def supervise(conns, worker):
                ready = connection.wait(conns, timeout=0.5)
                for conn in ready:
                    conn.recv()
                worker.join(1.0)
            """
        assert not findings_for(good, "RC005")

    def test_sleep_outside_protocol_code_is_clean(self):
        good = """\
            import time

            def backoff(delay):
                time.sleep(delay)
            """
        assert not findings_for(good, "RC005")


class TestRC006SwallowedExceptions:
    def test_broad_except_pass_is_flagged(self):
        bad = """\
            def run():
                try:
                    work()
                except Exception:
                    pass
            """
        assert findings_for(bad, "RC006")

    def test_bare_except_pass_is_flagged(self):
        bad = """\
            def run():
                try:
                    work()
                except:
                    pass
            """
        assert findings_for(bad, "RC006")

    def test_narrow_except_pass_is_clean(self):
        good = """\
            def run():
                try:
                    work()
                except (OSError, BufferError):
                    pass
            """
        assert not findings_for(good, "RC006")

    def test_broad_except_with_handling_is_clean(self):
        good = """\
            def run(report):
                try:
                    work()
                except Exception as error:
                    report.record(error)
            """
        assert not findings_for(good, "RC006")

    def test_rule_is_scoped_to_host_modules(self):
        elsewhere = """\
            def run():
                try:
                    work()
                except Exception:
                    pass
            """
        assert not findings_for(elsewhere, "RC006", name="rtl.netlist")


class TestRC007AttachUnreleased:
    def test_dangling_attach_is_flagged(self):
        bad = """\
            from multiprocessing import shared_memory

            def peek(name):
                segment = shared_memory.SharedMemory(name=name)
                return bytes(segment.buf[:4])
            """
        assert findings_for(bad, "RC007")

    def test_attach_with_close_is_clean(self):
        good = """\
            from multiprocessing import shared_memory

            def peek(name):
                segment = shared_memory.SharedMemory(name=name)
                try:
                    return bytes(segment.buf[:4])
                finally:
                    segment.close()
            """
        assert not findings_for(good, "RC007")

    def test_attach_parked_in_registry_is_clean(self):
        good = """\
            from multiprocessing import shared_memory

            _WORKER = {}

            def init(name):
                segment = shared_memory.SharedMemory(name=name)
                _WORKER["segment"] = segment
            """
        assert not findings_for(good, "RC007")


class TestRC008PoolOutsideContext:
    def test_bare_pool_import_and_call_are_flagged(self):
        bad = """\
            from multiprocessing import Pool

            def scan(bounds):
                with Pool(4) as pool:
                    return pool.map(work, bounds)
            """
        assert len(findings_for(bad, "RC008")) == 2

    def test_module_attribute_pool_is_flagged(self):
        bad = """\
            import multiprocessing

            def scan(bounds):
                with multiprocessing.Pool(4) as pool:
                    return pool.map(work, bounds)
            """
        assert findings_for(bad, "RC008")

    def test_context_bound_pool_is_clean(self):
        good = """\
            import multiprocessing

            def scan(bounds):
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:
                    context = multiprocessing.get_context()
                with context.Pool(4) as pool:
                    return pool.map(work, bounds)
            """
        assert not findings_for(good, "RC008")
