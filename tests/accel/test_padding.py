"""Tests for under-length query support (pad instructions, §IV-A)."""

import numpy as np
import pytest

from repro.accel.kernel import FabPKernel
from repro.core.aligner import align
from repro.core.encoding import decode_element, pad_instruction
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import encode_protein_as_rna


class TestPadInstruction:
    def test_decodes_to_always_match(self):
        from repro.core import backtranslate as bt

        element = decode_element(pad_instruction())
        assert isinstance(element, bt.DependentElement)
        assert element.function is bt.FUNCTION_ANY

    def test_matches_every_context(self):
        from repro.core.comparator import instruction_matches

        pad = pad_instruction()
        for ref in range(4):
            for prev1 in range(4):
                for prev2 in range(4):
                    assert instruction_matches(pad, ref, prev1, prev2)


class TestPaddedKernel:
    def test_padded_equals_exact(self, rng):
        for _ in range(4):
            query = random_protein(int(rng.integers(3, 20)), rng=rng)
            reference = random_rna(int(rng.integers(200, 1200)), rng=rng)
            exact = FabPKernel(query, min_identity=0.6)
            padded = FabPKernel(query, min_identity=0.6, max_residues=60)
            assert padded.run(reference).hits == exact.run(reference).hits

    def test_padded_matches_golden(self, rng):
        query = random_protein(10, rng=rng)
        reference = random_rna(900, rng=rng)
        kernel = FabPKernel(query, min_identity=0.55, max_residues=50)
        expected = align(query, reference, threshold=kernel.threshold)
        assert kernel.run(reference).hits == expected.hits

    def test_scores_corrected_for_pads(self, rng):
        query = random_protein(5, rng=rng)
        reference = random_rna(400, rng=rng)
        kernel = FabPKernel(query, threshold=0, max_residues=50)
        run = kernel.run(reference)
        perfect = 3 * len(query)
        assert all(0 <= h.score <= perfect for h in run.hits)

    def test_end_of_reference_hit_drains(self, rng):
        """Trailer beats let padded windows drain at the reference end."""
        query = random_protein(8, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        background = random_rna(500, rng=rng).letters
        reference = background[: 500 - len(region)] + region
        kernel = FabPKernel(query, min_identity=0.99, max_residues=120)
        run = kernel.run(reference)
        assert any(h.position == 500 - len(region) for h in run.hits)

    def test_plan_sized_for_hardware_not_query(self, rng):
        query = random_protein(10, rng=rng)
        exact = FabPKernel(query, min_identity=0.9)
        padded = FabPKernel(query, min_identity=0.9, max_residues=250)
        assert padded.plan.query_elements == 750
        assert padded.plan.segments >= exact.plan.segments

    def test_oversized_query_rejected(self, rng):
        query = random_protein(30, rng=rng)
        with pytest.raises(ValueError, match="at most"):
            FabPKernel(query, min_identity=0.9, max_residues=20)

    def test_pad_count(self, rng):
        query = random_protein(10, rng=rng)
        kernel = FabPKernel(query, min_identity=0.9, max_residues=50)
        assert kernel.pad_elements == 150 - 30
