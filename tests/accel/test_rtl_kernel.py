"""End-to-end LUT-level validation: RTL array vs golden aligner."""

import numpy as np
import pytest

from repro.accel.rtl_kernel import RtlKernel, build_alignment_array
from repro.core.aligner import align, alignment_scores
from repro.seq.generate import random_protein, random_rna


class TestArrayStructure:
    def test_comparator_luts_dominate(self):
        array = build_alignment_array("MFW", instances=1, threshold=5)
        # 9 elements x 2 LUTs comparator; plus buffer muxes + pop36 + threshold.
        assert array.netlist.lut_count > 18

    def test_outputs_per_instance(self):
        array = build_alignment_array("MF", instances=3, threshold=4)
        for j in range(3):
            assert f"score{j}[0]" in array.netlist.outputs
            assert f"hit{j}[0]" in array.netlist.outputs

    def test_invalid_instances(self):
        with pytest.raises(ValueError):
            build_alignment_array("MF", instances=0, threshold=1)


class TestRtlVsGolden:
    def test_scores_match_exactly(self, rng):
        query = random_protein(4, rng=rng)
        reference = random_rna(90, rng=rng)
        kernel = RtlKernel(query, instances=2, threshold=7)
        scores, _ = kernel.run(reference)
        assert np.array_equal(scores, alignment_scores(query, reference))

    def test_hits_match_threshold_logic(self, rng):
        query = random_protein(3, rng=rng)
        reference = random_rna(80, rng=rng)
        threshold = 6
        kernel = RtlKernel(query, instances=2, threshold=threshold)
        _, hits = kernel.run(reference)
        expected = align(query, reference, threshold=threshold)
        assert tuple(hits) == expected.hits

    def test_stalls_freeze_pipeline(self, rng):
        """Invalid AXI cycles must not corrupt scores (§III-C)."""
        query = random_protein(3, rng=rng)
        reference = random_rna(60, rng=rng)
        kernel = RtlKernel(query, instances=2, threshold=5)
        clean, _ = kernel.run(reference)
        stalled, _ = kernel.run(reference, stall_every=3)
        assert np.array_equal(clean, stalled)

    def test_dependent_functions_in_rtl(self, rng):
        """Queries exercising every Type III function stay bit-exact."""
        query = "LRS*"
        reference = random_rna(70, rng=rng)
        kernel = RtlKernel(query, instances=2, threshold=6)
        scores, _ = kernel.run(reference)
        assert np.array_equal(scores, alignment_scores(query, reference))

    def test_loadable_query_memory(self, rng):
        """The FF-based query memory (paper: query stored in FFs) produces
        bit-exact results and supports query swap without a rebuild."""
        query_a = random_protein(4, rng=rng)
        query_b = random_protein(4, rng=rng)
        reference = random_rna(90, rng=rng)
        kernel = RtlKernel(query_a, instances=2, threshold=7, loadable=True)
        scores_a, _ = kernel.run(reference)
        assert np.array_equal(scores_a, alignment_scores(query_a, reference))
        kernel.reload(query_b)
        scores_b, hits_b = kernel.run(reference)
        assert np.array_equal(scores_b, alignment_scores(query_b, reference))
        assert tuple(hits_b) == align(query_b, reference, threshold=7).hits

    def test_loadable_array_spends_query_ffs(self, rng):
        query = random_protein(4, rng=rng)
        constant = RtlKernel(query, instances=1, threshold=6)
        loadable = RtlKernel(query, instances=1, threshold=6, loadable=True)
        # 6 FFs per element of query memory.
        extra = loadable.array.netlist.ff_count - constant.array.netlist.ff_count
        assert extra == 6 * 12

    def test_loadable_with_stalls(self, rng):
        query = random_protein(3, rng=rng)
        reference = random_rna(60, rng=rng)
        kernel = RtlKernel(query, instances=2, threshold=5, loadable=True)
        clean, _ = kernel.run(reference)
        stalled, _ = kernel.run(reference, stall_every=4)
        assert np.array_equal(clean, stalled)

    def test_reload_validation(self, rng):
        query = random_protein(4, rng=rng)
        constant = RtlKernel(query, instances=1, threshold=6)
        with pytest.raises(ValueError, match="constant query"):
            constant.reload(query)
        loadable = RtlKernel(query, instances=1, threshold=6, loadable=True)
        with pytest.raises(ValueError, match="elements"):
            loadable.reload(random_protein(5, rng=rng))

    def test_planted_perfect_hit(self, rng):
        from repro.workloads.builder import encode_protein_as_rna

        query = random_protein(4, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        background = random_rna(60, rng=rng).letters
        reference = background[:20] + region + background[20:]
        kernel = RtlKernel(query, instances=2, threshold=12)
        scores, hits = kernel.run(reference)
        assert scores[20] == 12
        assert any(h.position == 20 for h in hits)
