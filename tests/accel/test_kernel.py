"""Tests for the streaming functional kernel (Fig. 3)."""

import numpy as np
import pytest

from repro.accel.device import KINTEX7
from repro.accel.kernel import FabPKernel
from repro.core.aligner import align
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import encode_protein_as_rna


class TestFunctionalEquivalence:
    """The kernel must produce exactly the golden aligner's hits."""

    def test_randomized_equivalence(self, rng):
        for _ in range(5):
            query = random_protein(int(rng.integers(3, 25)), rng=rng)
            reference = random_rna(int(rng.integers(300, 3000)), rng=rng)
            kernel = FabPKernel(query, min_identity=0.55)
            run = kernel.run(reference)
            expected = align(query, reference, threshold=kernel.threshold)
            assert run.hits == expected.hits

    def test_hit_straddling_beat_boundary(self, rng):
        """§III-C: the stream buffer keeps the last L_q elements so hits
        spanning two beats are not lost."""
        query = random_protein(20, rng=rng)  # 60 elements
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        background = random_rna(1000, rng=rng).letters
        # Plant so the 60-element window spans the 256-boundary.
        position = 230
        reference = background[:position] + region + background[position + len(region) :]
        kernel = FabPKernel(query, min_identity=0.99)
        run = kernel.run(reference)
        assert any(h.position == position for h in run.hits)

    def test_hit_at_reference_start_and_end(self, rng):
        query = random_protein(8, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        tail = random_rna(300, rng=rng).letters
        reference = region + tail[: 300 - len(region)] + region
        kernel = FabPKernel(query, min_identity=0.99)
        positions = {h.position for h in kernel.run(reference).hits}
        assert 0 in positions
        assert 300 in positions

    def test_no_hits_in_padding(self, rng):
        """Alignments must not extend into the final beat's padding."""
        query = random_protein(4, rng=rng)
        reference = random_rna(260, rng=rng)  # last beat heavily padded
        kernel = FabPKernel(query, threshold=0)
        run = kernel.run(reference)
        max_position = max(h.position for h in run.hits)
        assert max_position == 260 - 12  # L_r - L_q

    def test_random_stalls_do_not_change_hits(self, rng):
        query = random_protein(10, rng=rng)
        reference = random_rna(1500, rng=rng)
        clean = FabPKernel(query, min_identity=0.5).run(reference)
        stalled = FabPKernel(
            query, min_identity=0.5, stall_probability=0.3, seed=11
        ).run(reference)
        assert clean.hits == stalled.hits
        assert stalled.stall_cycles > 0


class TestCycleAccounting:
    def test_compute_cycles_are_beats_times_segments(self, rng):
        query = random_protein(10, rng=rng)
        reference = random_rna(256 * 8, rng=rng)
        kernel = FabPKernel(query, min_identity=0.9)
        run = kernel.run(reference)
        assert run.beats == 8
        assert run.compute_cycles == 8 * kernel.plan.segments

    def test_stall_cycles_match_efficiency(self, rng):
        query = random_protein(5, rng=rng)
        reference = random_rna(256 * 100, rng=rng)
        kernel = FabPKernel(query, min_identity=0.9, axi_efficiency=0.8)
        run = kernel.run(reference)
        assert run.stall_cycles == pytest.approx(100 / 0.8 - 100, abs=2)

    def test_effective_bandwidth_bounded_by_nominal(self, rng):
        query = random_protein(5, rng=rng)
        reference = random_rna(256 * 50, rng=rng)
        run = FabPKernel(query, min_identity=0.9).run(reference)
        assert run.effective_bandwidth < KINTEX7.nominal_bandwidth

    def test_long_query_lowers_bandwidth(self, rng):
        reference = random_rna(256 * 50, rng=rng)
        short = FabPKernel(random_protein(20, rng=rng), min_identity=0.9).run(reference)
        long_ = FabPKernel(random_protein(250, rng=rng), min_identity=0.9).run(reference)
        assert long_.effective_bandwidth < short.effective_bandwidth

    def test_writeback_cycles_scale_with_hits(self, rng):
        query = random_protein(3, rng=rng)
        reference = random_rna(2000, rng=rng)
        generous = FabPKernel(query, threshold=2).run(reference)
        strict = FabPKernel(query, threshold=9).run(reference)
        assert generous.writeback_cycles >= strict.writeback_cycles
        assert len(generous.hits) > len(strict.hits)

    def test_elapsed_seconds_positive(self, rng):
        run = FabPKernel(random_protein(5, rng=rng), min_identity=0.9).run(
            random_rna(600, rng=rng)
        )
        assert run.elapsed_seconds > 0
        assert "KernelRun" in str(run)
