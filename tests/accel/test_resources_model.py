"""Tests for the Table I resource model."""

import pytest

from repro.accel.device import KINTEX7, LARGE_FPGA
from repro.accel.resources import resource_report, table1


class TestTable1DesignPoints:
    """Paper Table I: FabP-50 = 58/16/19/31 % + 12.2 GB/s;
    FabP-250 = 98/40/15/68 % + 3.4 GB/s.  The model must land in the same
    regime (exact placement overheads are not reproducible in simulation).
    """

    def test_fabp50_row(self):
        report = resource_report(50)
        util = report.utilization
        assert 0.45 <= util["LUT"] <= 0.70  # paper: 58 %
        assert 0.10 <= util["FF"] <= 0.30  # paper: 16 %
        assert 0.10 <= util["BRAM"] <= 0.30  # paper: 19 %
        assert 0.25 <= util["DSP"] <= 0.40  # paper: 31 %
        assert report.effective_bandwidth == pytest.approx(12.2e9, rel=0.02)

    def test_fabp250_row(self):
        report = resource_report(250)
        util = report.utilization
        assert util["LUT"] >= 0.70  # paper: 98 %
        assert util["FF"] > resource_report(50).utilization["FF"]
        assert 0.40 <= util["DSP"] <= 0.80  # paper: 68 %
        assert 2.5e9 <= report.effective_bandwidth <= 4.5e9  # paper: 3.4 GB/s

    def test_bram_decreases_with_length(self):
        """Table I's counter-intuitive row: BRAM drops from 19 % to 15 %."""
        assert (
            resource_report(250).utilization["BRAM"]
            < resource_report(50).utilization["BRAM"]
        )

    def test_dsp_count_tracks_instances(self):
        report = resource_report(50)
        assert report.dsps == report.plan.instances  # one threshold DSP each

    def test_segmented_design_doubles_dsps(self):
        r50 = resource_report(50)
        r250 = resource_report(250)
        assert r250.dsps == 2 * r250.plan.instances
        assert r250.dsps > r50.dsps

    def test_table1_returns_both_points(self):
        rows = table1()
        assert set(rows) == {50, 250}

    def test_row_rendering(self):
        row = resource_report(50).row()
        assert set(row) == {"LUT", "FF", "BRAM", "DSP", "DRAM BW"}
        assert row["DRAM BW"].endswith("GB/s")

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            resource_report(0)


class TestDeviceScaling:
    def test_larger_device_less_utilized(self):
        small = resource_report(250, KINTEX7)
        large = resource_report(250, LARGE_FPGA)
        assert large.utilization["LUT"] < small.utilization["LUT"]

    def test_larger_device_higher_bandwidth(self):
        """§IV-B: 'an FPGA with more LUTs can outperform the GPU'."""
        small = resource_report(250, KINTEX7)
        large = resource_report(250, LARGE_FPGA)
        assert large.effective_bandwidth > small.effective_bandwidth


class TestDeviceModel:
    def test_kintex7_capacities_from_table1(self):
        assert KINTEX7.luts == 326_000
        assert KINTEX7.ffs == 407_000
        assert KINTEX7.bram_bits == 16_000_000
        assert KINTEX7.dsps == 840
        assert KINTEX7.channel_bandwidth == 12.8e9

    def test_nominal_bandwidth_formula(self):
        # §III-C: BW = 512 bits x Freq.
        assert KINTEX7.nominal_bandwidth == 64 * 200e6
        assert KINTEX7.nucleotides_per_beat == 256
