"""Tests for the AXI reference stream model."""

import numpy as np
import pytest

from repro.accel.axi import DEFAULT_EFFICIENCY, AxiReferenceStream, Beat
from repro.seq.generate import random_rna
from repro.seq.packing import codes_from_text


def _codes(n, rng):
    return codes_from_text(random_rna(n, rng=rng).letters)


class TestBeats:
    def test_beat_count(self, rng):
        stream = AxiReferenceStream(_codes(600, rng), efficiency=1.0)
        beats = [b for b in stream.beats() if b.valid]
        assert len(beats) == 3  # ceil(600/256)
        assert stream.num_beats == 3

    def test_beats_deliver_all_codes_in_order(self, rng):
        codes = _codes(600, rng)
        stream = AxiReferenceStream(codes, efficiency=1.0)
        delivered = np.concatenate([b.codes for b in stream.beats() if b.valid])
        assert np.array_equal(delivered[:600], codes)

    def test_padding_is_code_zero(self, rng):
        codes = _codes(300, rng)
        stream = AxiReferenceStream(codes, efficiency=1.0)
        beats = [b for b in stream.beats() if b.valid]
        assert np.all(beats[-1].codes[300 - 256 :] == 0)

    def test_last_flag(self, rng):
        stream = AxiReferenceStream(_codes(600, rng), efficiency=1.0)
        beats = [b for b in stream.beats() if b.valid]
        assert [b.last for b in beats] == [False, False, True]

    def test_full_efficiency_no_stalls(self, rng):
        stream = AxiReferenceStream(_codes(1024, rng), efficiency=1.0)
        assert all(b.valid for b in stream.beats())

    def test_dram_image_matches_packing(self, rng):
        from repro.seq.packing import pack

        codes = _codes(333, rng)
        stream = AxiReferenceStream(codes)
        assert np.array_equal(stream.dram_image, pack(codes))


class TestStallModels:
    def test_deterministic_efficiency(self, rng):
        codes = _codes(256 * 20, rng)
        stream = AxiReferenceStream(codes, efficiency=0.8)
        cycles = list(stream.beats())
        valid = sum(b.valid for b in cycles)
        assert valid == 20
        ratio = valid / len(cycles)
        assert 0.75 <= ratio <= 0.85

    def test_total_cycles_formula(self, rng):
        codes = _codes(256 * 20, rng)
        stream = AxiReferenceStream(codes, efficiency=0.8)
        assert stream.total_cycles() == len(list(stream.beats()))

    def test_default_efficiency_from_table1(self):
        # Table I: 12.2 of 12.8 GB/s achieved.
        assert abs(DEFAULT_EFFICIENCY - 12.2 / 12.8) < 1e-9

    def test_random_stalls_seeded(self, rng):
        codes = _codes(256 * 5, rng)
        a = [b.valid for b in AxiReferenceStream(codes, stall_probability=0.3, seed=1).beats()]
        b = [b.valid for b in AxiReferenceStream(codes, stall_probability=0.3, seed=1).beats()]
        assert a == b
        assert not all(a)

    def test_random_stall_mode_rejects_cycle_query(self, rng):
        stream = AxiReferenceStream(_codes(256, rng), stall_probability=0.1, seed=0)
        with pytest.raises(ValueError):
            stream.total_cycles()

    def test_validation(self, rng):
        codes = _codes(10, rng)
        with pytest.raises(ValueError):
            AxiReferenceStream(codes, efficiency=0.0)
        with pytest.raises(ValueError):
            AxiReferenceStream(codes, stall_probability=1.0)
