"""Tests for the segmentation scheduler."""

import pytest

from repro.accel.device import KINTEX7, LARGE_FPGA
from repro.accel.scheduler import (
    max_unsegmented_elements,
    plan_schedule,
)


class TestPlans:
    def test_short_query_unsegmented(self):
        # FabP-50 (150 elements) fits at one cycle per beat (Table I).
        plan = plan_schedule(150)
        assert plan.segments == 1
        assert plan.bandwidth_bound

    def test_long_query_segmented(self):
        # FabP-250 (750 elements) needs multiple iterations (Table I).
        plan = plan_schedule(750)
        assert plan.segments > 1
        assert not plan.bandwidth_bound

    def test_segments_monotone_in_length(self):
        previous = 0
        for elements in (30, 150, 300, 450, 600, 750, 1200):
            segments = plan_schedule(elements).segments
            assert segments >= previous
            previous = segments

    def test_plan_fits_device(self):
        for elements in (30, 150, 450, 750, 1500):
            plan = plan_schedule(elements)
            assert plan.luts_used <= KINTEX7.luts
            assert plan.ffs_used <= KINTEX7.ffs

    def test_instances_from_beat_width(self):
        # r - q + 1 over the stream buffer: 256 + 1 instances (§III-C).
        plan = plan_schedule(150)
        assert plan.instances == KINTEX7.nucleotides_per_beat + 1 == 257

    def test_segment_elements_cover_query(self):
        plan = plan_schedule(750)
        assert plan.segment_elements * plan.segments >= 750

    def test_cycles_per_beat(self):
        assert plan_schedule(150).cycles_per_beat == 1
        assert plan_schedule(750).cycles_per_beat == plan_schedule(750).segments

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            plan_schedule(0)


class TestUtilization:
    def test_fabp50_utilization_near_paper(self):
        """Table I: FabP-50 uses ~58 % of LUTs."""
        plan = plan_schedule(150)
        assert 0.45 <= plan.lut_utilization <= 0.70

    def test_fabp250_high_utilization(self):
        """Table I: FabP-250 is resource-bound (98 % LUTs in the paper)."""
        plan = plan_schedule(750)
        assert plan.lut_utilization >= 0.70

    def test_ff_utilization_below_lut(self):
        # Table I: FF utilization is well below LUT utilization at both points.
        for elements in (150, 750):
            plan = plan_schedule(elements)
            assert plan.ff_utilization < plan.lut_utilization


class TestCrossover:
    def test_crossover_in_paper_region(self):
        """§IV-B: bandwidth-bound below ~70 aa, resource-bound above.

        Our structural model puts the crossover somewhat higher (~95 aa);
        the invariant tested here is that it exists and sits between the
        paper's two Table I design points.
        """
        crossover = max_unsegmented_elements()
        assert 150 < crossover < 750
        assert plan_schedule(crossover).segments == 1
        assert plan_schedule(crossover + 1).segments == 2

    def test_larger_device_moves_crossover_up(self):
        small = max_unsegmented_elements(KINTEX7)
        large = max_unsegmented_elements(LARGE_FPGA)
        assert large > small
