"""Tests for the constant-memory streaming kernel entry point."""

import numpy as np
import pytest

from repro.accel.kernel import FabPKernel
from repro.seq.generate import random_protein, random_rna
from repro.seq.packing import codes_from_text


def _chunked(text: str, sizes):
    out = []
    position = 0
    index = 0
    while position < len(text):
        size = sizes[index % len(sizes)]
        out.append(text[position : position + size])
        position += size
        index += 1
    return out


class TestRunStream:
    def test_matches_run_on_same_data(self, rng):
        query = random_protein(12, rng=rng)
        reference = random_rna(3000, rng=rng)
        kernel = FabPKernel(query, min_identity=0.55)
        whole = kernel.run(reference)
        streamed = kernel.run_stream(_chunked(reference.letters, [517, 123, 999]))
        assert streamed.hits == whole.hits
        assert streamed.beats == whole.beats
        assert streamed.compute_cycles == whole.compute_cycles
        assert streamed.stall_cycles == whole.stall_cycles

    def test_chunk_size_invariance(self, rng):
        query = random_protein(8, rng=rng)
        reference = random_rna(2000, rng=rng)
        kernel = FabPKernel(query, min_identity=0.6)
        results = [
            kernel.run_stream(_chunked(reference.letters, sizes)).hits
            for sizes in ([1], [7, 13], [256], [2000], [3, 900, 50])
        ]
        assert all(hits == results[0] for hits in results)

    def test_code_array_chunks(self, rng):
        query = random_protein(6, rng=rng)
        reference = random_rna(1200, rng=rng)
        codes = codes_from_text(reference.letters)
        kernel = FabPKernel(query, min_identity=0.6)
        whole = kernel.run(codes)
        streamed = kernel.run_stream([codes[:500], codes[500:]])
        assert streamed.hits == whole.hits

    def test_hit_straddling_chunk_boundary(self, rng):
        from repro.workloads.builder import encode_protein_as_rna

        query = random_protein(15, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        background = random_rna(1000, rng=rng).letters
        position = 480  # straddles the 500 boundary below
        reference = (
            background[:position] + region + background[position + len(region) :]
        )
        kernel = FabPKernel(query, min_identity=0.99)
        streamed = kernel.run_stream([reference[:500], reference[500:]])
        assert any(h.position == position for h in streamed.hits)

    def test_padded_query_stream_drains(self, rng):
        from repro.workloads.builder import encode_protein_as_rna

        query = random_protein(8, rng=rng)
        region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
        background = random_rna(400, rng=rng).letters
        reference = background[: 400 - len(region)] + region  # hit at the end
        kernel = FabPKernel(query, min_identity=0.99, max_residues=80)
        whole = kernel.run(reference)
        streamed = kernel.run_stream(_chunked(reference, [111]))
        assert streamed.hits == whole.hits
        assert any(h.position == 400 - len(region) for h in streamed.hits)

    def test_empty_chunks_skipped(self, rng):
        query = random_protein(5, rng=rng)
        reference = random_rna(600, rng=rng)
        kernel = FabPKernel(query, min_identity=0.6)
        streamed = kernel.run_stream(["", reference.letters[:300], "", reference.letters[300:]])
        assert streamed.hits == kernel.run(reference).hits

    def test_empty_stream(self, rng):
        kernel = FabPKernel(random_protein(5, rng=rng), min_identity=0.9)
        run = kernel.run_stream([])
        assert run.hits == ()
        assert run.beats == 0
