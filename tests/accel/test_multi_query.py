"""Tests for multi-query fabric sharing."""

import numpy as np
import pytest

from repro.accel.device import KINTEX7, LARGE_FPGA
from repro.accel.multi_query import MultiQueryScheduler, queries_per_pass
from repro.core.aligner import align
from repro.seq.generate import random_protein, random_rna


class TestCapacityPlanning:
    def test_fabp50_fits_at_least_two(self):
        # Table I: one 50-aa array uses ~58 % -> but control overhead means
        # a second full array may or may not fit; at 40 aa it must.
        assert queries_per_pass(3 * 40) >= 2

    def test_long_queries_do_not_share(self):
        assert queries_per_pass(750) == 1

    def test_capacity_monotone_decreasing(self):
        capacities = [queries_per_pass(3 * n) for n in (10, 20, 40, 80, 160)]
        assert all(a >= b for a, b in zip(capacities, capacities[1:]))

    def test_larger_device_fits_more(self):
        small = queries_per_pass(150, KINTEX7)
        large = queries_per_pass(150, LARGE_FPGA)
        assert large > small


class TestGrouping:
    def test_groups_respect_capacity(self, rng):
        scheduler = MultiQueryScheduler()
        queries = [random_protein(20, rng=rng) for _ in range(7)]
        groups = scheduler.plan_groups(queries)
        for group in groups:
            assert len(group) <= queries_per_pass(len(group[0]))
        assert sum(len(g) for g in groups) == 7

    def test_sorted_longest_first_within_groups(self, rng):
        scheduler = MultiQueryScheduler()
        queries = [random_protein(int(n), rng=rng) for n in (10, 30, 20, 15)]
        groups = scheduler.plan_groups(queries)
        for group in groups:
            lengths = [len(q) for q in group]
            assert lengths[0] == max(lengths)


class TestSharedPass:
    def test_hits_identical_to_individual_searches(self, rng):
        scheduler = MultiQueryScheduler()
        queries = [random_protein(12, rng=rng) for _ in range(3)]
        reference = random_rna(2000, rng=rng)
        result = scheduler.run_pass(queries, reference, min_identity=0.6)
        for query, run in zip(queries, result.runs):
            expected = align(query, reference, threshold=run.threshold)
            assert run.hits == expected.hits

    def test_shared_pass_speedup(self, rng):
        scheduler = MultiQueryScheduler()
        queries = [random_protein(20, rng=rng) for _ in range(3)]
        reference = random_rna(256 * 40, rng=rng)
        passes, summary = scheduler.search_all(queries, reference, min_identity=0.9)
        # Three 20-aa queries share the fabric: ~one pass instead of three.
        assert summary["speedup"] > 1.8
        assert summary["queries"] == 3.0

    def test_mixed_lengths_still_correct(self, rng):
        scheduler = MultiQueryScheduler()
        queries = [random_protein(n, rng=rng) for n in (8, 25, 15)]
        reference = random_rna(1500, rng=rng)
        passes, summary = scheduler.search_all(queries, reference, min_identity=0.7)
        runs_by_residues = {
            run.query.num_residues: run for p in passes for run in p.runs
        }
        for query in queries:
            run = runs_by_residues[len(query)]
            expected = align(query, reference, threshold=run.threshold)
            assert run.hits == expected.hits

    def test_empty_pass_rejected(self, rng):
        with pytest.raises(ValueError):
            MultiQueryScheduler().run_pass([], random_rna(100, rng=rng))
